"""Text-database queries: repeats, palindromes and motif search.

The paper's second motivating application area is text databases.  This
example runs three classic sequence queries over a small synthetic corpus:

* **multiple repeats** (Example 1.5): which documents are of the form
  ``Y^n``, and what is their repeating unit?
* **palindromes**: recognised with pure structural recursion (always safe);
* **motif occurrences**: every position at which a motif occurs in a
  document, expressed with indexed terms only.

Run with::

    python examples/text_queries.py
"""

from repro import SequenceDatalogEngine, SequenceDatabase

CORPUS = {
    "doc": [
        "abcabcabc",   # a repeat of "abc"
        "abab",        # a repeat of "ab"
        "racecar",     # a palindrome
        "noon",        # a palindrome
        "sequence",
        "banana",
    ]
}


def repeats() -> None:
    """Example 1.5 (rep1): structural recursion over repeats."""
    engine = SequenceDatalogEngine(
        """
        rep(X, X) :- true.
        rep(X, X[1:N]) :- rep(X[N+1:end], X[1:N]).
        unit(X, Y) :- doc(X), rep(X, Y), Y != X.
        """
    )
    result = engine.evaluate(SequenceDatabase.from_dict(CORPUS))
    print("== repeating documents (Example 1.5) ==")
    for document, unit in sorted(engine.query(result, "unit(X, Y)").texts()):
        print(f"  {document!r} = {unit!r} repeated")


def palindromes() -> None:
    """Palindrome recognition with structural recursion only."""
    engine = SequenceDatalogEngine(
        """
        palin("") :- true.
        palin(Y[N]) :- doc(Y).
        palin(Y) :- Y[1] = Y[end], palin(Y[2:end-1]).
        palindrome(X) :- doc(X), palin(X).
        """
    )
    result = engine.evaluate(SequenceDatabase.from_dict(CORPUS))
    print("\n== palindromes ==")
    print(" ", engine.query(result, "palindrome(X)").values("X"))


def motifs() -> None:
    """Motif search: all occurrences of stored motifs in stored documents."""
    engine = SequenceDatalogEngine(
        """
        occurs(D, M) :- doc(D), motif(M), D[N1:N2] = M.
        """
    )
    database = SequenceDatabase.from_dict({**CORPUS, "motif": ["ana", "abc", "car"]})
    result = engine.evaluate(database)
    print("\n== motif occurrences ==")
    for document, motif in sorted(engine.query(result, "occurs(D, M)").texts()):
        print(f"  {motif!r} occurs in {document!r}")


def main() -> None:
    repeats()
    palindromes()
    motifs()


if __name__ == "__main__":
    main()
