"""Corpus overlap analysis: shared substrings across text documents.

The paper's abstract names text databases, next to genome databases, as the
applications Sequence Datalog targets.  This example uses the
:class:`repro.text.TextCorpus` facade to run three corpus-level queries --
all pure structural recursion, hence inside the PTIME fragment of
Theorem 3 -- over a small synthetic corpus:

* shared substrings between every pair of documents (the plagiarism-style
  overlap query) and the longest overlap per pair;
* palindromic substrings of every document;
* tandem repeats (``WW`` factors) and whole-document repeats
  (Example 1.5's ``Y^n``).

Run with::

    python examples/corpus_overlap.py
"""

from repro.text import TextCorpus

CORPUS = [
    "the cat sat",
    "a cat sat up",
    "the dog sat",
    "abcabc",
    "noon racecar",
]


def overlap_report(corpus: TextCorpus) -> None:
    print("== shared substrings (min length 4) ==")
    longest = corpus.longest_shared_substrings(min_length=4)
    if not longest:
        print("  (no overlaps)")
    for (first, second), substring in sorted(longest.items()):
        print(f"  {first!r} ~ {second!r}: longest shared {substring!r}")


def palindrome_report(corpus: TextCorpus) -> None:
    print("== palindromic substrings (min length 3) ==")
    for document, palindromes in sorted(corpus.palindromic_substrings(3).items()):
        if palindromes:
            print(f"  {document!r}: {sorted(palindromes, key=len, reverse=True)}")


def repeat_report(corpus: TextCorpus) -> None:
    print("== repeats ==")
    tandems = corpus.tandem_repeats()
    units = corpus.repeated_documents()
    for document in corpus.documents:
        parts = []
        if tandems.get(document):
            parts.append(f"tandem {sorted(tandems[document], key=len, reverse=True)[:3]}")
        if document in units:
            parts.append(f"whole-document repeat of {sorted(units[document])}")
        if parts:
            print(f"  {document!r}: " + "; ".join(parts))


def main() -> None:
    corpus = TextCorpus(CORPUS)
    print(f"corpus: {corpus!r}\n")
    overlap_report(corpus)
    print()
    palindrome_report(corpus)
    print()
    repeat_report(corpus)


if __name__ == "__main__":
    main()
