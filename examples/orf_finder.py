"""Open-reading-frame finder: the genome workload of the paper, end to end.

The paper motivates Sequence Datalog with genome databases (Section 1,
Example 7.1): transcription, translation and the "biological complications"
its footnotes mention -- splicing, reading frames, stop codons.  This
example runs the whole pipeline on a small synthetic genome database:

1. store DNA strands in a sequence database;
2. transcribe them to RNA with the Example 7.1 Transducer Datalog program;
3. splice out marked introns with an order-1 transducer (footnote 6);
4. find open reading frames with a pure structural-recursion Sequence
   Datalog program (footnote 8) and translate them to proteins;
5. locate restriction sites and digest the strands (pattern matching).

Run with::

    python examples/orf_finder.py
"""

from repro.genome import GenomeAnalyzer
from repro.genome.machines import splice_transducer
from repro.workloads import random_dna_strings


def transcription_and_translation(analyzer: GenomeAnalyzer) -> None:
    print("== Example 7.1: DNA -> RNA -> protein ==")
    transcripts = analyzer.transcripts()
    proteins = analyzer.proteins()
    for strand in analyzer.strands:
        print(f"  {strand}")
        print(f"    RNA:     {transcripts[strand]}")
        print(f"    protein: {proteins[strand]}")


def splicing_demo() -> None:
    print("== footnote 6: intron splicing (order-1 transducer) ==")
    machine = splice_transducer()
    for marked in ["aug<ggg>gcuuaa", "augg<cc>cu<uu>uaa"]:
        print(f"  {marked:>22}  ->  {machine(marked).text}")


def orf_search(analyzer: GenomeAnalyzer) -> None:
    print("== footnote 8: open reading frames ==")
    orfs = analyzer.open_reading_frames(min_codons=2)
    if not orfs:
        print("  (no ORFs of at least 2 codons in this database)")
    for orf in orfs:
        print(
            f"  strand {orf.strand}: positions {orf.start}-{orf.stop + 2}, "
            f"{len(orf.sequence) // 3} codons, protein {orf.protein}"
        )


def restriction_analysis(analyzer: GenomeAnalyzer) -> None:
    print("== restriction analysis (EcoRI, gaattc) ==")
    sites = analyzer.restriction_sites("gaattc")
    fragments = analyzer.digest("gaattc", cut_offset=1)
    for strand in analyzer.strands:
        if sites[strand]:
            print(f"  {strand}: sites at {sites[strand]}, fragments {fragments[strand]}")
        else:
            print(f"  {strand}: no sites")


def main() -> None:
    # A couple of designed strands (one with an ORF, one with an EcoRI site)
    # plus synthetic random strands, as the substitution rule in DESIGN.md
    # prescribes for the paper's unavailable genome data.
    strands = ["taccgaatt", "ggaattcaagaattcc"] + random_dna_strings(2, 15, seed=42)
    analyzer = GenomeAnalyzer(strands)
    print(f"database: {analyzer!r}\n")
    transcription_and_translation(analyzer)
    print()
    splicing_demo()
    print()
    orf_search(analyzer)
    print()
    restriction_analysis(analyzer)


if __name__ == "__main__":
    main()
