"""Genome restructuring: from DNA to RNA to protein (Example 7.1).

The example that motivates Transducer Datalog in the paper: a database of
DNA sequences is transcribed into RNA and translated into protein, with all
sequence restructuring performed inside generalized transducers while the
logic program only wires them together.

Three equivalent formulations are shown:

1. a Transducer Datalog program using the ``@transcribe`` and ``@translate``
   machines (Example 7.1);
2. the same computation as a standalone transducer network (Section 6.2);
3. the transcription step re-implemented in plain Sequence Datalog
   (Example 7.2), which is exactly what the Theorem 7 translation automates.

Run with::

    python examples/genome_pipeline.py
"""

from repro import SequenceDatabase, TransducerCatalog, TransducerDatalogProgram
from repro.core import paper_programs
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.transducers import NetworkNode, TransducerNetwork, library
from repro.workloads import random_dna_strings


def build_database() -> SequenceDatabase:
    """A synthetic stand-in for a genome database (no real data needed)."""
    strands = random_dna_strings(count=4, length=12, seed=42)
    print("input DNA strands:")
    for strand in strands:
        print(f"  {strand}")
    return SequenceDatabase.from_dict({"dnaseq": strands})


def transducer_datalog_pipeline(database: SequenceDatabase) -> dict:
    """Example 7.1: two rules, two machines."""
    catalog = TransducerCatalog(
        [library.transcribe_transducer(), library.translate_transducer()]
    )
    program = TransducerDatalogProgram(paper_programs.EXAMPLE_7_1_GENOME, catalog)
    print("\n== Transducer Datalog (Example 7.1) ==")
    print(paper_programs.EXAMPLE_7_1_GENOME.strip())
    print(f"strongly safe: {program.is_strongly_safe()}, order: {program.order}")

    result = program.evaluate(database, require_safety=True)
    proteins = dict(evaluate_query(result.interpretation, "proteinseq(D, P)").texts())
    for dna, protein in sorted(proteins.items()):
        print(f"  {dna} -> {protein}")
    return proteins


def network_pipeline(database: SequenceDatabase) -> dict:
    """The same computation as a serial transducer network."""
    transcribe = NetworkNode("transcribe", library.transcribe_transducer(), ["dna"])
    translate = NetworkNode("translate", library.translate_transducer(), [transcribe])
    network = TransducerNetwork(["dna"], [transcribe, translate], translate)
    print("\n== transducer network (Section 6.2) ==")
    print(f"diameter: {network.diameter}, order: {network.order}")

    proteins = {}
    for row in database.relation("dnaseq").sorted_tuples():
        dna = row[0].text
        proteins[dna] = network.compute(dna=dna).text
        print(f"  {dna} -> {proteins[dna]}")
    return proteins


def sequence_datalog_transcription(database: SequenceDatabase) -> None:
    """Example 7.2: the transcription transducer simulated in Sequence Datalog."""
    program = paper_programs.transcribe_simulation_program()
    print("\n== transcription simulated in Sequence Datalog (Example 7.2) ==")
    result = compute_least_fixpoint(program, database)
    for dna, rna in sorted(evaluate_query(result.interpretation, "rnaseq(D, R)").texts()):
        print(f"  {dna} -> {rna}")


def main() -> None:
    database = build_database()
    from_datalog = transducer_datalog_pipeline(database)
    from_network = network_pipeline(database)
    assert from_datalog == from_network, "the two formulations must agree"
    sequence_datalog_transcription(database)
    print("\nboth formulations agree on every strand")


if __name__ == "__main__":
    main()
