"""Computability in Sequence Datalog: simulating Turing machines (Theorem 1).

Theorem 1 of the paper shows that Sequence Datalog expresses every computable
sequence function, by compiling an arbitrary Turing machine into a logic
program whose ``conf`` predicate enumerates the machine's reachable
configurations.  This example compiles two concrete machines (binary
increment and binary complement), runs the generated programs, and compares
them against direct machine execution.  It also shows the flip side
(Theorem 2): compiling a machine that never halts yields a program whose
least fixpoint is infinite, which the engine reports by hitting its
evaluation limits.

Run with::

    python examples/turing_simulation.py
"""

from repro import EvaluationLimits, SequenceDatabase, compute_least_fixpoint
from repro.engine.query import output_relation
from repro.errors import FixpointNotReached
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog, strip_blanks
from repro.turing.compile_to_network import compile_tm_to_network

LIMITS = EvaluationLimits(max_iterations=300, max_sequence_length=300)


def simulate(machine, words) -> None:
    program = compile_tm_to_sequence_datalog(machine)
    print(f"== {machine.name}: {len(program)} compiled clauses ==")
    for word in words:
        direct = machine.compute(word).text
        result = compute_least_fixpoint(
            program, SequenceDatabase.single_input(word), limits=LIMITS
        )
        derived = {strip_blanks(o, machine) for o in output_relation(result.interpretation)}
        status = "ok" if derived == {direct} else "MISMATCH"
        configurations = len(result.interpretation.tuples("conf"))
        print(
            f"  input {word!r:8} machine -> {direct!r:8} datalog -> {sorted(derived)!r:10}"
            f" ({configurations} configurations) [{status}]"
        )


def network_simulation(machine, words) -> None:
    """Theorem 5: the same machines as order-2 transducer networks."""
    network = compile_tm_to_network(machine, time_exponent=1)
    print(f"== {machine.name} as an order-{network.order} transducer network ==")
    for word in words:
        direct = machine.compute(word).text
        via_network = network.compute_function(word).text
        status = "ok" if direct == via_network else "MISMATCH"
        print(f"  input {word!r:8} -> {via_network!r} [{status}]")


def divergence() -> None:
    """Theorem 2: non-halting machines give infinite least fixpoints."""
    machine = machines.looping_machine()
    program = compile_tm_to_sequence_datalog(machine)
    limits = EvaluationLimits(max_iterations=40, max_sequence_length=60)
    print("== a machine that never halts (Theorem 2) ==")
    try:
        compute_least_fixpoint(program, SequenceDatabase.single_input("01"), limits=limits)
        print("  unexpected: evaluation converged")
    except FixpointNotReached as error:
        longest = max(len(s) for s in error.partial.domain.sequences())
        print(
            "  evaluation stopped by resource limits as expected "
            f"(longest derived tape so far: {longest} symbols)"
        )


def main() -> None:
    simulate(machines.increment_machine(), ["110", "111", "0", ""])
    simulate(machines.complement_machine(), ["0110", "1"])
    network_simulation(machines.complement_machine(), ["0110", "111000"])
    divergence()


if __name__ == "__main__":
    main()
