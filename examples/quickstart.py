"""Quickstart: Sequence Datalog in five minutes.

This example walks through the core workflow of the library:

1. write a Sequence Datalog program (structural recursion with indexed terms,
   constructive recursion with ``++``);
2. load a small sequence database;
3. compute the least fixpoint and run pattern queries;
4. inspect the static analyses (strong safety, finiteness).

Run with::

    python examples/quickstart.py
"""

from repro import SequenceDatalogEngine, SequenceDatabase


def suffixes_and_prefixes() -> None:
    """Example 1.1 of the paper, plus the symmetric prefix query."""
    engine = SequenceDatalogEngine(
        """
        suffix(X, X[N:end]) :- r(X).
        prefix(X, X[1:N])   :- r(X).
        """
    )
    database = SequenceDatabase.from_dict({"r": ["query", "data"]})
    result = engine.evaluate(database)

    print("== suffixes and prefixes ==")
    for word in ["query", "data"]:
        suffixes = [y for x, y in engine.query(result, "suffix(X, Y)").texts() if x == word]
        print(f"  suffixes of {word!r}: {suffixes}")
    print(f"  fixpoint reached in {result.iterations} iterations, "
          f"{result.fact_count} facts")


def pattern_matching() -> None:
    """Example 1.3: retrieving sequences of the form a^n b^n c^n."""
    engine = SequenceDatalogEngine(
        """
        answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
        abcn("", "", "") :- true.
        abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                         abcn(X[2:end], Y[2:end], Z[2:end]).
        """
    )
    database = SequenceDatabase.from_dict(
        {"r": ["abc", "aabbcc", "aabbc", "abcabc", "aaabbbccc", "cab"]}
    )
    matches = engine.run(database, "answer(X)").values("X")
    print("== pattern matching: a^n b^n c^n ==")
    print(f"  accepted: {matches}")


def sequence_restructuring() -> None:
    """Example 1.4: constructive recursion computes the reverse."""
    engine = SequenceDatalogEngine(
        """
        answer(X, Y) :- r(X), reverse(X, Y).
        reverse("", "") :- true.
        reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y).
        """
    )
    database = SequenceDatabase.from_dict({"r": ["110000", "repro"]})
    print("== sequence restructuring: reverse ==")
    for original, reversed_word in sorted(engine.run(database, "answer(X, Y)").texts()):
        print(f"  reverse({original!r}) = {reversed_word!r}")


def static_analysis() -> None:
    """Safety and finiteness classification (Sections 5 and 8)."""
    finite = SequenceDatalogEngine("rep1(X, X) :- true. rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).")
    infinite = SequenceDatalogEngine("rep2(X, X) :- true. rep2(X ++ Y, Y) :- rep2(X, Y).")
    print("== static analysis ==")
    print(f"  rep1 (structural recursion): {finite.finiteness().verdict.value}")
    print(f"  rep2 (constructive recursion): {infinite.finiteness().verdict.value}")


def main() -> None:
    suffixes_and_prefixes()
    pattern_matching()
    sequence_restructuring()
    static_analysis()


if __name__ == "__main__":
    main()
