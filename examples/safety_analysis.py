"""Safety analysis: dependency graphs, constructive cycles and finiteness.

This example reproduces Figure 3 of the paper: the predicate dependency
graphs of the three programs of Example 8.1, with their constructive edges
and the strong-safety verdicts they imply.  It then classifies the other
programs of the paper (rep1/rep2, echo, the genome pipeline) with the static
finiteness analyser, and shows what happens when an unsafe program is
evaluated anyway.

Run with::

    python examples/safety_analysis.py
"""

from repro import EvaluationLimits, SequenceDatabase
from repro.analysis import build_dependency_graph, classify_finiteness, stratify_by_construction
from repro.core import paper_programs
from repro.engine import compute_least_fixpoint
from repro.errors import FixpointNotReached, SafetyError


def figure_3() -> None:
    print("== Figure 3: predicate dependency graphs of Example 8.1 ==")
    catalog = paper_programs.figure_3_catalog()
    for name, program in zip(["P1", "P2", "P3"], paper_programs.figure_3_programs()):
        graph = build_dependency_graph(program)
        verdict = classify_finiteness(program, catalog.orders())
        print(f"\n-- {name} --")
        print(graph.describe())
        print(f"strongly safe: {'yes' if verdict.safety.strongly_safe else 'no'}")


def stratification_example() -> None:
    print("\n== Example 5.1: stratified construction ==")
    program = paper_programs.stratified_construction_program()
    print(program)
    print(stratify_by_construction(program).describe())
    try:
        stratify_by_construction(paper_programs.rep2_program())
    except SafetyError as error:
        print(f"rep2 cannot be stratified: {error}")


def finiteness_classification() -> None:
    print("\n== static finiteness classification ==")
    genome, genome_catalog = paper_programs.genome_program()
    cases = [
        ("Example 1.1 (suffixes)", paper_programs.suffixes_program(), None),
        ("Example 1.3 (a^n b^n c^n)", paper_programs.anbncn_program(), None),
        ("Example 1.4 (reverse)", paper_programs.reverse_program(), None),
        ("Example 1.5 (rep1)", paper_programs.rep1_program(), None),
        ("Example 1.5 (rep2)", paper_programs.rep2_program(), None),
        ("Example 1.6 (echo)", paper_programs.echo_program(), None),
        ("Example 7.1 (genome)", genome, genome_catalog.orders()),
    ]
    for label, program, orders in cases:
        report = classify_finiteness(program, orders)
        print(f"  {label:28} -> {report.verdict.value}")


def evaluating_an_unsafe_program() -> None:
    print("\n== evaluating rep2 (infinite least fixpoint) ==")
    limits = EvaluationLimits(max_iterations=25, max_sequence_length=64)
    database = SequenceDatabase.from_dict({"r": ["ab"]})
    try:
        compute_least_fixpoint(paper_programs.rep2_program(), database, limits=limits)
        print("  unexpected: evaluation converged")
    except FixpointNotReached as error:
        longest = max(len(s) for s in error.partial.domain.sequences())
        print(
            "  the engine stopped at its resource limits, as the static "
            f"analysis predicted (longest sequence created: {longest} symbols)"
        )


def main() -> None:
    figure_3()
    stratification_example()
    finiteness_classification()
    evaluating_an_unsafe_program()


if __name__ == "__main__":
    main()
