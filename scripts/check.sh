#!/usr/bin/env bash
# The quality gate CI runs on every push: lint, tier-1 tests, and benchmark
# smoke runs with JSON-shape validation, so neither the test suite nor the
# benchmark harness can silently rot.
#
# Steps:
#   1. ruff lint over src/tests/benchmarks/scripts (skipped with a notice
#      when ruff is not installed — CI always installs it);
#   2. mypy over the strict-typed packages repro.analysis + repro.api
#      (skipped with a notice when mypy is not installed);
#   3. diagnostics over every shipped workload (scripts/lint_corpus.py):
#      no program may raise an error-severity diagnostic beyond the
#      allowlisted paper examples;
#   4. tier-1 pytest;
#   5. bench_demand --smoke  + shape validation (validate_report);
#   6. bench_parallel --smoke + shape validation (validate_report);
#   7. bench_api --smoke + shape validation (validate_report);
#   8. bench_kernels --smoke + shape validation (validate_report);
#   9. bench_recovery --smoke + shape validation (validate_report);
#  10. bench_replication --smoke + shape validation (validate_report);
#  11. bench_live --smoke + shape validation (validate_report);
#  12. end-to-end TCP smoke: bind a live server on a free port, drive it
#      with a real DatalogClient and a raw socket, validate the versioned
#      JSON envelopes (schema v1, typed results, structured errors);
#  13. end-to-end replication smoke: a leader and a follower as two real
#      processes wired through the --json listening envelopes, a write on
#      the leader read back from the follower, and the not_leader
#      redirect validated over the wire;
#  14. end-to-end live-watch smoke: an asyncio server watched by the
#      typed client and by a raw socket, one published generation, the
#      watching/subscription_delta envelopes validated on the wire.
#
# Baseline regression comparison lives in scripts/bench_compare.py and runs
# as its own CI job.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks scripts
else
    echo "ruff not installed; skipping lint (CI installs it from requirements-dev.txt)"
fi

echo "== types (mypy) =="
if command -v mypy >/dev/null 2>&1; then
    mypy -p repro.analysis -p repro.api
elif python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy -p repro.analysis -p repro.api
else
    echo "mypy not installed; skipping type check (CI installs it from requirements-dev.txt)"
fi

echo "== program diagnostics (lint corpus) =="
python scripts/lint_corpus.py

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== benchmark smoke (bench_demand --smoke) =="
python benchmarks/bench_demand.py --smoke > /tmp/bench_demand_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_demand import validate_report

with open("/tmp/bench_demand_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid")
EOF

echo "== benchmark smoke (bench_parallel --smoke) =="
python benchmarks/bench_parallel.py --smoke > /tmp/bench_parallel_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_parallel import validate_report

with open("/tmp/bench_parallel_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
for case in report["cases"]:
    if case["kind"] == "fixpoint":
        assert case["identical"], f"{case['case']}: parallel model differs"
print(f"ok: {len(report['cases'])} cases, shape valid, models identical")
EOF

echo "== benchmark smoke (bench_api --smoke) =="
python benchmarks/bench_api.py --smoke > /tmp/bench_api_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_api import validate_report

with open("/tmp/bench_api_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid, paged memory bounded")
EOF

echo "== benchmark smoke (bench_kernels --smoke) =="
python benchmarks/bench_kernels.py --smoke > /tmp/bench_kernels_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_kernels import validate_report

with open("/tmp/bench_kernels_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
for case in report["cases"]:
    assert case["identical"], f"{case['case']}: kernel model differs"
    assert case["batch_used"], f"{case['case']}: kernels were not used"
print(f"ok: {len(report['cases'])} cases, shape valid, models identical")
EOF

echo "== benchmark smoke (bench_recovery --smoke) =="
python benchmarks/bench_recovery.py --smoke > /tmp/bench_recovery_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_recovery import validate_report

with open("/tmp/bench_recovery_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
for case in report["cases"]:
    assert case["identical"], f"{case['case']}: recovered model differs"
    assert case["used_snapshot"], f"{case['case']}: recovery skipped the snapshot"
    assert case["dropped_batches"] == 0, f"{case['case']}: committed batches lost"
print(f"ok: {len(report['cases'])} cases, shape valid, recovered models identical")
EOF

echo "== benchmark smoke (bench_replication --smoke) =="
python benchmarks/bench_replication.py --smoke > /tmp/bench_replication_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_replication import validate_report

with open("/tmp/bench_replication_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid, followers identical")
EOF

echo "== benchmark smoke (bench_live --smoke) =="
python benchmarks/bench_live.py --smoke > /tmp/bench_live_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_live import validate_report

with open("/tmp/bench_live_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid, idle connections held")
EOF

echo "== end-to-end TCP smoke (serve_tcp + DatalogClient) =="
python - <<'EOF'
import json

from repro import DatalogClient, serve_tcp
from repro.api.protocol import recv_json, send_json
import socket

with serve_tcp("suffix(X[N:end]) :- r(X).", {"r": ["acgt"]}, port=0) as server:
    host, port = server.address
    # 1. The typed client: query, maintain, stream, stats.
    with DatalogClient(host, port) as client:
        assert client.server_versions == (1,), client.server_versions
        page = client.query("suffix(X)")
        assert page.texts() == [("",), ("acgt",), ("cgt",), ("gt",), ("t",)]
        report = client.add_fact("r", "gg")
        assert report.base_facts_added == 1 and report.generation == 1
        streamed = sorted(client.query_iter("suffix(X)", page_size=2))
        assert ("gg",) in streamed and len(streamed) == 7
        assert client.stats().generation == 1
    # 2. Raw socket: validate the wire JSON shape end to end.
    with socket.create_connection((host, port), timeout=10) as raw:
        reader, writer = raw.makefile("rb"), raw.makefile("wb")
        send_json(writer, {"v": 1, "op": "query", "pattern": "r(X)"})
        reply = recv_json(reader)
        assert reply["v"] == 1 and reply["ok"] is True
        assert reply["kind"] == "query_result" and reply["complete"] is True
        assert sorted(reply["rows"]) == [["acgt"], ["gg"]], reply["rows"]
        send_json(writer, {"v": 99, "op": "ping"})
        reply = recv_json(reader)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "unsupported_version"
        assert reply["error"]["details"]["supported"] == [1]
print("ok: TCP round trip, streaming, maintenance and error envelopes valid")
EOF

echo "== end-to-end replication smoke (leader + follower processes) =="
python - <<'EOF'
import json
import os
import subprocess
import sys
import tempfile
import time

from repro import DatalogClient, NotLeaderError

PROGRAM = "pair(X, Y) :- base(X), base(Y).\n"


def spawn(program_path, *extra):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", program_path,
         "--tcp", "127.0.0.1:0", "--json", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    envelope = json.loads(process.stdout.readline())
    assert envelope["kind"] == "listening" and envelope["port"] != 0, envelope
    return process, envelope


with tempfile.TemporaryDirectory(prefix="repro-replication-smoke-") as tmpdir:
    program_path = os.path.join(tmpdir, "program.sdl")
    with open(program_path, "w", encoding="utf-8") as handle:
        handle.write(PROGRAM)
    leader, leader_env = spawn(program_path)
    follower = None
    try:
        leader_at = f"{leader_env['host']}:{leader_env['port']}"
        follower, follower_env = spawn(program_path, "--follow", leader_at)
        assert leader_env["role"] == "leader" and follower_env["role"] == "follower"

        with DatalogClient(leader_env["host"], leader_env["port"]) as writer:
            generation = writer.add_facts(
                [("base", ("a",)), ("base", ("b",))]
            ).generation

        with DatalogClient(
            follower_env["host"], follower_env["port"], follow_redirects=False
        ) as reader:
            page = reader.query(
                "pair(X, Y)", min_generation=generation,
                min_generation_timeout=30.0,
            )
            assert len(page.rows) == 4, page.rows
            replication = reader.stats().replication
            assert replication["role"] == "follower", replication
            assert replication["leader"] == leader_at, replication
            try:
                reader.add_facts([("base", ("nope",))])
            except NotLeaderError as error:
                assert error.leader == leader_at, error.leader
            else:
                raise AssertionError("follower accepted a write")
    finally:
        for process in (leader, follower):
            if process is not None:
                process.terminate()
                process.wait(timeout=10)
print("ok: leader/follower fleet, bounded read, not_leader redirect valid")
EOF

echo "== end-to-end live-watch smoke (serve_tcp_async + watch) =="
python - <<'EOF'
import socket

from repro import DatalogClient
from repro.api.protocol import recv_json, send_json
from repro.live import serve_tcp_async

with serve_tcp_async("suffix(X[N:end]) :- r(X).", {"r": ["acgt"]}, port=0) as server:
    host, port = server.address
    # 1. The typed client: watch, see the initial set, see one exact delta.
    with DatalogClient(host, port) as client:
        with client.watch("suffix(X)") as watch:
            stream = iter(watch)
            initial = next(stream)
            assert initial.initial and initial.generation == 0
            assert sorted(initial.rows) == [
                ("",), ("acgt",), ("cgt",), ("gt",), ("t",)
            ], initial.rows
            client.add_fact("r", "gg")
            delta = next(stream)
            assert not delta.initial and delta.generation == 1
            assert sorted(delta.rows) == [("g",), ("gg",)], delta.rows
        assert client.stats().live["v"] == 1
    # 2. Raw socket: validate the watch envelopes on the wire.
    with socket.create_connection((host, port), timeout=10) as raw:
        reader, writer = raw.makefile("rb"), raw.makefile("wb")
        send_json(writer, {"v": 1, "op": "watch", "pattern": "suffix(X)"})
        ack = recv_json(reader)
        assert ack["ok"] is True and ack["kind"] == "watching", ack
        subscription = ack["subscription"]
        frame = recv_json(reader)
        assert frame["kind"] == "subscription_delta", frame
        assert frame["subscription"] == subscription and frame["initial"] is True
        with DatalogClient(host, port) as pusher:
            pusher.add_fact("r", "ttaa")
        while True:  # heartbeats may interleave with the pushed delta
            frame = recv_json(reader)
            if frame["kind"] == "subscription_delta":
                break
            assert frame["kind"] == "heartbeat", frame
        assert not frame.get("initial") and frame["generation"] == 2, frame
        assert sorted(frame["rows"]) == [
            ["a"], ["aa"], ["taa"], ["ttaa"]
        ], frame["rows"]
print("ok: watch streams, exact deltas and live stats valid on both paths")
EOF

echo "== all checks passed =="
