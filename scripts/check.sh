#!/usr/bin/env bash
# Tier-1 verification plus a benchmark smoke run, so the benchmark harness
# cannot silently rot: the demand benchmark is executed on tiny workloads
# and its JSON output shape is validated (bench_demand.validate_report).
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== benchmark smoke (bench_demand --smoke) =="
python benchmarks/bench_demand.py --smoke > /tmp/bench_demand_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_demand import validate_report

with open("/tmp/bench_demand_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid")
EOF

echo "== all checks passed =="
