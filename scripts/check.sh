#!/usr/bin/env bash
# The quality gate CI runs on every push: lint, tier-1 tests, and benchmark
# smoke runs with JSON-shape validation, so neither the test suite nor the
# benchmark harness can silently rot.
#
# Steps:
#   1. ruff lint over src/tests/benchmarks/scripts (skipped with a notice
#      when ruff is not installed — CI always installs it);
#   2. tier-1 pytest;
#   3. bench_demand --smoke  + shape validation (validate_report);
#   4. bench_parallel --smoke + shape validation (validate_report).
#
# Baseline regression comparison lives in scripts/bench_compare.py and runs
# as its own CI job.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks scripts
else
    echo "ruff not installed; skipping lint (CI installs it from requirements-dev.txt)"
fi

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== benchmark smoke (bench_demand --smoke) =="
python benchmarks/bench_demand.py --smoke > /tmp/bench_demand_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_demand import validate_report

with open("/tmp/bench_demand_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
print(f"ok: {len(report['cases'])} cases, shape valid")
EOF

echo "== benchmark smoke (bench_parallel --smoke) =="
python benchmarks/bench_parallel.py --smoke > /tmp/bench_parallel_smoke.json
python - <<'EOF'
import json
import sys

sys.path.insert(0, "benchmarks")
from bench_parallel import validate_report

with open("/tmp/bench_parallel_smoke.json", "r", encoding="utf-8") as handle:
    report = json.load(handle)
validate_report(report)
for case in report["cases"]:
    if case["kind"] == "fixpoint":
        assert case["identical"], f"{case['case']}: parallel model differs"
print(f"ok: {len(report['cases'])} cases, shape valid, models identical")
EOF

echo "== all checks passed =="
