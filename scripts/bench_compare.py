#!/usr/bin/env python
"""Compare fresh benchmark --smoke runs against committed baselines.

Each baseline under ``benchmarks/baselines/*.json`` records one benchmark's
smoke report plus a comparison policy::

    {
      "benchmark": "demand",
      "command": ["benchmarks/bench_demand.py", "--smoke"],
      "exact_case_keys": ["case", "full_facts", ...],   # must match exactly
      "bounded_case_keys": {"speedup_...": {"min": 0.05}},  # tolerance band
      "cases": [...]
    }

The deterministic fields (fact counts, answer counts, restriction and
identity flags) are the regression teeth: they change only when evaluation
semantics change.  Timing-derived fields get loose one-sided bounds so a
slow CI runner cannot produce flaky failures while a pathological slowdown
(or a division blow-up) still trips.  Exit status is non-zero on any
regression, which is how CI consumes this script.

Usage::

    python scripts/bench_compare.py                 # compare all baselines
    python scripts/bench_compare.py demand          # compare one
    python scripts/bench_compare.py --update        # regenerate baselines
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")


def run_benchmark(command):
    """Run a benchmark command and parse its JSON stdout."""
    environment = dict(os.environ)
    source_root = os.path.join(REPO_ROOT, "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_root if not existing else source_root + os.pathsep + existing
    )
    completed = subprocess.run(
        [sys.executable] + command,
        cwd=REPO_ROOT,
        env=environment,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"benchmark command {command} failed "
            f"(exit {completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout)


def compare_case(name, baseline_case, fresh_case, exact_keys, bounded_keys):
    """Return a list of human-readable regression messages for one case."""
    problems = []
    for key in exact_keys:
        if key not in baseline_case:
            continue
        if key not in fresh_case:
            problems.append(f"{name}: fresh report lost key {key!r}")
            continue
        if fresh_case[key] != baseline_case[key]:
            problems.append(
                f"{name}: {key} changed from {baseline_case[key]!r} "
                f"to {fresh_case[key]!r}"
            )
    for key, bounds in bounded_keys.items():
        if key not in baseline_case and key not in fresh_case:
            continue
        if key not in fresh_case:
            problems.append(f"{name}: fresh report lost key {key!r}")
            continue
        value = fresh_case[key]
        if not isinstance(value, (int, float)):
            problems.append(f"{name}: {key} is not numeric ({value!r})")
            continue
        low = bounds.get("min")
        high = bounds.get("max")
        if low is not None and value < low:
            problems.append(f"{name}: {key} = {value} fell below the floor {low}")
        if high is not None and value > high:
            problems.append(f"{name}: {key} = {value} exceeded the ceiling {high}")
    return problems


def compare_baseline(baseline):
    fresh = run_benchmark(baseline["command"])
    problems = []
    label = baseline["benchmark"]
    for key in ("benchmark", "unit", "smoke"):
        if fresh.get(key) != baseline["report_meta"].get(key):
            problems.append(
                f"{label}: report meta {key} changed from "
                f"{baseline['report_meta'].get(key)!r} to {fresh.get(key)!r}"
            )
    fresh_cases = {case["case"]: case for case in fresh.get("cases", [])}
    for baseline_case in baseline["cases"]:
        name = f"{label}/{baseline_case['case']}"
        fresh_case = fresh_cases.pop(baseline_case["case"], None)
        if fresh_case is None:
            problems.append(f"{name}: case disappeared from the fresh run")
            continue
        problems.extend(
            compare_case(
                name,
                baseline_case,
                fresh_case,
                baseline["exact_case_keys"],
                baseline.get("bounded_case_keys", {}),
            )
        )
    for extra in fresh_cases:
        # New cases are fine (a benchmark grew); report them informationally.
        print(f"note: {label}/{extra} is new (not in the baseline)")
    return problems


#: Comparison policies used by ``--update`` when (re)generating baselines.
POLICIES = {
    "demand": {
        "command": ["benchmarks/bench_demand.py", "--smoke"],
        "exact_case_keys": [
            "case", "pattern", "restricted", "relevant_predicates", "seeds",
            "full_facts", "demand_facts", "answers",
        ],
        "bounded_case_keys": {
            "speedup_demand_vs_full": {"min": 0.02},
        },
    },
    "api": {
        "command": ["benchmarks/bench_api.py", "--smoke"],
        # Deterministic teeth: the paged row count and page size derive
        # only from the workload, and paged memory must stay bounded.
        "exact_case_keys": [
            "case", "kind", "clients", "queries", "rows", "page_size",
            "bounded_memory",
        ],
        "bounded_case_keys": {
            "speedup_vs_single_client": {"min": 0.2},
            "throughput_qps": {"min": 1.0},
            "memory_ratio": {"min": 1.0},
            "remote_microseconds_per_query": {"max": 200_000.0},
        },
    },
    "kernels": {
        "command": ["benchmarks/bench_kernels.py", "--smoke"],
        # The fact counts, model identity and all-firings-batched flags are
        # deterministic; only the timing ratio needs a loose floor.
        "exact_case_keys": [
            "case", "kind", "facts", "identical", "batch_used",
            "batched_firings", "facts_emitted",
        ],
        "bounded_case_keys": {
            "speedup_batch_vs_tuple": {"min": 0.05},
        },
    },
    "recovery": {
        "command": ["benchmarks/bench_recovery.py", "--smoke"],
        # The fact/edge counts, replay accounting and the identity/snapshot
        # flags are deterministic (seeded workload, fixed tail split); the
        # recovery-vs-cold ratio is meaningless at smoke scale, so it only
        # gets a divide-blow-up floor.
        "exact_case_keys": [
            "case", "kind", "facts", "edges", "replayed_batches",
            "dropped_batches", "identical", "used_snapshot",
        ],
        "bounded_case_keys": {
            "speedup_recovery_vs_cold": {"min": 0.02},
        },
    },
    "replication": {
        "command": ["benchmarks/bench_replication.py", "--smoke"],
        # The generation count, compared row count, bootstrap count and the
        # fact-for-fact identity flag are deterministic; throughput and the
        # fleet speedup vary with the host, so they only get divide-blow-up
        # floors (the >=2x claim is asserted by full runs on >=4 cores).
        "exact_case_keys": [
            "case", "kind", "followers", "batches", "generation",
            "compared_rows", "bootstraps", "identical", "nodes",
            "client_threads", "queries",
        ],
        "bounded_case_keys": {
            "throughput_qps": {"min": 1.0},
            "speedup_vs_leader_only": {"min": 0.05},
        },
    },
    "live": {
        "command": ["benchmarks/bench_live.py", "--smoke"],
        # Connection counts, consumer counts and the subscriber
        # observation total (= consumers x generations, the exact-delta
        # contract) are deterministic; poller observations, timings and
        # the push-vs-poll ratio vary with the host, so they only get
        # divide-blow-up floors (the >=5000-connection and >=2x claims
        # are asserted by full runs).
        "exact_case_keys": [
            "case", "kind", "transport", "connections", "held", "mode",
            "consumers", "generations",
        ],
        "bounded_case_keys": {
            "throughput_notifications_per_second": {"min": 1.0},
            "speedup_vs_polling": {"min": 0.05},
            "probe_ms": {"max": 30_000.0},
        },
    },
    "parallel": {
        "command": ["benchmarks/bench_parallel.py", "--smoke"],
        # ``workers`` and the timing fields vary with the host; the
        # deterministic fields below must not.
        "exact_case_keys": [
            "case", "kind", "facts", "identical", "waves", "clients", "queries",
        ],
        "bounded_case_keys": {
            "speedup_parallel_vs_compiled": {"min": 0.05},
            "speedup_vs_single_client": {"min": 0.2},
            "throughput_qps": {"min": 1.0},
        },
    },
}


def update_baselines(names):
    os.makedirs(BASELINE_DIR, exist_ok=True)
    for name in names:
        policy = POLICIES[name]
        report = run_benchmark(policy["command"])
        baseline = {
            "benchmark": name,
            "command": policy["command"],
            "exact_case_keys": policy["exact_case_keys"],
            "bounded_case_keys": policy["bounded_case_keys"],
            "report_meta": {
                "benchmark": report["benchmark"],
                "unit": report["unit"],
                "smoke": report["smoke"],
            },
            "cases": report["cases"],
        }
        path = os.path.join(BASELINE_DIR, f"bench_{name}_smoke.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(path, REPO_ROOT)}")


def load_baselines(names):
    baselines = []
    for entry in sorted(os.listdir(BASELINE_DIR)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(BASELINE_DIR, entry)
        with open(path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        if names and baseline["benchmark"] not in names:
            continue
        baselines.append(baseline)
    return baselines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names", nargs="*",
        help="benchmark names to compare (default: every committed baseline)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the baseline files from fresh smoke runs",
    )
    args = parser.parse_args(argv)
    if args.update:
        update_baselines(args.names or sorted(POLICIES))
        return 0
    baselines = load_baselines(set(args.names))
    if not baselines:
        print("error: no baselines matched", file=sys.stderr)
        return 2
    problems = []
    for baseline in baselines:
        print(f"== comparing {baseline['benchmark']} against baseline ==")
        problems.extend(compare_baseline(baseline))
    if problems:
        print(f"\n{len(problems)} regression(s) against committed baselines:")
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    print("all baselines match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
