#!/usr/bin/env python
"""Lint every shipped workload program through the diagnostics engine.

This is the CI gate over the program corpus the library ships: the paper's
worked examples (:mod:`repro.core.paper_programs`), the genome and text
workloads, and Turing machines compiled to Sequence Datalog.  Every program
must be free of error-severity diagnostics — except the paper's own
pathological examples (Example 1.5's ``rep`` programs enumerate the head
over the extended domain *by design*), which are allowlisted with the exact
codes they are expected to fire.

The gate fails (exit 1) when

* a program fires an error code that is not in its allowlist entry, or
* an allowlisted code stops firing (the allowlist must shrink with the fix,
  so stale expectations cannot hide regressions).

Warnings, perf lints and hints never gate here: the corpus deliberately
contains possibly-infinite and per-tuple-path programs because the paper
does.  Usage: ``PYTHONPATH=src python scripts/lint_corpus.py [-v]``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.analysis.diagnostics import DiagnosticReport, lint_program
from repro.language.clauses import Program


def _paper() -> List[Tuple[str, Program]]:
    from repro.core import paper_programs as pp

    p1, p2, p3 = pp.figure_3_programs()
    return [
        ("paper/suffixes", pp.suffixes_program()),
        ("paper/concatenations", pp.concatenations_program()),
        ("paper/anbncn", pp.anbncn_program()),
        ("paper/reverse", pp.reverse_program()),
        ("paper/rep1", pp.rep1_program()),
        ("paper/rep2", pp.rep2_program()),
        ("paper/echo", pp.echo_program()),
        ("paper/stratified", pp.stratified_construction_program()),
        ("paper/genome", pp.genome_program()[0]),
        ("paper/transcribe-sim", pp.transcribe_simulation_program()),
        ("paper/fig3-p1", p1),
        ("paper/fig3-p2", p2),
        ("paper/fig3-p3", p3),
    ]


def _genome() -> List[Tuple[str, Program]]:
    from repro.genome import programs as gp

    return [
        ("genome/reverse-complement", gp.reverse_complement_program()),
        ("genome/orf", gp.orf_program()),
        ("genome/reading-frame", gp.reading_frame_program()),
        ("genome/restriction-site", gp.restriction_site_program()),
        ("genome/transcription", gp.transcription_program()),
    ]


def _text() -> List[Tuple[str, Program]]:
    from repro.text import programs as tp

    return [
        ("text/motif", tp.motif_program()),
        ("text/shared-substring", tp.shared_substring_program()),
        ("text/palindrome", tp.palindrome_program()),
        ("text/tandem-repeat", tp.tandem_repeat_program()),
        ("text/repeat", tp.repeat_program()),
    ]


def _turing() -> List[Tuple[str, Program]]:
    from repro.turing import machines as tm
    from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog

    return [
        ("turing/identity", compile_tm_to_sequence_datalog(tm.identity_machine())),
        ("turing/complement", compile_tm_to_sequence_datalog(tm.complement_machine())),
        ("turing/increment", compile_tm_to_sequence_datalog(tm.increment_machine())),
        ("turing/erase", compile_tm_to_sequence_datalog(tm.erase_machine())),
    ]


def corpus() -> List[Tuple[str, Program]]:
    """Every shipped workload program, as ``(name, parsed program)`` pairs."""
    programs: List[Tuple[str, Program]] = []
    for collect in (_paper, _genome, _text, _turing):
        programs.extend(collect())
    return programs


#: Error codes each pathological program is EXPECTED to fire.  Programs not
#: listed here must produce zero error-severity diagnostics.  Example 1.5's
#: ``rep`` programs state ``rep(X, X) :- true.`` — the paper's intentional
#: demonstration of a head enumerated over the extended active domain — so
#: SDL-E103 firing on them is the diagnostics engine working, not a defect.
EXPECTED_ERRORS: Dict[str, FrozenSet[str]] = {
    "paper/rep1": frozenset({"SDL-E103"}),
    "paper/rep2": frozenset({"SDL-E103"}),
    "text/repeat": frozenset({"SDL-E103"}),
}


def check_program(name: str, program: Program) -> Tuple[DiagnosticReport, List[str]]:
    """Lint one corpus program; returns the report and any gate failures."""
    report = lint_program(program)
    fired = {diagnostic.code for diagnostic in report.errors()}
    expected = EXPECTED_ERRORS.get(name, frozenset())
    failures = []
    for code in sorted(fired - expected):
        failures.append(f"{name}: unexpected error {code}")
    for code in sorted(expected - fired):
        failures.append(
            f"{name}: allowlisted error {code} no longer fires "
            "(remove it from EXPECTED_ERRORS)"
        )
    return report, failures


def main(argv: List[str], out=sys.stdout) -> int:
    verbose = "-v" in argv or "--verbose" in argv
    failures: List[str] = []
    programs = corpus()
    for name, program in programs:
        report, program_failures = check_program(name, program)
        failures.extend(program_failures)
        status = "FAIL" if program_failures else "ok"
        print(f"{status:4s} {name:28s} {report.summary()}", file=out)
        if verbose or program_failures:
            for diagnostic in report:
                print(f"       {diagnostic}", file=out)
    print(file=out)
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=out)
        return 1
    print(f"lint corpus clean: {len(programs)} programs checked", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
