"""EX-7.1: the DNA -> RNA -> protein pipeline over growing databases.

Example 7.1 is the paper's flagship Transducer Datalog program.  The
benchmark runs it over synthetic genome databases of growing cardinality and
strand length, verifies the translation against the codon table, and
measures end-to-end evaluation time (all restructuring happens inside the
two transducers, so the logic-level cost stays low).
"""

from conftest import print_table

from repro import TransducerDatalogProgram
from repro.core import paper_programs
from repro.engine import evaluate_query
from repro.transducers.library import CODON_TABLE, TRANSCRIPTION_MAP
from repro.workloads import dna_database


def _expected_protein(dna: str) -> str:
    rna = "".join(TRANSCRIPTION_MAP[symbol] for symbol in dna)
    codons = [rna[i:i + 3] for i in range(0, len(rna) - len(rna) % 3, 3)]
    return "".join(CODON_TABLE[codon] for codon in codons)


def test_example_7_1_genome_pipeline(benchmark):
    program_text, catalog = paper_programs.genome_program()
    program = TransducerDatalogProgram(program_text, catalog)

    rows = []
    for count, length in ((2, 9), (4, 12), (8, 15)):
        database = dna_database(count, length, seed=count * length)
        result = program.evaluate(database, require_safety=True)
        proteins = dict(evaluate_query(result.interpretation, "proteinseq(D, P)").texts())
        correct = all(
            proteins[row[0].text] == _expected_protein(row[0].text)
            for row in database.relation("dnaseq")
        )
        rows.append(
            (
                count,
                length,
                result.fact_count,
                f"{result.elapsed_seconds * 1000:.1f}",
                "ok" if correct else "MISMATCH",
            )
        )
        assert correct

    print_table(
        "Example 7.1: DNA -> RNA -> protein over synthetic genome databases",
        ["strands", "strand length", "facts", "time (ms)", "codon-table check"],
        rows,
    )

    database = dna_database(4, 12, seed=5)
    benchmark.pedantic(
        lambda: program.evaluate(database, require_safety=True), rounds=3, iterations=1
    )
