"""THM-7 / COR-1: Transducer Datalog and Sequence Datalog are equivalent.

Theorem 7 translates any Transducer Datalog program into a plain Sequence
Datalog program that expresses the same queries (the transducers are
simulated with ``comp``/``input``/``delta`` rules).  The benchmark runs both
formulations of the Example 7.1 transcription step on the same database,
checks that the answers coincide, and reports the overhead of simulating the
machine inside the logic instead of calling it natively.
"""

import time

from conftest import print_table

from repro import (
    EvaluationLimits,
    SequenceDatabase,
    TransducerCatalog,
    TransducerDatalogProgram,
    compute_least_fixpoint,
    parse_program,
    translate_to_sequence_datalog,
)
from repro.engine import evaluate_query
from repro.transducers import library

LIMITS = EvaluationLimits(max_iterations=400, max_sequence_length=2000)
PROGRAM_TEXT = "rnaseq(D, @transcribe(D)) :- dnaseq(D)."


def test_theorem_7_translation_equivalence(benchmark):
    catalog = TransducerCatalog([library.transcribe_transducer()])
    program = parse_program(PROGRAM_TEXT)
    translated = translate_to_sequence_datalog(program, catalog)
    database = SequenceDatabase.from_dict({"dnaseq": ["acgt", "ttaag"]})

    start = time.perf_counter()
    native = TransducerDatalogProgram(program, catalog).evaluate(database, limits=LIMITS)
    native_time = time.perf_counter() - start

    start = time.perf_counter()
    simulated = compute_least_fixpoint(translated, database, limits=LIMITS)
    simulated_time = time.perf_counter() - start

    native_rows = evaluate_query(native.interpretation, "rnaseq(D, R)").texts()
    simulated_rows = evaluate_query(simulated.interpretation, "rnaseq(D, R)").texts()
    assert native_rows == simulated_rows

    print_table(
        "Theorem 7: native Transducer Datalog vs translated Sequence Datalog",
        ["formulation", "clauses", "facts", "time (ms)", "rnaseq tuples"],
        [
            ("native (Example 7.1 rule)", len(program), native.fact_count,
             f"{native_time * 1000:.1f}", len(native_rows)),
            ("translated (Theorem 7)", len(translated), simulated.fact_count,
             f"{simulated_time * 1000:.1f}", len(simulated_rows)),
        ],
    )
    print(f"  simulation overhead: {simulated_time / max(native_time, 1e-9):.0f}x "
          "(the translated program re-derives every machine configuration as facts)")

    benchmark.pedantic(
        lambda: compute_least_fixpoint(translated, database, limits=LIMITS),
        rounds=2,
        iterations=1,
    )
