"""THM-1: Sequence Datalog simulates Turing machines.

Theorem 1: Sequence Datalog expresses every computable sequence function.
The benchmark compiles concrete machines with the Theorem 1 construction,
evaluates the generated programs over ``{input(x)}`` databases, and checks
the output against direct machine execution; the measured cost is the
fixpoint evaluation of the compiled program.
"""

from conftest import print_table

from repro import EvaluationLimits, SequenceDatabase, compute_least_fixpoint
from repro.engine.query import output_relation
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog, strip_blanks

LIMITS = EvaluationLimits(max_iterations=400, max_sequence_length=400)


def test_theorem_1_tm_simulation(benchmark):
    cases = [
        (machines.increment_machine(), ["110", "1111"]),
        (machines.complement_machine(), ["0110", "10101"]),
        (machines.erase_machine(), ["0101"]),
    ]
    rows = []
    for machine, words in cases:
        program = compile_tm_to_sequence_datalog(machine)
        for word in words:
            direct = machine.compute(word).text
            result = compute_least_fixpoint(
                program, SequenceDatabase.single_input(word), limits=LIMITS
            )
            derived = {
                strip_blanks(o, machine) for o in output_relation(result.interpretation)
            }
            rows.append(
                (
                    machine.name,
                    word,
                    direct,
                    "/".join(sorted(derived)),
                    machine.run(word).steps,
                    len(result.interpretation.tuples("conf")),
                    "ok" if derived == {direct} else "MISMATCH",
                )
            )
            assert derived == {direct}

    print_table(
        "Theorem 1: compiled Sequence Datalog programs vs direct TM runs",
        ["machine", "input", "machine output", "datalog output", "TM steps", "conf facts", "status"],
        rows,
    )

    machine = machines.complement_machine()
    program = compile_tm_to_sequence_datalog(machine)
    database = SequenceDatabase.single_input("0110")
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database, limits=LIMITS),
        rounds=3,
        iterations=1,
    )
