"""Batch kernel benchmark: vectorized joins vs the per-tuple executor.

Measures the tentpole claim of :mod:`repro.engine.kernels` — that firing a
join-pure clause as a pipeline of batch operators over interned-id columns
beats the per-tuple generator pipeline — and emits a JSON record:

* **genome-overlap** — transitive closure of the suffix/prefix overlap
  graph of random DNA reads (the assembly-style join workload of the
  genome examples: ``overlap/2`` edges are k-mer matches between reads);
* **turing-orbit** — reachability over the configuration-successor graph
  of the increment Turing machine iterated from ``"0"`` (``step/2`` holds
  one edge per machine application, so ``reach`` sweeps the whole orbit).

Both programs are recursive two-atom joins: exactly the plans
:func:`repro.engine.kernels.batch_classification` routes to the kernels.
Each case evaluates the same program twice — ``use_kernels=True`` and
``False`` — asserts the two models are fact-for-fact identical, and
records the speedup.  The full (non-smoke) run asserts the genome case
reaches >=2x; smoke runs only validate behaviour and report shape.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # tiny + shape check
    pytest benchmarks/bench_kernels.py --benchmark-only -s       # harness run
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import (  # noqa: E402
    EvaluationLimits,
    SequenceDatabase,
    compute_least_fixpoint,
)
from repro.engine import kernel_stats, reset_kernel_stats  # noqa: E402
from repro.language.parser import parse_program  # noqa: E402
from repro.turing import machines  # noqa: E402
from repro.workloads import random_dna_strings  # noqa: E402

LIMITS = EvaluationLimits(
    max_iterations=5_000, max_facts=5_000_000, max_domain_size=2_000_000,
    max_sequence_length=2_000,
)

OVERLAP_PROGRAM = """
reach(X, Y) :- overlap(X, Y).
reach(X, Z) :- reach(X, Y), overlap(Y, Z).
"""

ORBIT_PROGRAM = """
reach(X, Y) :- step(X, Y).
reach(X, Z) :- reach(X, Y), step(Y, Z).
halting(X) :- reach(X, Y), halt(Y).
"""


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def overlap_database(reads, read_length, k=3, seed=1700):
    """Random DNA reads plus their k-mer overlap graph (suffix_k = prefix_k)."""
    strands = sorted(set(random_dna_strings(reads, read_length, seed=seed)))
    by_prefix = {}
    for strand in strands:
        by_prefix.setdefault(strand[:k], []).append(strand)
    edges = [
        (left, right)
        for left in strands
        for right in by_prefix.get(left[-k:], ())
        if left != right
    ]
    return SequenceDatabase.from_dict({"overlap": edges})


def orbit_database(chain_length):
    """The increment machine iterated from "0": one step/2 edge per run."""
    machine = machines.increment_machine()
    word = "0"
    edges = []
    for _ in range(chain_length):
        successor = machine.compute(word).text
        edges.append((word, successor))
        word = successor
    return SequenceDatabase.from_dict({"step": edges, "halt": [(word,)]})


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _evaluate(program, database, use_kernels, repeats):
    started = time.perf_counter()
    for _ in range(repeats):
        result = compute_least_fixpoint(
            program, database, limits=LIMITS, strategy="compiled",
            use_kernels=use_kernels,
        )
    return (time.perf_counter() - started) / repeats, result


def _bench_case(label, program_text, database, repeats=1):
    program = parse_program(program_text)
    # Untimed warmup: pays all first-time sequence interning (and index
    # construction on the base relations) so neither timed path subsidises
    # the other.
    compute_least_fixpoint(program, database, limits=LIMITS, strategy="compiled")

    reset_kernel_stats()
    batch_seconds, on = _evaluate(program, database, True, repeats)
    stats = kernel_stats()
    tuple_seconds, off = _evaluate(program, database, False, repeats)

    identical = on.interpretation == off.interpretation
    assert identical, f"{label}: kernels on/off computed different models"
    batch_used = stats["batched_firings"] > 0 and not stats["fallbacks"]
    assert batch_used, (
        f"{label}: expected every firing on the kernel path, got {stats}"
    )
    return {
        "case": label,
        "kind": "kernels",
        "facts": on.fact_count,
        "batch_seconds": round(batch_seconds, 4),
        "tuple_seconds": round(tuple_seconds, 4),
        "speedup_batch_vs_tuple": round(
            tuple_seconds / max(batch_seconds, 1e-9), 2
        ),
        "identical": identical,
        "batch_used": batch_used,
        "batched_firings": stats["batched_firings"],
        "facts_emitted": stats["facts_emitted"],
    }


def run_benchmarks(smoke=False):
    if smoke:
        reads, read_length, chain = 40, 10, 25
    else:
        reads, read_length, chain = 350, 12, 400
    cases = [
        _bench_case(
            f"genome-overlap-{reads}x{read_length}",
            OVERLAP_PROGRAM,
            overlap_database(reads, read_length),
        ),
        _bench_case(
            f"turing-orbit-{chain}",
            ORBIT_PROGRAM,
            orbit_database(chain),
        ),
    ]
    report = {
        "benchmark": "kernels",
        "unit": "seconds",
        "smoke": smoke,
        "cases": cases,
    }
    validate_report(report)
    if not smoke:
        genome = cases[0]
        genome["asserted"] = True
        assert genome["speedup_batch_vs_tuple"] >= 2.0, (
            f"{genome['case']}: expected >=2x batch speedup, got "
            f"{genome['speedup_batch_vs_tuple']}x"
        )
    return report


_CASE_SHAPE = {
    "facts": int,
    "batch_seconds": float,
    "tuple_seconds": float,
    "speedup_batch_vs_tuple": float,
    "identical": bool,
    "batch_used": bool,
    "batched_firings": int,
    "facts_emitted": int,
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "kernels" and report["unit"] == "seconds"
    assert isinstance(report["cases"], list) and report["cases"]
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        assert case.get("kind") == "kernels", f"unknown case kind in {case}"
        for key, expected in _CASE_SHAPE.items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    json.dumps(report)  # must be serialisable as-is


def test_kernels_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    program = parse_program(OVERLAP_PROGRAM)
    database = overlap_database(60, 10)

    def evaluate():
        compute_least_fixpoint(
            program, database, limits=LIMITS, strategy="compiled",
            use_kernels=True,
        )

    benchmark.pedantic(evaluate, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "speedup assertion",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
