"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a figure, an example,
or the scaling shape predicted by a theorem) and prints the rows it
reproduces, so the numbers recorded in ``EXPERIMENTS.md`` can be re-derived
with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a small aligned table (the reproduced figure/table)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    header = tuple(str(cell) for cell in header)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n--- {title} ---")
    print("  " + " | ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    print("  " + "-+-".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        print("  " + " | ".join(row[i].ljust(widths[i]) for i in range(len(header))))
