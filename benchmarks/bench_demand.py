"""Demand-driven evaluation benchmark: per-query slices vs full fixpoints.

Measures the tentpole claim of the demand subsystem
(:mod:`repro.engine.demand`) and emits a JSON record: for selective
queries, demand-mode evaluation — relevance-restricted subprograms with the
pattern's constants pushed into defining-clause plans — must materialise
**strictly fewer facts** than the full least fixpoint and answer **at least
2x faster**, with answers fact-for-fact identical.

Two workload families:

* **genome** — a composed analysis program (Example 7.2 transcription +
  Example 1.4-style reverse complement + restriction-site search) over
  random DNA strands.  A constant-bound ``rnaseq("<strand>", R)`` query
  needs only the transcription slice; full evaluation also pays for the
  reverse-complement recursion and site scan it never reads.
* **turing** — two Theorem 1 Turing-machine compilations (increment and
  complement) sharing one program, each with its own ``input``/``conf``/
  ``output`` predicates.  Querying one machine's output prunes the other
  machine's whole simulation.

Run with::

    PYTHONPATH=src python benchmarks/bench_demand.py            # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_demand.py --smoke    # tiny + shape check
    pytest benchmarks/bench_demand.py --benchmark-only -s       # harness run
"""

import argparse
import json
import sys
import time

from repro import EvaluationLimits, SequenceDatabase, compute_least_fixpoint
from repro.engine.demand import compile_demand
from repro.engine.query import evaluate_query
from repro.language.parser import parse_program
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog
from repro.workloads import random_dna

LIMITS = EvaluationLimits(max_iterations=2_000, max_sequence_length=2_000)

GENOME_PROGRAM = """
% transcription (Example 7.2)
rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
transcribe("", "") :- true.
transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R), trans(D[N+1], T).
trans("a", "u") :- true.
trans("t", "a") :- true.
trans("c", "g") :- true.
trans("g", "c") :- true.
% reverse complement (Example 1.4 recursion + complement table)
revcomp(X, Y) :- dnaseq(X), rc(X, Y).
rc("", "") :- true.
rc(X[1:N+1], C ++ Y) :- dnaseq(X), rc(X[1:N], Y), basecomp(X[N+1], C).
basecomp("a", "t") :- true.
basecomp("t", "a") :- true.
basecomp("c", "g") :- true.
basecomp("g", "c") :- true.
% restriction-site search (EcoRI)
site_at(R, R[N:end]) :- dnaseq(R), R[N:N+5] = "gaattc".
% in-silico bisulfite conversion (c -> t)
bisulfite(D, B) :- dnaseq(D), bis(D, B).
bis("", "") :- true.
bis(D[1:N+1], B ++ T) :- dnaseq(D), bis(D[1:N], B), bischar(D[N+1], T).
bischar("a", "a") :- true.
bischar("c", "t") :- true.
bischar("g", "g") :- true.
bischar("t", "t") :- true.
% suffix index of every strand
dnasuffix(X, X[N:end]) :- dnaseq(X).
"""


def _bench_case(label, program, database, pattern, repeats=1):
    """Time demand vs full for one pattern; verify identical answers."""
    started = time.perf_counter()
    full = compute_least_fixpoint(program, database, limits=LIMITS)
    for _ in range(repeats - 1):
        compute_least_fixpoint(program, database, limits=LIMITS)
    full_answers = evaluate_query(full.interpretation, pattern)
    full_seconds = (time.perf_counter() - started) / repeats

    compiled = compile_demand(program, pattern)
    started = time.perf_counter()
    for _ in range(repeats):
        demand_result = compiled.materialize(database, LIMITS)
        demand_answers = compiled.query(demand_result)
    demand_seconds = (time.perf_counter() - started) / repeats

    assert sorted(demand_answers.texts()) == sorted(full_answers.texts()), (
        f"{label}: demand and full answers differ for {pattern}"
    )
    return {
        "case": label,
        "pattern": pattern,
        "restricted": compiled.profile.restricted,
        "relevant_predicates": len(compiled.profile.relevant),
        "seeds": len(compiled.profile.seeds),
        "full_facts": full.fact_count,
        "demand_facts": demand_result.fact_count,
        "full_seconds": round(full_seconds, 4),
        "demand_seconds": round(demand_seconds, 4),
        "speedup_demand_vs_full": round(
            full_seconds / max(demand_seconds, 1e-9), 2
        ),
        "answers": len(demand_answers),
    }


def bench_genome(strands=10, strand_length=12):
    program = parse_program(GENOME_PROGRAM)
    dna = [random_dna(strand_length, seed=900 + i) for i in range(strands)]
    database = SequenceDatabase.from_dict({"dnaseq": dna})
    return [
        _bench_case(
            f"genome-{strands}x{strand_length}-constant-bound",
            program,
            database,
            f'rnaseq("{dna[0]}", R)',
        ),
        _bench_case(
            f"genome-{strands}x{strand_length}-free",
            program,
            database,
            "rnaseq(D, R)",
        ),
    ]


def bench_turing(word="1101"):
    increment = compile_tm_to_sequence_datalog(
        machines.increment_machine(),
        input_predicate="input_inc",
        output_predicate="output_inc",
        conf_predicate="conf_inc",
    )
    complement = compile_tm_to_sequence_datalog(
        machines.complement_machine(),
        input_predicate="input_com",
        output_predicate="output_com",
        conf_predicate="conf_com",
    )
    program = increment + complement
    database = SequenceDatabase.from_dict(
        {"input_inc": [word], "input_com": [word]}
    )
    return [
        _bench_case(
            f"turing-two-machines-{word}",
            program,
            database,
            "output_inc(X)",
        )
    ]


def run_benchmarks(smoke=False):
    """Run both workload families and return the JSON record."""
    if smoke:
        cases = bench_genome(strands=3, strand_length=6) + bench_turing(word="10")
    else:
        cases = bench_genome() + bench_turing()
    report = {
        "benchmark": "demand",
        "unit": "seconds",
        "smoke": smoke,
        "cases": cases,
    }
    validate_report(report)
    for case in cases:
        assert case["restricted"], f"{case['case']}: expected a restricted slice"
        assert case["demand_facts"] < case["full_facts"], (
            f"{case['case']}: the demand slice must be strictly smaller than "
            f"the full fixpoint ({case['demand_facts']} vs {case['full_facts']})"
        )
    if not smoke:
        selective = cases[0]
        assert selective["speedup_demand_vs_full"] >= 2.0, (
            "a constant-bound selective query must be >=2x faster demand-driven, "
            f"got {selective['speedup_demand_vs_full']}x"
        )
    return report


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "demand" and report["unit"] == "seconds"
    assert isinstance(report["cases"], list) and report["cases"]
    required = {
        "case": str,
        "pattern": str,
        "restricted": bool,
        "relevant_predicates": int,
        "seeds": int,
        "full_facts": int,
        "demand_facts": int,
        "full_seconds": float,
        "demand_seconds": float,
        "speedup_demand_vs_full": float,
        "answers": int,
    }
    for case in report["cases"]:
        for key, kind in required.items():
            assert key in case, f"benchmark case missing key {key!r}"
            assert isinstance(case[key], kind), (
                f"benchmark case key {key!r} should be {kind.__name__}, "
                f"got {type(case[key]).__name__}"
            )
    json.dumps(report)  # must be serialisable as-is


def test_demand_benchmark(benchmark):
    report = run_benchmarks()
    print()
    print(json.dumps(report, indent=2))

    program = parse_program(GENOME_PROGRAM)
    dna = [random_dna(12, seed=900 + i) for i in range(10)]
    database = SequenceDatabase.from_dict({"dnaseq": dna})
    compiled = compile_demand(program, f'rnaseq("{dna[0]}", R)')
    benchmark.pedantic(
        lambda: compiled.materialize(database, LIMITS), rounds=3, iterations=1
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "speedup assertion",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
