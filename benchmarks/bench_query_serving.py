"""Query-serving benchmark: prepared queries and incremental maintenance.

Measures the two claims of the serving layer and emits a JSON record:

* **prepared vs legacy pattern queries** — repeated constant-bound pattern
  queries served through :class:`~repro.engine.session.DatalogSession`
  (compile-once plans from an LRU cache, composite-index scans, row-level
  dedup) against the pre-session path that re-parsed the pattern and built a
  fresh backtracking evaluator with full-binding dedup keys on every call;
* **incremental vs from-scratch maintenance** — after a small delta of base
  facts, :meth:`DatalogSession.add_facts` (version-gated, delta-restricted
  re-firing) against recomputing the least fixpoint of the enlarged
  database from scratch, on the Example 7.2 genome workload and a Theorem 1
  Turing-machine workload.  Both paths must agree fact-for-fact.

Run with::

    PYTHONPATH=src python benchmarks/bench_query_serving.py       # JSON on stdout
    pytest benchmarks/bench_query_serving.py --benchmark-only -s  # harness run
"""

import json
import time

from repro import EvaluationLimits, SequenceDatabase, compute_least_fixpoint
from repro.core import paper_programs
from repro.engine.evaluation import ClauseEvaluator
from repro.engine.session import DatalogSession
from repro.language.atoms import Atom
from repro.language.clauses import Clause
from repro.language.parser import parse_atom
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog
from repro.workloads import random_dna, string_database

LIMITS = EvaluationLimits(max_iterations=500, max_sequence_length=500)


# ----------------------------------------------------------------------
# Legacy query path (pre-session): re-parse, fresh evaluator, full-binding
# dedup keys.  Kept here verbatim as the baseline the prepared path replaces.
# ----------------------------------------------------------------------
def legacy_query_rows(interpretation, pattern):
    atom = parse_atom(pattern)
    relation = interpretation.relation(atom.predicate)
    if relation is None:
        return []
    dummy_clause = Clause(Atom("query_result", atom.args), [atom])
    evaluator = ClauseEvaluator(dummy_clause)
    rows = []
    seen = set()
    for substitution in evaluator._body_solutions(interpretation, None, -1):
        values = substitution.evaluate_atom(atom)
        if values is None:
            continue
        _, row = values
        key = (
            row,
            frozenset(substitution.sequence_bindings.items()),
            frozenset(substitution.index_bindings.items()),
        )
        if key in seen:
            continue
        seen.add(key)
        rows.append(row)
    return rows


def bench_pattern_queries(count=60, length=10, repeats=10):
    """Serve many constant-bound suffix queries both ways; compare totals."""
    program = paper_programs.suffixes_program()
    database = string_database(count, length, alphabet="abcd", seed=11)
    # A serving session sizes the prepared cache to its hot query set; the
    # legacy path has nothing to amortise, it re-parses and rebuilds the
    # evaluator on every call.
    session = DatalogSession(
        program, database, limits=LIMITS, prepared_cache_size=4096
    )
    interpretation = session.interpretation

    # One ground (fully constant-bound) query per stored suffix, repeated:
    # the steady-state mix of a serving workload.
    suffixes = sorted(row[0].text for row in interpretation.tuples("suffix"))
    patterns = [f'suffix("{text}")' for text in suffixes if text] * repeats

    started = time.perf_counter()
    legacy_total = 0
    for pattern in patterns:
        legacy_total += len(set(legacy_query_rows(interpretation, pattern)))
    legacy_seconds = time.perf_counter() - started

    started = time.perf_counter()
    prepared_total = 0
    for pattern in patterns:
        prepared_total += len(session.query(pattern))
    prepared_seconds = time.perf_counter() - started

    assert prepared_total == legacy_total, "prepared and legacy answers differ"
    for pattern in patterns[:20]:
        assert set(session.query(pattern).rows) == set(
            legacy_query_rows(interpretation, pattern)
        ), f"prepared and legacy rows differ for {pattern}"

    return {
        "workload": f"suffix-closure {count}x{length}, {len(patterns)} ground queries",
        "legacy_seconds": round(legacy_seconds, 4),
        "prepared_seconds": round(prepared_seconds, 4),
        "speedup_prepared_vs_legacy": round(
            legacy_seconds / max(prepared_seconds, 1e-9), 2
        ),
        "answers": prepared_total,
    }


def _bench_incremental_case(label, program, base_facts, delta_facts, check=None):
    """Time session.add_facts(delta) against from-scratch on base ∪ delta."""
    session = DatalogSession(program, base_facts, limits=LIMITS)
    started = time.perf_counter()
    report = session.add_facts(delta_facts)
    incremental_seconds = time.perf_counter() - started

    full = SequenceDatabase.from_dict(
        {
            predicate: list(base_facts.get(predicate, []))
            + list(delta_facts.get(predicate, []))
            for predicate in set(base_facts) | set(delta_facts)
        }
    )
    started = time.perf_counter()
    scratch = compute_least_fixpoint(program, full, limits=LIMITS)
    scratch_seconds = time.perf_counter() - started

    assert session.interpretation == scratch.interpretation, (
        f"{label}: incremental result differs from from-scratch evaluation"
    )
    if check is not None:
        assert check(session), f"{label}: wrong model"
    return {
        "case": label,
        "delta_base_facts": report.base_facts_added,
        "delta_derived_facts": report.facts_added,
        "incremental_seconds": round(incremental_seconds, 4),
        "from_scratch_seconds": round(scratch_seconds, 4),
        "speedup_incremental_vs_scratch": round(
            scratch_seconds / max(incremental_seconds, 1e-9), 2
        ),
        "total_facts": scratch.fact_count,
    }


def bench_incremental(strands=12, strand_length=16):
    """Genome and Turing maintenance cases; the genome one carries the bar."""
    cases = []

    program = paper_programs.transcribe_simulation_program()
    dna = [random_dna(strand_length, seed=500 + i) for i in range(strands + 1)]
    cases.append(
        _bench_incremental_case(
            f"ex72-genome-{strands}+1x{strand_length}",
            program,
            {"dnaseq": dna[:-1]},
            {"dnaseq": dna[-1:]},
            check=lambda session: len(session.query("rnaseq(D, R)")) == strands + 1,
        )
    )

    machine = machines.increment_machine()
    tm_program = compile_tm_to_sequence_datalog(machine)
    cases.append(
        _bench_incremental_case(
            "thm1-tm-increment-1101+111",
            tm_program,
            {"input": ["1101"]},
            {"input": ["111"]},
        )
    )
    return cases


def run_benchmarks():
    """Run both benchmark families and return the JSON record."""
    report = {
        "benchmark": "query_serving",
        "unit": "seconds",
        "pattern_queries": bench_pattern_queries(),
        "incremental_maintenance": bench_incremental(),
    }
    assert (
        report["pattern_queries"]["speedup_prepared_vs_legacy"] > 1.0
    ), "prepared queries must beat the legacy scan path"
    genome = report["incremental_maintenance"][0]
    assert genome["speedup_incremental_vs_scratch"] >= 5.0, (
        "incremental maintenance must be >=5x faster than from-scratch "
        f"on the genome workload, got {genome['speedup_incremental_vs_scratch']}x"
    )
    return report


def test_query_serving(benchmark):
    report = run_benchmarks()
    print()
    print(json.dumps(report, indent=2))

    program = paper_programs.transcribe_simulation_program()
    dna = [random_dna(16, seed=500 + i) for i in range(13)]
    session = DatalogSession(program, {"dnaseq": dna[:-1]}, limits=LIMITS)
    benchmark.pedantic(
        lambda: session.add_facts({"dnaseq": dna[-1:]}),
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":
    print(json.dumps(run_benchmarks(), indent=2))
