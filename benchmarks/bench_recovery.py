"""Crash-recovery benchmark: snapshot + WAL-tail restart vs cold fixpoint.

Measures the tentpole claim of :mod:`repro.storage` — that restarting a
durable session from its newest snapshot plus a short WAL tail beats
recomputing the least fixpoint from the base facts — on the genome
workload (transitive closure of the k-mer overlap graph of random DNA
reads, the same join-heavy model :mod:`bench_kernels` uses):

1. the overlap edges are ingested durably in batches (write-ahead commit
   protocol), a checkpoint lands before the final batches, and the
   process "crashes" (file handles dropped, nothing else flushed);
2. **recovery** times :func:`repro.storage.open_session` over the crashed
   directory — snapshot load (no re-derivation: the restored model is
   marked converged) plus incremental replay of the WAL tail;
3. **cold** times computing the same least fixpoint from the bare edge
   set, i.e. a restart without the storage engine.

The recovered model is asserted fact-for-fact identical to the cold
model; the full (non-smoke) run asserts recovery is >=5x faster.  Smoke
runs only validate behaviour and report shape.

Run with::

    PYTHONPATH=src python benchmarks/bench_recovery.py           # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke   # tiny + shape check
    pytest benchmarks/bench_recovery.py --benchmark-only -s      # harness run
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_kernels import LIMITS, overlap_database  # noqa: E402
from repro import compute_least_fixpoint  # noqa: E402
from repro.language.parser import parse_program  # noqa: E402
from repro.storage import open_session  # noqa: E402


#: Non-linear transitive closure of the overlap graph.  The non-linear
#: variant re-derives each reachable pair once per intermediate vertex,
#: so the cold fixpoint pays join work roughly quadratic in component
#: size — exactly the work a snapshot restore skips, since recovery cost
#: is linear in the *final* model.  (bench_kernels uses the linear rule,
#: whose cold cost is insert-dominated and would understate the gap.)
RECOVERY_PROGRAM = """
reach(X, Y) :- overlap(X, Y).
reach(X, Z) :- reach(X, Y), reach(Y, Z).
"""

#: Edges per post-checkpoint batch.  The point of a checkpoint is that
#: the WAL tail stays short — recovery replays only the work that arrived
#: since, so the tail models "a few batches landed after the last
#: background checkpoint", not a second copy of the workload.
_TAIL_BATCH_EDGES = 4


def _ingest_and_crash(data_dir, edge_rows, tail_batches):
    """Durably ingest the workload, checkpoint, add a tail, then crash."""
    session = open_session(
        RECOVERY_PROGRAM,
        data_dir,
        limits=LIMITS,
        storage_options={"background_checkpoints": False},
    )
    split = max(1, len(edge_rows) - tail_batches * _TAIL_BATCH_EDGES)
    head, tail_edges = edge_rows[:split], edge_rows[split:]
    session.add_facts([("overlap", edge) for edge in head])
    session.storage.checkpoint()
    for start in range(0, len(tail_edges), _TAIL_BATCH_EDGES):
        batch = tail_edges[start:start + _TAIL_BATCH_EDGES]
        session.add_facts([("overlap", edge) for edge in batch])
    stats = session.storage.stats()
    session.storage.abandon()  # crash: drop handles, flush nothing further
    session._core.close()
    return stats


def _model_facts(interpretation):
    return {
        (predicate, tuple(str(value) for value in row))
        for predicate in interpretation.predicates()
        for row in interpretation.tuples(predicate)
    }


def _bench_case(label, reads, read_length, tail_batches=3):
    database = overlap_database(reads, read_length)
    edge_rows = [
        tuple(value.text for value in row)
        for row in database.relation("overlap")
    ]
    program = parse_program(RECOVERY_PROGRAM)

    # Untimed warmup: pays first-time interning and plan compilation so
    # neither timed path subsidises the other.
    compute_least_fixpoint(program, database, limits=LIMITS, strategy="compiled")

    data_dir = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        _ingest_and_crash(data_dir, edge_rows, tail_batches)

        started = time.perf_counter()
        recovered = open_session(RECOVERY_PROGRAM, data_dir, limits=LIMITS)
        recovery_seconds = time.perf_counter() - started
        report = recovered.storage.recovery

        started = time.perf_counter()
        cold = compute_least_fixpoint(
            program, database, limits=LIMITS, strategy="compiled"
        )
        cold_seconds = time.perf_counter() - started

        identical = _model_facts(recovered.interpretation) == _model_facts(
            cold.interpretation
        )
        assert identical, f"{label}: recovered model differs from cold fixpoint"
        assert report.snapshot_generation is not None, (
            f"{label}: recovery did not use the snapshot"
        )
        assert report.replayed_batches == tail_batches, (
            f"{label}: expected a {tail_batches}-batch WAL tail, replayed "
            f"{report.replayed_batches}"
        )
        facts = recovered.fact_count()
        recovered.storage.close(final_snapshot=False)
        recovered.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    return {
        "case": label,
        "kind": "recovery",
        "facts": facts,
        "edges": len(edge_rows),
        "replayed_batches": report.replayed_batches,
        "dropped_batches": report.dropped_batches,
        "identical": identical,
        "used_snapshot": report.snapshot_generation is not None,
        "recovery_seconds": round(recovery_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "speedup_recovery_vs_cold": round(
            cold_seconds / max(recovery_seconds, 1e-9), 2
        ),
    }


def run_benchmarks(smoke=False):
    if smoke:
        cases = [_bench_case("genome-overlap-40x10", 40, 10)]
    else:
        cases = [
            _bench_case("genome-overlap-250x12", 250, 12),
            _bench_case("genome-overlap-300x12", 300, 12),
        ]
    report = {
        "benchmark": "recovery",
        "unit": "seconds",
        "smoke": smoke,
        "cases": cases,
    }
    validate_report(report)
    if not smoke:
        worst = min(case["speedup_recovery_vs_cold"] for case in cases)
        for case in cases:
            case["asserted"] = True
        assert worst >= 5.0, (
            f"expected snapshot+WAL-tail recovery >=5x faster than the cold "
            f"fixpoint, got {worst}x"
        )
    return report


_CASE_SHAPE = {
    "facts": int,
    "edges": int,
    "replayed_batches": int,
    "dropped_batches": int,
    "identical": bool,
    "used_snapshot": bool,
    "recovery_seconds": float,
    "cold_seconds": float,
    "speedup_recovery_vs_cold": float,
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "recovery" and report["unit"] == "seconds"
    assert isinstance(report["cases"], list) and report["cases"]
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        assert case.get("kind") == "recovery", f"unknown case kind in {case}"
        for key, expected in _CASE_SHAPE.items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    json.dumps(report)  # must be serialisable as-is


def test_recovery_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))

    def recover_once():
        data_dir = tempfile.mkdtemp(prefix="bench-recovery-")
        try:
            database = overlap_database(30, 10)
            edge_rows = [
                tuple(value.text for value in row)
                for row in database.relation("overlap")
            ]
            _ingest_and_crash(data_dir, edge_rows, tail_batches=2)
            session = open_session(RECOVERY_PROGRAM, data_dir, limits=LIMITS)
            session.storage.close(final_snapshot=False)
            session.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)

    benchmark.pedantic(recover_once, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: validate behaviour and JSON shape, skip the "
        ">=5x recovery-speedup assertion",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
