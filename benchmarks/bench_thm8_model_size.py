"""THM-8 / COR-2: strongly safe order-2 programs have polynomial minimal models.

Theorem 8: for a strongly safe Transducer Datalog program of order at most 2,
the size of the minimal model (the number of sequences in its extended
active domain, Definition 11) is polynomial in the size of the database.
The benchmark evaluates the Example 7.1 genome program (order 1) and a
squaring program (order 2) over databases of growing size and reports the
measured model sizes against a fixed polynomial envelope.
"""

from conftest import print_table

from repro import SequenceDatabase, TransducerDatalogProgram
from repro.core import paper_programs
from repro.transducers import TransducerCatalog, library
from repro.workloads import dna_database, random_strings


def test_theorem_8_polynomial_model_size(benchmark):
    genome_program, genome_catalog = paper_programs.genome_program()
    genome = TransducerDatalogProgram(genome_program, genome_catalog)

    square = TransducerDatalogProgram(
        "sq(X, @square(X)) :- r(X).",
        TransducerCatalog([library.square_transducer("ab")]),
    )

    rows = []
    for count in (1, 2, 4):
        dna_db = dna_database(count, length=6, seed=3)
        genome_result = genome.evaluate(dna_db, require_safety=True)
        rows.append(
            (
                "genome (order 1)",
                count,
                dna_db.size(),
                genome_result.model_size,
                dna_db.size() ** 2,
            )
        )
        assert genome_result.model_size <= dna_db.size() ** 2

        square_db = SequenceDatabase.from_dict(
            {"r": random_strings(count, 3, alphabet="ab", seed=count)}
        )
        square_result = square.evaluate(square_db, require_safety=True)
        rows.append(
            (
                "square (order 2)",
                count,
                square_db.size(),
                square_result.model_size,
                square_db.size() ** 2,
            )
        )
        assert square_result.model_size <= square_db.size() ** 2

    print_table(
        "Theorem 8: minimal model size of strongly safe order-<=2 programs",
        ["program", "db tuples", "db size", "model size", "polynomial envelope (size^2)"],
        rows,
    )

    database = dna_database(2, length=6, seed=3)
    benchmark.pedantic(
        lambda: genome.evaluate(database, require_safety=True), rounds=3, iterations=1
    )
