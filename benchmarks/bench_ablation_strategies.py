"""Ablation: naive vs semi-naive fixpoint evaluation.

Not a paper artifact but a design choice called out in DESIGN.md: the engine
offers the textbook naive iteration (the reference semantics of Section 3.3)
and a semi-naive mode that restricts delta-safe clauses to derivations using
at least one new fact.  The ablation checks that both strategies compute the
same least fixpoint on representative paper programs and compares their
cost.
"""

from conftest import print_table

from repro import SequenceDatabase, compute_least_fixpoint
from repro.core import paper_programs
from repro.engine.fixpoint import NAIVE, SEMI_NAIVE
from repro.workloads import anbncn


def test_ablation_naive_vs_semi_naive(benchmark):
    cases = [
        ("Example 1.3 (a^n b^n c^n)", paper_programs.anbncn_program(),
         SequenceDatabase.from_dict({"r": [anbncn(5), anbncn(5)[:-1]]})),
        ("Example 1.4 (reverse)", paper_programs.reverse_program(),
         SequenceDatabase.from_dict({"r": ["01101100"]})),
        ("Example 7.2 (transcription)", paper_programs.transcribe_simulation_program(),
         SequenceDatabase.from_dict({"dnaseq": ["acgtacgt"]})),
    ]

    rows = []
    for label, program, database in cases:
        naive = compute_least_fixpoint(program, database, strategy=NAIVE)
        semi = compute_least_fixpoint(program, database, strategy=SEMI_NAIVE)
        assert naive.interpretation == semi.interpretation
        speedup = naive.elapsed_seconds / max(semi.elapsed_seconds, 1e-9)
        rows.append(
            (
                label,
                naive.fact_count,
                f"{naive.elapsed_seconds * 1000:.1f}",
                f"{semi.elapsed_seconds * 1000:.1f}",
                f"{speedup:.2f}x",
            )
        )

    print_table(
        "Ablation: naive vs semi-naive evaluation (same least fixpoint)",
        ["program", "facts", "naive (ms)", "semi-naive (ms)", "naive/semi-naive"],
        rows,
    )

    program = paper_programs.anbncn_program()
    database = SequenceDatabase.from_dict({"r": [anbncn(5), anbncn(5)[:-1]]})
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database, strategy=SEMI_NAIVE),
        rounds=3,
        iterations=1,
    )
