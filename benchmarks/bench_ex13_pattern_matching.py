"""EX-1.3: pattern matching (a^n b^n c^n) over growing inputs.

Example 1.3 retrieves the sequences of the non-context-free language
``a^n b^n c^n`` with pure structural recursion.  The benchmark sweeps the
repeat count ``n``, checks that exactly the genuine members are accepted,
and measures evaluation time -- the workload behind the Theorem 3 claim that
the non-constructive fragment stays polynomial.
"""

from conftest import print_table

from repro import SequenceDatabase, compute_least_fixpoint
from repro.core import paper_programs
from repro.engine import evaluate_query
from repro.workloads import anbncn


def test_example_1_3_pattern_matching_sweep(benchmark):
    program = paper_programs.anbncn_program()
    rows = []
    for n in (2, 4, 6, 8):
        word = anbncn(n)
        decoys = [word[:-1], "a" * n + "b" * (n + 1) + "c" * n, "cba" * n]
        database = SequenceDatabase.from_dict({"r": [word] + decoys})
        result = compute_least_fixpoint(program, database)
        accepted = set(evaluate_query(result.interpretation, "answer(X)").values("X"))
        rows.append(
            (
                n,
                3 * n,
                len(accepted),
                result.iterations,
                f"{result.elapsed_seconds * 1000:.1f}",
                "ok" if accepted == {word} else "MISMATCH",
            )
        )
        assert accepted == {word}

    print_table(
        "Example 1.3: a^n b^n c^n recognition (1 member + 3 decoys per row)",
        ["n", "member length", "accepted", "iterations", "time (ms)", "status"],
        rows,
    )

    database = SequenceDatabase.from_dict({"r": [anbncn(6), anbncn(6)[:-1]]})
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database), rounds=3, iterations=1
    )
