"""COR-3: strongly safe order-2 programs express the PTIME sequence functions.

Corollary 3 characterises strongly safe order-2 Transducer Datalog as
expressing exactly the PTIME sequence functions.  The benchmark runs three
concrete PTIME functions -- complement, echo (symbol doubling) and squaring
-- as strongly safe programs over a length sweep and reports evaluation time
and output length; each stays within the polynomial envelope the corollary
promises.
"""

from conftest import print_table

from repro import SequenceDatabase, TransducerDatalogProgram
from repro.engine import evaluate_query
from repro.transducers import TransducerCatalog, library


def _run_function(program: TransducerDatalogProgram, word: str) -> tuple:
    database = SequenceDatabase.single_input(word)
    result = program.evaluate(database, require_safety=True)
    outputs = evaluate_query(result.interpretation, "output(Y)").values("Y")
    return outputs[0], result


def test_corollary_3_ptime_functions(benchmark):
    complement = TransducerDatalogProgram(
        "output(@complement(X)) :- input(X).",
        TransducerCatalog([library.complement_transducer("01")]),
    )
    echo = TransducerDatalogProgram(
        "output(@echo(X, X)) :- input(X).",
        TransducerCatalog([library.echo_transducer("01")]),
    )
    square = TransducerDatalogProgram(
        "output(@square(X)) :- input(X).",
        TransducerCatalog([library.square_transducer("01")]),
    )
    for program in (complement, echo, square):
        assert program.is_strongly_safe()
        assert program.order <= 2

    rows = []
    for label, program, expectation in (
        ("complement (order 1)", complement, lambda w, out: out == "".join("1" if c == "0" else "0" for c in w)),
        ("echo (order 1)", echo, lambda w, out: out == "".join(c * 2 for c in w)),
        ("square (order 2)", square, lambda w, out: len(out) == len(w) ** 2),
    ):
        for length in (2, 4, 8):
            word = ("01" * length)[:length]
            output, result = _run_function(program, word)
            rows.append(
                (
                    label,
                    length,
                    len(output),
                    f"{result.elapsed_seconds * 1000:.1f}",
                    "ok" if expectation(word, output) else "MISMATCH",
                )
            )
            assert expectation(word, output)

    print_table(
        "Corollary 3: PTIME sequence functions as strongly safe programs",
        ["function", "input length", "output length", "time (ms)", "status"],
        rows,
    )

    database = SequenceDatabase.single_input("01010101")
    benchmark.pedantic(
        lambda: complement.evaluate(database, require_safety=True), rounds=3, iterations=1
    )
