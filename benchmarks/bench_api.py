"""Versioned-API benchmark: remote latency, TCP throughput, paged memory.

Measures the three serving claims of :mod:`repro.api` and emits a JSON
record:

* **latency** — per-query wall-clock of a remote
  :class:`~repro.api.client.DatalogClient` over live TCP vs the same
  warm-cache query in-process on the shared
  :class:`~repro.engine.server.DatalogServer` backend.  The ratio is the
  pure wire overhead (framing + JSON codecs + loopback round-trip).
* **tcp_serving** — aggregate query throughput under 1 vs 8 concurrent
  TCP clients (own connections, overlapping genome workloads) against a
  cold server.  The backend executes each distinct (generation, pattern)
  once and serves the rest from the result cache, so aggregate throughput
  must scale ≥4x with 8 clients (asserted in full runs, recorded in
  smoke).
* **paging** — client peak memory reassembling a large result
  monolithically (``client.query``) vs streaming it page-by-page
  (``client.query_iter``).  Paged consumption must stay strictly below
  the monolithic peak (asserted always): the wire and the client hold one
  page at a time, which is the bounded-memory contract for million-row
  answers.

Run with::

    PYTHONPATH=src python benchmarks/bench_api.py            # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_api.py --smoke    # tiny + shape check
"""

import argparse
import json
import os
import sys
import threading
import time
import tracemalloc

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_demand import GENOME_PROGRAM  # noqa: E402  (same workload family)

from repro import (  # noqa: E402
    DatalogClient,
    DatalogServer,
    EvaluationLimits,
    SequenceDatabase,
    serve_tcp,
)
from repro.workloads import random_dna  # noqa: E402

LIMITS = EvaluationLimits(
    max_iterations=2_000, max_facts=5_000_000, max_domain_size=2_000_000,
    max_sequence_length=4_000,
)

SUFFIX_PROGRAM = "suffix(X[N:end]) :- r(X)."


def genome_database(strands, strand_length):
    dna = [random_dna(strand_length, seed=900 + i) for i in range(strands)]
    return dna, SequenceDatabase.from_dict({"dnaseq": dna})


# ----------------------------------------------------------------------
# Latency: remote vs in-process on one shared warm backend
# ----------------------------------------------------------------------
def bench_latency(smoke=False):
    strands, length, queries = (3, 8, 40) if smoke else (8, 12, 300)
    dna, database = genome_database(strands, length)
    pattern = f'rnaseq("{dna[0]}", R)'
    backend = DatalogServer(GENOME_PROGRAM, database, limits=LIMITS)
    try:
        with serve_tcp(backend, port=0) as transport:
            backend.query(pattern)  # warm the result cache for both sides

            started = time.perf_counter()
            for _ in range(queries):
                backend.query(pattern)
            inprocess_seconds = time.perf_counter() - started

            with DatalogClient(*transport.address) as client:
                client.query(pattern)  # warm the connection
                started = time.perf_counter()
                for _ in range(queries):
                    client.query(pattern)
                remote_seconds = time.perf_counter() - started
    finally:
        backend.close()
    return [{
        "case": "latency-warm-query",
        "kind": "latency",
        "queries": queries,
        "inprocess_seconds": round(inprocess_seconds, 6),
        "remote_seconds": round(remote_seconds, 6),
        "remote_microseconds_per_query": round(1e6 * remote_seconds / queries, 1),
        "remote_over_inprocess": round(
            remote_seconds / max(inprocess_seconds, 1e-9), 1
        ),
    }]


# ----------------------------------------------------------------------
# Throughput: aggregate TCP clients against a cold server
# ----------------------------------------------------------------------
def _client_workload(dna, repeats):
    """Overlapping read mix: selective per-strand queries, whole-relation
    analytics, and one expensive indexed-term pattern (prefix enumeration:
    costly to execute, small to ship), repeated — clients re-ask the same
    things, so the server executes each distinct pattern once per
    generation and the rest of the aggregate load is cache hits."""
    patterns = [f'rnaseq("{strand}", R)' for strand in dna[:6]]
    patterns += [
        "rnaseq(D, R)",
        "revcomp(X, Y)",
        "bisulfite(D, B)",
        "site_at(R, S)",
        "dnasuffix(X, S)",
        "dnasuffix(X[1:N], S)",
    ]
    return patterns * repeats


def _measure_tcp_clients(database, workload, clients):
    """Aggregate seconds for ``clients`` TCP connections each running
    ``workload`` against a cold server (fresh result cache)."""
    with serve_tcp(GENOME_PROGRAM, database, port=0, limits=LIMITS) as transport:
        host, port = transport.address
        barrier = threading.Barrier(clients + 1)
        errors = []

        def run_client():
            try:
                with DatalogClient(host, port) as client:
                    barrier.wait()
                    for pattern in workload:
                        client.query(pattern)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run_client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        stats = transport.backend.stats()["server"]
        return elapsed, stats


def bench_tcp_serving(smoke=False):
    if smoke:
        strands, length, repeats, many = 3, 6, 2, 4
    else:
        strands, length, repeats, many = 16, 14, 2, 8
    dna, database = genome_database(strands, length)
    workload = _client_workload(dna, repeats)
    cases = []
    throughput = {}
    for clients in (1, many):
        seconds, stats = _measure_tcp_clients(database, workload, clients)
        queries = clients * len(workload)
        qps = queries / max(seconds, 1e-9)
        throughput[clients] = qps
        cases.append({
            "case": f"tcp-serving-{clients}-clients",
            "kind": "tcp_serving",
            "clients": clients,
            "queries": queries,
            "seconds": round(seconds, 4),
            "throughput_qps": round(qps, 1),
            "cache_hits": stats["result_cache"]["hits"],
        })
    cases.append({
        "case": "tcp-aggregate-speedup",
        "kind": "tcp_serving_speedup",
        "clients": many,
        "speedup_vs_single_client": round(throughput[many] / throughput[1], 2),
    })
    return cases


# ----------------------------------------------------------------------
# Paging: monolithic reassembly vs streamed cursor pages
# ----------------------------------------------------------------------
def bench_paging(smoke=False):
    length, page_size = (400, 50) if smoke else (2000, 50)
    strand = random_dna(length, seed=990)
    limits = EvaluationLimits(
        max_iterations=10_000, max_facts=5_000_000, max_domain_size=5_000_000,
        max_sequence_length=max(4_000, length + 1),
    )
    with serve_tcp(SUFFIX_PROGRAM, {"r": [strand]}, port=0, limits=limits) as transport:
        with DatalogClient(*transport.address) as client:
            client.query("r(X)")  # settle connection buffers before measuring

            tracemalloc.start()
            monolithic = client.query("suffix(X)")
            _, monolithic_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            rows = len(monolithic.rows)
            del monolithic

            tracemalloc.start()
            streamed_rows = 0
            for _ in client.query_iter("suffix(X)", page_size=page_size):
                streamed_rows += 1
            _, paged_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    assert streamed_rows == rows, "paged stream lost rows"
    bounded = paged_peak < monolithic_peak
    assert bounded, (
        f"paged peak {paged_peak} bytes must stay below monolithic "
        f"{monolithic_peak} bytes"
    )
    return [{
        "case": "paged-vs-monolithic",
        "kind": "paging",
        "rows": rows,
        "page_size": page_size,
        "monolithic_peak_kb": round(monolithic_peak / 1024, 1),
        "paged_peak_kb": round(paged_peak / 1024, 1),
        "memory_ratio": round(monolithic_peak / max(paged_peak, 1), 1),
        "bounded_memory": bounded,
    }]


# ----------------------------------------------------------------------
# Report assembly and validation
# ----------------------------------------------------------------------
def run_benchmarks(smoke=False):
    cases = bench_latency(smoke) + bench_tcp_serving(smoke) + bench_paging(smoke)
    report = {
        "benchmark": "api",
        "unit": "seconds",
        "smoke": smoke,
        "cpu_count": os.cpu_count() or 1,
        "cases": cases,
    }
    validate_report(report)
    if not smoke:
        for case in cases:
            if case["kind"] == "tcp_serving_speedup":
                case["asserted"] = True
                assert case["speedup_vs_single_client"] >= 4.0, (
                    "expected >=4x aggregate TCP throughput with "
                    f"{case['clients']} clients, got "
                    f"{case['speedup_vs_single_client']}x"
                )
    return report


_CASE_SHAPES = {
    "latency": {
        "queries": int,
        "inprocess_seconds": float,
        "remote_seconds": float,
        "remote_microseconds_per_query": float,
        "remote_over_inprocess": float,
    },
    "tcp_serving": {
        "clients": int,
        "queries": int,
        "seconds": float,
        "throughput_qps": float,
        "cache_hits": int,
    },
    "tcp_serving_speedup": {
        "clients": int,
        "speedup_vs_single_client": float,
    },
    "paging": {
        "rows": int,
        "page_size": int,
        "monolithic_peak_kb": float,
        "paged_peak_kb": float,
        "memory_ratio": float,
        "bounded_memory": bool,
    },
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "api" and report["unit"] == "seconds"
    assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1
    assert isinstance(report["cases"], list) and report["cases"]
    kinds = set()
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        kind = case.get("kind")
        assert kind in _CASE_SHAPES, f"unknown benchmark case kind {kind!r}"
        kinds.add(kind)
        for key, expected in _CASE_SHAPES[kind].items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    assert kinds == set(_CASE_SHAPES), f"missing case kinds: {set(_CASE_SHAPES) - kinds}"
    for case in report["cases"]:
        if case["kind"] == "paging":
            assert case["bounded_memory"], f"{case['case']}: memory not bounded"
    json.dumps(report)  # must be serialisable as-is


def test_api_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    _, database = genome_database(3, 6)

    def query_remote():
        with serve_tcp(GENOME_PROGRAM, database, port=0, limits=LIMITS) as transport:
            with DatalogClient(*transport.address) as client:
                client.query("rnaseq(D, R)")

    benchmark.pedantic(query_remote, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "throughput assertion",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
