"""Section 1.1 comparison: Sequence Datalog vs the related-work baselines.

The paper's Section 1.1 argues that earlier formalisms for sequence
databases are either safe but weak (the safe fragment of the rs-operation
calculus, temporal list logic) or expressive but hard to evaluate (alignment
logic's nondeterministic two-way automata), and that none of them combines
pattern matching with data-dependent restructuring.  This benchmark makes
the comparison executable on two of the paper's own motivating queries:

* **Pattern matching** (Example 1.3, a^n b^n c^n): Sequence Datalog and the
  alignment automaton recognise the language exactly; the temporal formula
  can only express its regular *shape* (a-block, b-block, c-block) and thus
  accepts unequal-block decoys; rs-extractors can test the shape with a
  bounded pattern but not the equal-length constraint.
* **Restructuring** (Example 1.4, reverse): Sequence Datalog computes the
  reverse of every stored string; none of the three baselines can (the
  acceptors and temporal formulas never construct sequences, and
  rs-operations only rearrange a fixed number of factors), so the benchmark
  reports "not expressible" for them, which is exactly the Section 1.1 row
  the paper argues informally.

Timings are indicative (pure Python); the claims under test are the
expressibility verdicts, which are asserted.
"""

import time

from conftest import print_table

from repro import SequenceDatabase, compute_least_fixpoint
from repro.baselines.alignment import accepts_anbncn
from repro.baselines.rs_operations import Pattern, Extractor, variable
from repro.baselines.temporal import holds, sorted_blocks_formula
from repro.core import paper_programs
from repro.engine import evaluate_query
from repro.workloads import anbncn


def _abc_shape_extractor() -> Extractor:
    """An rs-extractor testing the a*b*c* shape: it matches when the word
    splits into an a-block, a b-block and a c-block, and extracts the word
    itself.  Equal block lengths cannot be required by a finite pattern."""
    return Extractor(
        input_pattern=Pattern([variable("A"), variable("B"), variable("C")]),
        output_pattern=Pattern([variable("A"), variable("B"), variable("C")]),
        name="abc_shape",
    )


def _rs_shape_matches(word: str) -> bool:
    pattern = Pattern([variable("A"), variable("B"), variable("C")])
    for bindings in pattern.matches(word):
        blocks = (bindings["A"], bindings["B"], bindings["C"])
        if (
            set(blocks[0]) <= {"a"}
            and set(blocks[1]) <= {"b"}
            and set(blocks[2]) <= {"c"}
        ):
            return True
    return False


def test_pattern_matching_comparison(benchmark):
    """Who recognises a^n b^n c^n exactly, and who only its regular shape."""
    members = [anbncn(n) for n in range(1, 5)]
    decoys = ["aab", "abcc", "aabbccc", "abcabc", "cba"]
    shaped_decoys = [d for d in decoys if list(d) == sorted(d)]
    words = members + decoys

    engine_program = paper_programs.anbncn_program()
    database = SequenceDatabase.from_dict({"r": words})

    started = time.perf_counter()
    result = compute_least_fixpoint(engine_program, database)
    datalog_answers = set(
        evaluate_query(result.interpretation, "answer(X)").values("X")
    )
    datalog_ms = (time.perf_counter() - started) * 1000

    started = time.perf_counter()
    alignment_answers = {word for word in words if accepts_anbncn(word)}
    alignment_ms = (time.perf_counter() - started) * 1000

    formula = sorted_blocks_formula(("a", "b", "c"))
    started = time.perf_counter()
    temporal_answers = {word for word in words if holds(formula, word)}
    temporal_ms = (time.perf_counter() - started) * 1000

    started = time.perf_counter()
    rs_answers = {word for word in words if _rs_shape_matches(word)}
    rs_ms = (time.perf_counter() - started) * 1000

    exact = set(members)
    shape_only = exact | set(shaped_decoys)

    rows = [
        ("Sequence Datalog (Ex. 1.3)", len(datalog_answers), "exact language",
         f"{datalog_ms:.1f}"),
        ("alignment automaton [20]", len(alignment_answers), "exact language",
         f"{alignment_ms:.1f}"),
        ("temporal list logic [27]", len(temporal_answers), "shape only (a*b*c*)",
         f"{temporal_ms:.1f}"),
        ("rs-extractor shape [16]", len(rs_answers), "shape only (a*b*c*)",
         f"{rs_ms:.1f}"),
    ]
    print_table(
        "Section 1.1 comparison -- recognising a^n b^n c^n "
        f"({len(members)} members, {len(decoys)} decoys)",
        ["formalism", "accepted", "what it captures", "time (ms)"],
        rows,
    )

    assert datalog_answers == exact
    assert alignment_answers == exact
    assert temporal_answers == shape_only
    assert rs_answers == shape_only

    benchmark.pedantic(
        lambda: {word for word in words if accepts_anbncn(word)},
        rounds=3,
        iterations=1,
    )


def test_restructuring_comparison(benchmark):
    """Who can compute the reverse of every stored string (Example 1.4)."""
    words = ["110", "0101", "111000"]
    database = SequenceDatabase.from_dict({"r": words})
    program = paper_programs.reverse_program()

    started = time.perf_counter()
    result = compute_least_fixpoint(program, database)
    reversed_answers = set(
        evaluate_query(result.interpretation, "answer(Y)").values("Y")
    )
    datalog_ms = (time.perf_counter() - started) * 1000

    expected = {word[::-1] for word in words}

    rows = [
        ("Sequence Datalog (Ex. 1.4)", "yes", f"{len(reversed_answers)} outputs",
         f"{datalog_ms:.1f}"),
        ("alignment automaton [20]", "no (acceptor only)", "-", "-"),
        ("temporal list logic [27]", "no (selects lists only)", "-", "-"),
        ("safe rs-operations [16]", "no (fixed #concatenations)", "-", "-"),
    ]
    print_table(
        "Section 1.1 comparison -- computing the reverse of every stored string",
        ["formalism", "expressible?", "result", "time (ms)"],
        rows,
    )

    assert reversed_answers >= expected

    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database), rounds=3, iterations=1
    )
