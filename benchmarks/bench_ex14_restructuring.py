"""EX-1.4 / EX-1.2: sequence restructuring with constructive recursion.

Example 1.4 computes the reverse of every stored sequence; Example 1.2
concatenates all pairs.  Both need constructive terms (they are exactly the
restructurings the non-constructive and stratified fragments cannot
express, Section 5), yet both are strongly-safe-like in practice: the
benchmark sweeps the input length and shows evaluation stays polynomial
while producing the expected outputs.
"""

from conftest import print_table

from repro import SequenceDatabase, compute_least_fixpoint
from repro.core import paper_programs
from repro.engine import evaluate_query
from repro.workloads import random_string


def test_example_1_4_reverse_sweep(benchmark):
    program = paper_programs.reverse_program()
    rows = []
    for length in (2, 4, 8, 12):
        word = random_string(length, alphabet="01", seed=length)
        database = SequenceDatabase.from_dict({"r": [word]})
        result = compute_least_fixpoint(program, database)
        answers = evaluate_query(result.interpretation, "answer(Y)").values("Y")
        rows.append(
            (
                length,
                result.fact_count,
                result.iterations,
                f"{result.elapsed_seconds * 1000:.1f}",
                "ok" if answers == [word[::-1]] else "MISMATCH",
            )
        )
        assert answers == [word[::-1]]

    print_table(
        "Example 1.4: reverse via constructive recursion",
        ["input length", "facts", "iterations", "time (ms)", "status"],
        rows,
    )

    database = SequenceDatabase.from_dict({"r": [random_string(8, "01", seed=1)]})
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database), rounds=3, iterations=1
    )


def test_example_1_2_concatenations(benchmark):
    program = paper_programs.concatenations_program()
    rows = []
    for count in (2, 3, 4):
        words = [random_string(3, "ab", seed=i) for i in range(count)]
        database = SequenceDatabase.from_dict({"r": words})
        result = compute_least_fixpoint(program, database)
        answers = set(evaluate_query(result.interpretation, "answer(X)").values("X"))
        expected = {x + y for x in words for y in words}
        rows.append(
            (
                count,
                len(expected),
                len(answers),
                f"{result.elapsed_seconds * 1000:.1f}",
                "ok" if answers == expected else "MISMATCH",
            )
        )
        assert answers == expected

    print_table(
        "Example 1.2: all pairwise concatenations",
        ["stored sequences", "expected answers", "derived answers", "time (ms)", "status"],
        rows,
    )

    database = SequenceDatabase.from_dict(
        {"r": [random_string(3, "ab", seed=i) for i in range(3)]}
    )
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database), rounds=3, iterations=1
    )
