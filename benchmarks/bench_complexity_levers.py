"""Ablation: the complexity "levers" -- construction, safety and order.

Sections 5-8 of the paper present a ladder of guarantees: no construction
(Theorem 3, domain frozen), strongly safe order <= 2 (Theorem 8, polynomial
minimal model), order 3 (Theorem 9, hyperexponential), and unsafe
constructive recursion (Theorem 2, no guarantee).  This ablation runs one
representative program per rung on the *same* database and reports the
static classification next to the measured minimal-model size and time, so
the static analysis of ``repro.analysis.complexity`` can be checked against
the engine's behaviour rung by rung.
"""

import time

from conftest import print_table

from repro import compute_least_fixpoint
from repro.analysis.complexity import analyze_complexity
from repro.core import paper_programs
from repro.engine.limits import EvaluationLimits
from repro.errors import FixpointNotReached
from repro.language.parser import parse_program
from repro.transducers import library
from repro.workloads import string_database

#: Tight limits so the unsafe rung fails fast instead of running away.
_ABLATION_LIMITS = EvaluationLimits(
    max_iterations=40,
    max_facts=200_000,
    max_domain_size=200_000,
    max_sequence_length=1_000,
)


def _rungs():
    """(label, program, transducer orders, registry) per complexity rung."""
    square = library.square_transducer("ab")
    hyper = library.hyper_transducer("ab")
    return [
        (
            "non-constructive (Thm 3)",
            paper_programs.rep1_program(),
            {},
            None,
        ),
        (
            "strongly safe, order 1 (Thm 8)",
            paper_programs.stratified_construction_program(),
            {},
            None,
        ),
        (
            "strongly safe, order 2 (Thm 8)",
            parse_program("sq(@square(X)) :- r(X)."),
            {"square": 2},
            {"square": square},
        ),
        (
            "strongly safe, order 3 (Thm 9)",
            parse_program("big(@hyper(X)) :- r(X)."),
            {"hyper": 3},
            {"hyper": hyper},
        ),
        (
            "constructive cycle (Thm 2)",
            paper_programs.rep2_program(),
            {},
            None,
        ),
    ]


def test_complexity_lever_ablation(benchmark):
    # Length-2 strings keep the order-3 rung evaluable: its output length
    # follows the Theorem 4 recurrence L_i = (n + L_{i-1})^2, which already
    # reaches 21 609 for n = 3 (the blow-up is the point of Theorem 9, and
    # the dedicated THM-9 benchmark measures it); here the rung only needs
    # to terminate inside the shared limits.
    database = string_database(3, length=2, seed=17)
    rows = []
    for label, program, orders, registry in _rungs():
        report = analyze_complexity(program, orders)
        started = time.perf_counter()
        try:
            result = compute_least_fixpoint(
                program, database, limits=_ABLATION_LIMITS, transducers=registry
            )
            measured = result.interpretation.size()
            outcome = "fixpoint"
        except FixpointNotReached as failure:
            measured = failure.partial.size() if failure.partial is not None else 0
            outcome = "limits hit"
        elapsed_ms = (time.perf_counter() - started) * 1000
        envelope = report.model_size_envelope(database.size())
        rows.append(
            (
                label,
                report.data_complexity.name,
                "-" if envelope is None else envelope,
                measured,
                outcome,
                f"{elapsed_ms:.1f}",
            )
        )
        # The static classification must agree with the engine's behaviour:
        # guaranteed-finite rungs reach their fixpoint inside the envelope,
        # and the unsafe rung is the one that hits the limits.
        if envelope is not None:
            assert outcome == "fixpoint"
            assert measured <= envelope
        if label.startswith("constructive cycle"):
            assert outcome == "limits hit"

    print_table(
        "Complexity levers: static class vs measured minimal model "
        f"(database of size {database.size()})",
        ["rung", "static class", "envelope", "model size", "outcome", "time (ms)"],
        rows,
    )

    safe_program = paper_programs.stratified_construction_program()
    benchmark.pedantic(
        lambda: compute_least_fixpoint(safe_program, database, limits=_ABLATION_LIMITS),
        rounds=3,
        iterations=1,
    )
