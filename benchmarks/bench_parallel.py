"""Parallel evaluation and concurrent serving benchmark.

Measures the two tentpole claims of :mod:`repro.engine.parallel` and
:mod:`repro.engine.server` and emits a JSON record:

* **fixpoint** cases — the parallel strategy (wave-scheduled strata,
  range-partitioned firings over a worker pool) against the sequential
  compiled strategy on a multi-strand genome pipeline and a two-machine
  Turing workload.  The computed models must be fact-for-fact identical;
  on a multi-core machine the parallel wall-clock must be >=1.5x faster
  (the assertion is skipped, and recorded as ``asserted: false``, on a
  single-core host where no speedup is physically possible).
* **serving** cases — aggregate query throughput of a
  :class:`~repro.engine.server.DatalogServer` under 1 vs 8 concurrent
  clients running overlapping workloads.  Snapshot pinning, the
  per-snapshot result cache and request coalescing must lift aggregate
  throughput >=4x with 8 clients.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke    # tiny + shape check
    pytest benchmarks/bench_parallel.py --benchmark-only -s       # harness run
"""

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_demand import GENOME_PROGRAM  # noqa: E402  (same workload family)

from repro import (  # noqa: E402
    DatalogServer,
    EvaluationLimits,
    SequenceDatabase,
    compute_least_fixpoint,
)
from repro.engine.parallel import ParallelFixpoint  # noqa: E402
from repro.language.parser import parse_program  # noqa: E402
from repro.turing import machines  # noqa: E402
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog  # noqa: E402
from repro.workloads import random_dna  # noqa: E402

LIMITS = EvaluationLimits(
    max_iterations=2_000, max_facts=5_000_000, max_domain_size=2_000_000,
    max_sequence_length=2_000,
)


def _cpu_count():
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Fixpoint: parallel vs compiled
# ----------------------------------------------------------------------
def _bench_fixpoint_case(label, program, database, workers, repeats=1):
    # Untimed warmup: the first evaluation pays all first-time interning in
    # the process-wide Sequence table (every later run, whichever strategy,
    # takes the lock-free fast path).  Without it the strategy timed first
    # would subsidise the one timed second and skew the speedup.
    compute_least_fixpoint(program, database, limits=LIMITS, strategy="compiled")

    started = time.perf_counter()
    for _ in range(repeats):
        compiled = compute_least_fixpoint(
            program, database, limits=LIMITS, strategy="compiled"
        )
    compiled_seconds = (time.perf_counter() - started) / repeats

    started = time.perf_counter()
    for _ in range(repeats):
        engine = ParallelFixpoint(program, workers=workers)
        try:
            engine.load_database(database)
            engine.run(LIMITS)
        finally:
            engine.close()
    parallel_seconds = (time.perf_counter() - started) / repeats

    identical = engine.interpretation == compiled.interpretation
    assert identical, f"{label}: parallel and compiled models differ"
    return {
        "case": label,
        "kind": "fixpoint",
        "workers": workers,
        "facts": compiled.fact_count,
        "compiled_seconds": round(compiled_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup_parallel_vs_compiled": round(
            compiled_seconds / max(parallel_seconds, 1e-9), 2
        ),
        "identical": identical,
        "waves": len(engine.waves),
    }


def genome_database(strands, strand_length):
    dna = [random_dna(strand_length, seed=700 + i) for i in range(strands)]
    return dna, SequenceDatabase.from_dict({"dnaseq": dna})


def bench_fixpoint(smoke=False):
    workers = _cpu_count()
    if smoke:
        strands, length, word = 3, 6, "10"
    else:
        strands, length, word = 20, 18, "1101"
    program = parse_program(GENOME_PROGRAM)
    _, database = genome_database(strands, length)
    cases = [
        _bench_fixpoint_case(
            f"genome-{strands}x{length}", program, database, workers
        )
    ]
    increment = compile_tm_to_sequence_datalog(
        machines.increment_machine(),
        input_predicate="input_inc",
        output_predicate="output_inc",
        conf_predicate="conf_inc",
    )
    complement = compile_tm_to_sequence_datalog(
        machines.complement_machine(),
        input_predicate="input_com",
        output_predicate="output_com",
        conf_predicate="conf_com",
    )
    turing_db = SequenceDatabase.from_dict(
        {"input_inc": [word], "input_com": [word]}
    )
    cases.append(
        _bench_fixpoint_case(
            f"turing-two-machines-{word}", increment + complement, turing_db, workers
        )
    )
    return cases


# ----------------------------------------------------------------------
# Serving: aggregate throughput under concurrent clients
# ----------------------------------------------------------------------
def _client_workload(dna, repeats):
    """A realistic overlapping read mix: per-strand selective queries plus
    whole-relation analytics, repeated (clients re-ask the same things)."""
    patterns = [f'rnaseq("{strand}", R)' for strand in dna[:6]]
    patterns += [
        "rnaseq(D, R)",
        "revcomp(X, Y)",
        "bisulfite(D, B)",
        "site_at(R, S)",
        "dnasuffix(X, S)",
    ]
    return patterns * repeats


def _measure_clients(program_text, database, workload, clients):
    """Aggregate seconds for ``clients`` threads each running ``workload``
    against a cold server (fresh result cache)."""
    server = DatalogServer(program_text, database, limits=LIMITS)
    try:
        barrier = threading.Barrier(clients + 1)
        errors = []

        def client():
            try:
                barrier.wait()
                for pattern in workload:
                    server.query(pattern)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        stats = server.stats()["server"]
        return elapsed, stats
    finally:
        server.close()


def bench_serving(smoke=False):
    if smoke:
        strands, length, repeats, many = 3, 6, 2, 4
    else:
        strands, length, repeats, many = 16, 14, 10, 8
    program = parse_program(GENOME_PROGRAM)
    dna, database = genome_database(strands, length)
    workload = _client_workload(dna, repeats)
    cases = []
    throughput = {}
    for clients in (1, many):
        seconds, stats = _measure_clients(program, database, workload, clients)
        queries = clients * len(workload)
        qps = queries / max(seconds, 1e-9)
        throughput[clients] = qps
        cases.append({
            "case": f"serving-{clients}-clients",
            "kind": "serving",
            "clients": clients,
            "queries": queries,
            "seconds": round(seconds, 4),
            "throughput_qps": round(qps, 1),
            "cache_hits": stats["result_cache"]["hits"],
            "coalesced": stats["coalesced_queries"],
        })
    cases.append({
        "case": "serving-aggregate-speedup",
        "kind": "serving_speedup",
        "clients": many,
        "speedup_vs_single_client": round(throughput[many] / throughput[1], 2),
    })
    return cases


# ----------------------------------------------------------------------
# Report assembly and validation
# ----------------------------------------------------------------------
def run_benchmarks(smoke=False):
    cpu_count = _cpu_count()
    cases = bench_fixpoint(smoke=smoke) + bench_serving(smoke=smoke)
    report = {
        "benchmark": "parallel",
        "unit": "seconds",
        "smoke": smoke,
        "cpu_count": cpu_count,
        "cases": cases,
    }
    validate_report(report)
    for case in cases:
        if case["kind"] == "fixpoint":
            assert case["identical"], f"{case['case']}: models must be identical"
    if not smoke:
        for case in cases:
            if case["kind"] == "fixpoint":
                # No speedup is physically possible on a single core; record
                # the skip instead of asserting the impossible.
                case["asserted"] = cpu_count >= 2
                if case["asserted"]:
                    assert case["speedup_parallel_vs_compiled"] >= 1.5, (
                        f"{case['case']}: expected >=1.5x parallel speedup on "
                        f"{cpu_count} cores, got "
                        f"{case['speedup_parallel_vs_compiled']}x"
                    )
            if case["kind"] == "serving_speedup":
                case["asserted"] = True
                assert case["speedup_vs_single_client"] >= 4.0, (
                    "expected >=4x aggregate throughput with "
                    f"{case['clients']} clients, got "
                    f"{case['speedup_vs_single_client']}x"
                )
    return report


_CASE_SHAPES = {
    "fixpoint": {
        "workers": int,
        "facts": int,
        "compiled_seconds": float,
        "parallel_seconds": float,
        "speedup_parallel_vs_compiled": float,
        "identical": bool,
        "waves": int,
    },
    "serving": {
        "clients": int,
        "queries": int,
        "seconds": float,
        "throughput_qps": float,
        "cache_hits": int,
        "coalesced": int,
    },
    "serving_speedup": {
        "clients": int,
        "speedup_vs_single_client": float,
    },
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "parallel" and report["unit"] == "seconds"
    assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1
    assert isinstance(report["cases"], list) and report["cases"]
    kinds = set()
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        kind = case.get("kind")
        assert kind in _CASE_SHAPES, f"unknown benchmark case kind {kind!r}"
        kinds.add(kind)
        for key, expected in _CASE_SHAPES[kind].items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    assert kinds == set(_CASE_SHAPES), f"missing case kinds: {set(_CASE_SHAPES) - kinds}"
    json.dumps(report)  # must be serialisable as-is


def test_parallel_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    program = parse_program(GENOME_PROGRAM)
    _, database = genome_database(4, 8)

    def evaluate():
        engine = ParallelFixpoint(program, workers=_cpu_count())
        try:
            engine.load_database(database)
            engine.run(LIMITS)
        finally:
            engine.close()

    benchmark.pedantic(evaluate, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "speedup assertions",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
