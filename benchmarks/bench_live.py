"""Live-query benchmark: idle-connection density and push-vs-poll throughput.

Measures the two claims of :mod:`repro.live` and emits a JSON record:

* **idle_density** — how many concurrent idle connections one server
  process holds while staying responsive.  The asyncio front-end pays an
  event-loop registration per connection instead of a thread, so it must
  hold >=5,000 idle connections in full runs (asserted; smoke holds a
  few hundred and checks the shape).  The threaded transport is measured
  at thread-friendly counts for comparison.
* **delta_throughput** — N clients that need to see every published
  generation: continuous-query subscribers (one ``watch`` each, exact
  per-generation deltas pushed) vs the same N clients polling the full
  query in a loop.  Subscribers observe every generation by contract and
  ship only the changed rows; pollers burn full-query round-trips and
  miss generations they poll past.  Full runs on >=2 cores assert >=2x
  the notification throughput of 8 polling clients (smoke records the
  ratio without asserting, matching the other serving benchmarks).

Run with::

    PYTHONPATH=src python benchmarks/bench_live.py           # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_live.py --smoke   # tiny + shape check
"""

import argparse
import json
import os
import socket
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import DatalogClient, serve_tcp  # noqa: E402
from repro.live import serve_tcp_async  # noqa: E402

PROGRAM = "suffix(X[N:end]) :- r(X)."
PATTERN = "suffix(X)"


def _wait(predicate, timeout=30.0, what="live progress"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# Idle-connection density
# ----------------------------------------------------------------------
def _hold_idle_connections(factory, transport_name, target):
    """Open ``target`` idle connections; probe responsiveness under them."""
    server = factory(PROGRAM, {"r": ["acgtacgt"]}, port=0)
    connections = []
    try:
        started = time.perf_counter()
        for _ in range(target):
            connections.append(
                socket.create_connection(server.address, timeout=10)
            )
        connect_seconds = time.perf_counter() - started
        _wait(
            lambda: server.live.stats()["open_connections"] >= target,
            what=f"{transport_name} server registering {target} connections",
        )
        with DatalogClient(*server.address) as probe:
            probe.ping()  # warm the connection
            probe_started = time.perf_counter()
            stats = probe.stats()
            probe_ms = (time.perf_counter() - probe_started) * 1e3
            held = stats.live["open_connections"] >= target
    finally:
        for connection in connections:
            connection.close()
        server.close()
    return {
        "case": f"idle-density-{transport_name}",
        "kind": "idle_density",
        "transport": transport_name,
        "connections": target,
        "connect_seconds": round(connect_seconds, 4),
        "probe_ms": round(probe_ms, 2),
        "held": held,
    }


def bench_idle_density(smoke=False):
    async_target, threaded_target = (200, 50) if smoke else (5_000, 500)
    return [
        _hold_idle_connections(serve_tcp_async, "async", async_target),
        _hold_idle_connections(serve_tcp, "threaded", threaded_target),
    ]


# ----------------------------------------------------------------------
# Delta-notification throughput: subscribers vs pollers
# ----------------------------------------------------------------------
def _publish_generations(address, generations, pace_seconds):
    """Publish ``generations`` one-fact batches; return the final generation."""
    with DatalogClient(*address) as writer:
        generation = writer.ping().generation
        for index in range(generations):
            generation = writer.add_facts(
                [("r", (f"g{index:04d}",))]
            ).generation
            time.sleep(pace_seconds)
    return generation


def _run_consumers(address, consumers, generations, pace_seconds, consume):
    """Drive N consumer threads against a fresh writer workload.

    ``consume(address, final_generation, barrier, out)`` sets up its
    client, waits at ``barrier`` (so every consumer is anchored before
    the writer starts), then observes generations until it has seen
    ``final_generation``, appending ``(observations, rows)``.  Returns
    (total_observations, total_rows, elapsed_seconds).
    """
    with DatalogClient(*address) as probe:
        start_generation = probe.ping().generation
    final_generation = start_generation + generations
    barrier = threading.Barrier(consumers + 1)
    results = []
    errors = []

    def run_consumer():
        try:
            consume(address, final_generation, barrier, results)
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)
            barrier.abort()

    workers = [
        threading.Thread(target=run_consumer) for _ in range(consumers)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    _publish_generations(address, generations, pace_seconds)
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    observations = sum(item[0] for item in results)
    rows = sum(item[1] for item in results)
    return observations, rows, elapsed


def _subscribe_consumer(address, final_generation, barrier, out):
    observations = rows = 0
    with DatalogClient(*address) as client:
        with client.watch(PATTERN) as watch:
            barrier.wait()  # anchored: no generation can land in the initial
            for frame in watch:
                # A coalesced frame is the exact union of several
                # generations: each one counts as observed.
                observations += frame.coalesced + (0 if frame.initial else 1)
                rows += len(frame.rows)
                if frame.generation >= final_generation:
                    break
    out.append((observations, rows))


def _poll_consumer(address, final_generation, barrier, out):
    observations = rows = 0
    with DatalogClient(*address) as client:
        last_generation = client.query(PATTERN).generation
        barrier.wait()
        while True:
            page = client.query(PATTERN)
            rows += len(page.rows)
            if page.generation != last_generation:
                # Generations polled past are simply missed.
                observations += 1
                last_generation = page.generation
            if page.generation >= final_generation:
                break
    out.append((observations, rows))


def bench_delta_throughput(smoke=False):
    consumers, generations, pace = (3, 6, 0.02) if smoke else (8, 40, 0.01)
    cases = []
    throughput = {}
    for mode, consume in (
        ("subscribers", _subscribe_consumer),
        ("polling", _poll_consumer),
    ):
        server = serve_tcp_async(PROGRAM, {"r": ["seed"]}, port=0)
        try:
            observations, rows, elapsed = _run_consumers(
                server.address, consumers, generations, pace, consume
            )
        finally:
            server.close()
        throughput[mode] = observations / max(elapsed, 1e-9)
        cases.append({
            "case": f"delta-throughput-{mode}",
            "kind": "delta_throughput",
            "mode": mode,
            "consumers": consumers,
            "generations": generations,
            "observations": observations,
            "rows_transferred": rows,
            "seconds": round(elapsed, 4),
            "throughput_notifications_per_second": round(
                throughput[mode], 1
            ),
        })
    cases.append({
        "case": "subscriber-notify-speedup",
        "kind": "notify_speedup",
        "consumers": consumers,
        "speedup_vs_polling": round(
            throughput["subscribers"] / max(throughput["polling"], 1e-9), 2
        ),
    })
    return cases


# ----------------------------------------------------------------------
# Report assembly and validation
# ----------------------------------------------------------------------
def run_benchmarks(smoke=False):
    cases = bench_idle_density(smoke) + bench_delta_throughput(smoke)
    report = {
        "benchmark": "live",
        "unit": "seconds",
        "smoke": smoke,
        "cpu_count": os.cpu_count() or 1,
        "cases": cases,
    }
    validate_report(report)
    if not smoke:
        for case in cases:
            if case["kind"] == "idle_density" and case["transport"] == "async":
                case["asserted"] = True
                assert case["connections"] >= 5_000 and case["held"], (
                    f"expected the asyncio front-end to hold >=5000 idle "
                    f"connections, held {case['connections']} "
                    f"(held={case['held']})"
                )
            if case["kind"] == "notify_speedup" and (os.cpu_count() or 1) >= 2:
                case["asserted"] = True
                assert case["speedup_vs_polling"] >= 2.0, (
                    f"expected >=2x delta-notification throughput vs "
                    f"{case['consumers']} polling clients, got "
                    f"{case['speedup_vs_polling']}x"
                )
    return report


_CASE_SHAPES = {
    "idle_density": {
        "transport": str,
        "connections": int,
        "connect_seconds": float,
        "probe_ms": float,
        "held": bool,
    },
    "delta_throughput": {
        "mode": str,
        "consumers": int,
        "generations": int,
        "observations": int,
        "rows_transferred": int,
        "seconds": float,
        "throughput_notifications_per_second": float,
    },
    "notify_speedup": {
        "consumers": int,
        "speedup_vs_polling": float,
    },
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "live" and report["unit"] == "seconds"
    assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1
    assert isinstance(report["cases"], list) and report["cases"]
    kinds = set()
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        kind = case.get("kind")
        assert kind in _CASE_SHAPES, f"unknown benchmark case kind {kind!r}"
        kinds.add(kind)
        for key, expected in _CASE_SHAPES[kind].items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    assert kinds == set(_CASE_SHAPES), (
        f"missing case kinds: {set(_CASE_SHAPES) - kinds}"
    )
    for case in report["cases"]:
        if case["kind"] == "idle_density":
            assert case["held"], (
                f"{case['case']}: server dropped idle connections"
            )
        if case["kind"] == "delta_throughput" and case["mode"] == "subscribers":
            # The delta contract: every consumer observes every generation.
            assert case["observations"] == (
                case["consumers"] * case["generations"]
            ), f"{case['case']}: subscribers missed generations"
    json.dumps(report)  # must be serialisable as-is


def test_live_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))

    def watch_one_generation():
        server = serve_tcp_async(PROGRAM, {"r": ["ab"]}, port=0)
        try:
            with DatalogClient(*server.address) as client:
                with client.watch(PATTERN) as watch:
                    stream = iter(watch)
                    next(stream)  # initial
                    client.add_facts([("r", ("xy",))])
                    next(stream)  # the pushed delta
        finally:
            server.close()

    benchmark.pedantic(watch_one_generation, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "density and throughput assertions",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
