"""THM-3: the non-constructive fragment has polynomial data complexity.

Theorem 3: Non-constructive Sequence Datalog is complete for PTIME.  The
benchmark evaluates the non-constructive pattern-matching program of
Example 1.3 over databases of growing size and checks the polynomial shape:
the least-fixpoint size never exceeds a fixed polynomial of the database
size, and the extended active domain never grows at all.
"""

from conftest import print_table

from repro import compute_least_fixpoint
from repro.analysis import is_non_constructive
from repro.core import paper_programs
from repro.workloads import anbncn_database


def test_theorem_3_nonconstructive_scaling(benchmark):
    program = paper_programs.anbncn_program()
    assert is_non_constructive(program)

    rows = []
    measurements = []
    for max_n in (2, 4, 6):
        database = anbncn_database(max_n, decoys=2, seed=7)
        result = compute_least_fixpoint(program, database)
        db_size = database.size()
        rows.append(
            (
                max_n,
                db_size,
                result.model_size,
                result.fact_count,
                result.iterations,
                f"{result.elapsed_seconds * 1000:.1f}",
            )
        )
        measurements.append((db_size, result.fact_count))
        # Theorem 3's key structural fact: the domain does not grow.
        assert result.model_size == db_size

    print_table(
        "Theorem 3: Example 1.3 over growing databases (non-constructive)",
        ["max n", "db size", "model size", "facts", "iterations", "time (ms)"],
        rows,
    )

    # Polynomial shape: facts grow no faster than (db size)^2 here.
    for db_size, facts in measurements:
        assert facts <= db_size ** 2 + db_size

    database = anbncn_database(4, decoys=2, seed=7)
    benchmark.pedantic(
        lambda: compute_least_fixpoint(program, database), rounds=2, iterations=1
    )
