"""THM-9: strongly safe order-3 programs can have hyperexponential models.

Theorem 9 bounds the minimal model of a strongly safe order-3 program by a
hyperexponential in the database size -- and Theorem 4 shows the bound is
attainable.  The benchmark evaluates a strongly safe program whose single
constructive rule calls the order-3 ``hyper`` machine on tiny databases and
contrasts the model growth with the order-2 squaring program on the same
databases: both are finite (Corollary 2), but the order-3 model explodes
while the order-2 model stays small.
"""

from conftest import print_table

from repro import EvaluationLimits, SequenceDatabase, TransducerDatalogProgram
from repro.transducers import TransducerCatalog, library

LIMITS = EvaluationLimits(
    max_iterations=50, max_facts=500_000, max_domain_size=500_000,
    max_sequence_length=50_000,
)


def test_theorem_9_order_3_model_growth(benchmark):
    order3 = TransducerDatalogProgram(
        "big(X, @hyper(X)) :- r(X).",
        TransducerCatalog([library.hyper_transducer("ab")]),
    )
    order2 = TransducerDatalogProgram(
        "big(X, @square(X)) :- r(X).",
        TransducerCatalog([library.square_transducer("ab")]),
    )
    assert order3.is_strongly_safe() and order3.order == 3
    assert order2.is_strongly_safe() and order2.order == 2

    rows = []
    # Inputs stop at length 2: the order-3 machine's output on a length-3
    # input already has 21 609 symbols, whose extended active domain
    # (hundreds of millions of subsequences) is exactly the hyperexponential
    # blow-up the theorem warns about -- measuring it is neither feasible
    # nor necessary to exhibit the shape.
    for word in ("a", "ab"):
        n = len(word)
        database = SequenceDatabase.from_dict({"r": [word]})
        result2 = order2.evaluate(database, require_safety=True, limits=LIMITS)
        result3 = order3.evaluate(database, require_safety=True, limits=LIMITS)
        rows.append(
            (
                n,
                database.size(),
                result2.model_size,
                result3.model_size,
                2 ** (2 ** n),
            )
        )
        # Both orders terminate (Corollary 2), but order 3 grows much faster.
        assert result3.model_size >= result2.model_size

    print_table(
        "Theorem 9: model size, order-2 vs order-3 strongly safe programs",
        ["input length n", "db size", "order-2 model size", "order-3 model size", "2^(2^n)"],
        rows,
    )
    # The order-3 model overtakes the order-2 one by a widening margin.
    assert rows[-1][3] > 10 * rows[-1][2]

    database = SequenceDatabase.from_dict({"r": ["ab"]})
    benchmark.pedantic(
        lambda: order3.evaluate(database, require_safety=True, limits=LIMITS),
        rounds=2,
        iterations=1,
    )
