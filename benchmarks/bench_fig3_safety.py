"""FIG-3 / EX-8.1: dependency graphs and strong-safety verdicts.

Figure 3 of the paper shows the predicate dependency graphs of the three
programs of Example 8.1; P1 has cycles but no constructive ones (strongly
safe), while P2 and P3 contain constructive cycles (not strongly safe).
The benchmark regenerates the classification table and measures the cost of
the analysis itself.
"""

from conftest import print_table

from repro.analysis import analyze_safety, build_dependency_graph
from repro.core import paper_programs


def test_figure_3_safety_classification(benchmark):
    catalog = paper_programs.figure_3_catalog()
    programs = dict(zip(["P1", "P2", "P3"], paper_programs.figure_3_programs()))

    rows = []
    for name, program in programs.items():
        graph = build_dependency_graph(program)
        report = analyze_safety(program, catalog.orders())
        cycles = (
            "; ".join("->".join(c + [c[0]]) for c in report.constructive_cycles)
            or "none"
        )
        rows.append(
            (
                name,
                len(graph.nodes),
                len(graph.edges()),
                len(graph.constructive_edges()),
                cycles,
                "yes" if report.strongly_safe else "no",
            )
        )
    print_table(
        "Figure 3: Example 8.1 programs",
        ["program", "predicates", "edges", "constructive edges", "constructive cycles", "strongly safe"],
        rows,
    )

    # Paper claim: P1 safe, P2 and P3 unsafe.
    assert [row[5] for row in rows] == ["yes", "no", "no"]

    def analyse_all():
        return [analyze_safety(p, catalog.orders()).strongly_safe for p in programs.values()]

    benchmark(analyse_all)
