"""Replication benchmark: follower identity and aggregate read scaling.

Measures the two claims of :mod:`repro.replication` and emits a JSON
record:

* **identity** — a leader and two followers after a stream of write
  batches hold *fact-for-fact identical* models at equal generations
  (every relation compared row-by-row, asserted always).  Generation
  lockstep plus the per-frame fact-count check is the mechanism; this
  case is the end-to-end proof.
* **read_scaling** — aggregate query throughput of client threads spread
  across a leader plus three follower *processes* (each a real
  ``repro serve --tcp ... --follow`` subprocess found via the
  machine-parsable ``listening`` envelope) vs the same client load pinned
  to the single leader process.  Follower replicas each burn their own
  CPU answering queries, so the fleet must clear >=2x the single-node
  throughput (asserted in full runs on >=4 cores, recorded in smoke).

Run with::

    PYTHONPATH=src python benchmarks/bench_replication.py           # JSON on stdout
    PYTHONPATH=src python benchmarks/bench_replication.py --smoke   # tiny + shape check
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import (  # noqa: E402
    DatalogClient,
    EvaluationLimits,
    FollowerServer,
    serve_tcp,
)

PROGRAM = """\
pair(X, Y) :- base(X), base(Y).
prefix(X[0:N]) :- base(X).
"""

LIMITS = EvaluationLimits(
    max_iterations=2_000,
    max_facts=5_000_000,
    max_domain_size=2_000_000,
    max_sequence_length=4_000,
)


def _wait(predicate, timeout=30.0, what="replication progress"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# Identity: leader and followers fact-for-fact at equal generations
# ----------------------------------------------------------------------
def bench_identity(smoke=False):
    batches, batch_size = (4, 3) if smoke else (12, 8)
    transport = serve_tcp(PROGRAM, {"base": ["a0", "b0"]}, port=0, limits=LIMITS)
    followers = [
        FollowerServer(
            PROGRAM,
            transport.address,
            limits=LIMITS,
            reconnect_min_seconds=0.01,
        )
        for _ in range(2)
    ]
    started = time.perf_counter()
    try:
        with DatalogClient(*transport.address) as client:
            generation = 0
            for batch in range(batches):
                facts = [
                    ("base", (f"v{batch}_{i}",)) for i in range(batch_size)
                ]
                generation = client.add_facts(facts).generation
        for follower in followers:
            _wait(
                lambda f=follower: f.generation >= generation,
                what="followers catching up",
            )
        replicate_seconds = time.perf_counter() - started

        leader = transport.backend
        patterns = ["base(X)", "pair(X, Y)", "prefix(X)"]
        identical = True
        compared_rows = 0
        for pattern in patterns:
            want = sorted(tuple(r) for r in leader.query(pattern).rows)
            compared_rows += len(want)
            for follower in followers:
                got = sorted(tuple(r) for r in follower.query(pattern).rows)
                identical = identical and got == want
        generations_equal = all(
            follower.generation == leader.generation for follower in followers
        )
        counts_equal = all(
            follower.snapshot.fact_count() == leader.snapshot.fact_count()
            for follower in followers
        )
        identical = identical and generations_equal and counts_equal
        assert identical, "follower diverged from the leader"
        bootstraps = sum(
            follower.stats()["replication"]["bootstraps"]
            for follower in followers
        )
    finally:
        for follower in followers:
            follower.close()
        transport.close()
    return [{
        "case": "follower-identity",
        "kind": "identity",
        "followers": len(followers),
        "batches": batches,
        "generation": generation,
        "compared_rows": compared_rows,
        "bootstraps": bootstraps,
        "replicate_seconds": round(replicate_seconds, 4),
        "identical": identical,
    }]


# ----------------------------------------------------------------------
# Read scaling: a real multi-process fleet vs the single leader
# ----------------------------------------------------------------------
def _spawn_node(program_path, follow=None):
    """Start one ``repro serve`` process; return (process, 'host:port').

    The ``listening`` envelope on stdout reports the actually-bound port
    (the port-0 contract), which is exactly what a process supervisor —
    or this benchmark — needs to wire a fleet together.
    """
    argv = [
        sys.executable, "-m", "repro.cli", "serve", program_path,
        "--tcp", "127.0.0.1:0", "--json",
    ]
    if follow is not None:
        argv += ["--follow", follow]
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
        text=True,
    )
    line = process.stdout.readline()
    envelope = json.loads(line)
    assert envelope["kind"] == "listening" and envelope["port"] != 0
    return process, f"{envelope['host']}:{envelope['port']}"


def _aggregate_throughput(endpoints, patterns, threads_per_endpoint, repeats):
    """Total queries/second with client threads pinned across endpoints."""
    barrier = threading.Barrier(len(endpoints) * threads_per_endpoint + 1)
    errors = []

    def run_client(endpoint):
        host, _, port = endpoint.rpartition(":")
        try:
            with DatalogClient(host, int(port)) as client:
                barrier.wait()
                for _ in range(repeats):
                    for pattern in patterns:
                        client.query(pattern)
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    workers = [
        threading.Thread(target=run_client, args=(endpoint,))
        for endpoint in endpoints
        for _ in range(threads_per_endpoint)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    queries = len(workers) * repeats * len(patterns)
    return queries / max(elapsed, 1e-9), queries, elapsed


def bench_read_scaling(smoke=False):
    if smoke:
        base_values, follower_count, threads, repeats = 6, 3, 1, 3
    else:
        base_values, follower_count, threads, repeats = 24, 3, 2, 12
    patterns = ["pair(X, Y)", "prefix(X)", "base(X)"]
    with tempfile.TemporaryDirectory(prefix="bench-replication-") as tmpdir:
        program_path = os.path.join(tmpdir, "program.sdl")
        with open(program_path, "w", encoding="utf-8") as handle:
            handle.write(PROGRAM)
        processes = []
        try:
            leader_process, leader_endpoint = _spawn_node(program_path)
            processes.append(leader_process)
            follower_endpoints = []
            for _ in range(follower_count):
                process, endpoint = _spawn_node(
                    program_path, follow=leader_endpoint
                )
                processes.append(process)
                follower_endpoints.append(endpoint)

            host, _, port = leader_endpoint.rpartition(":")
            with DatalogClient(host, int(port)) as client:
                generation = client.add_facts(
                    [("base", (f"s{i}",)) for i in range(base_values)]
                ).generation

            def caught_up(endpoint):
                host, _, port = endpoint.rpartition(":")
                try:
                    with DatalogClient(host, int(port)) as probe:
                        return probe.stats().generation >= generation
                except OSError:
                    return False

            for endpoint in follower_endpoints:
                _wait(
                    lambda e=endpoint: caught_up(e),
                    what=f"follower {endpoint} catching up",
                )

            single_qps, queries, single_seconds = _aggregate_throughput(
                [leader_endpoint] * (1 + follower_count),
                patterns, threads, repeats,
            )
            fleet_qps, _, fleet_seconds = _aggregate_throughput(
                [leader_endpoint] + follower_endpoints,
                patterns, threads, repeats,
            )
        finally:
            for process in processes:
                process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.kill()
    speedup = fleet_qps / max(single_qps, 1e-9)
    return [
        {
            "case": "read-throughput-leader-only",
            "kind": "read_throughput",
            "nodes": 1,
            "client_threads": (1 + follower_count) * threads,
            "queries": queries,
            "seconds": round(single_seconds, 4),
            "throughput_qps": round(single_qps, 1),
        },
        {
            "case": f"read-throughput-{follower_count}-followers",
            "kind": "read_throughput",
            "nodes": 1 + follower_count,
            "client_threads": (1 + follower_count) * threads,
            "queries": queries,
            "seconds": round(fleet_seconds, 4),
            "throughput_qps": round(fleet_qps, 1),
        },
        {
            "case": "fleet-read-speedup",
            "kind": "read_speedup",
            "followers": follower_count,
            "speedup_vs_leader_only": round(speedup, 2),
        },
    ]


# ----------------------------------------------------------------------
# Report assembly and validation
# ----------------------------------------------------------------------
def run_benchmarks(smoke=False):
    cases = bench_identity(smoke) + bench_read_scaling(smoke)
    report = {
        "benchmark": "replication",
        "unit": "seconds",
        "smoke": smoke,
        "cpu_count": os.cpu_count() or 1,
        "cases": cases,
    }
    validate_report(report)
    if not smoke and (os.cpu_count() or 1) >= 4:
        for case in cases:
            if case["kind"] == "read_speedup":
                case["asserted"] = True
                assert case["speedup_vs_leader_only"] >= 2.0, (
                    f"expected >=2x aggregate read throughput with "
                    f"{case['followers']} follower processes, got "
                    f"{case['speedup_vs_leader_only']}x"
                )
    return report


_CASE_SHAPES = {
    "identity": {
        "followers": int,
        "batches": int,
        "generation": int,
        "compared_rows": int,
        "bootstraps": int,
        "replicate_seconds": float,
        "identical": bool,
    },
    "read_throughput": {
        "nodes": int,
        "client_threads": int,
        "queries": int,
        "seconds": float,
        "throughput_qps": float,
    },
    "read_speedup": {
        "followers": int,
        "speedup_vs_leader_only": float,
    },
}


def validate_report(report):
    """Check the JSON output shape (used by scripts/check.sh --smoke runs)."""
    assert report["benchmark"] == "replication" and report["unit"] == "seconds"
    assert isinstance(report["cpu_count"], int) and report["cpu_count"] >= 1
    assert isinstance(report["cases"], list) and report["cases"]
    kinds = set()
    for case in report["cases"]:
        assert isinstance(case.get("case"), str), "benchmark case missing 'case'"
        kind = case.get("kind")
        assert kind in _CASE_SHAPES, f"unknown benchmark case kind {kind!r}"
        kinds.add(kind)
        for key, expected in _CASE_SHAPES[kind].items():
            assert key in case, f"{case['case']}: missing key {key!r}"
            value = case[key]
            if expected is float:
                assert isinstance(value, (int, float)), (
                    f"{case['case']}: key {key!r} should be numeric, got "
                    f"{type(value).__name__}"
                )
            else:
                assert isinstance(value, expected), (
                    f"{case['case']}: key {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    assert kinds == set(_CASE_SHAPES), (
        f"missing case kinds: {set(_CASE_SHAPES) - kinds}"
    )
    for case in report["cases"]:
        if case["kind"] == "identity":
            assert case["identical"], f"{case['case']}: followers diverged"
    json.dumps(report)  # must be serialisable as-is


def test_replication_benchmark(benchmark):
    report = run_benchmarks(smoke=True)
    print()
    print(json.dumps(report, indent=2))

    def replicate_once():
        transport = serve_tcp(PROGRAM, {"base": ["a", "b"]}, port=0, limits=LIMITS)
        follower = FollowerServer(
            PROGRAM, transport.address, limits=LIMITS,
            reconnect_min_seconds=0.01,
        )
        try:
            with DatalogClient(*transport.address) as client:
                generation = client.add_facts([("base", ("c",))]).generation
            _wait(lambda: follower.generation >= generation)
        finally:
            follower.close()
            transport.close()

    benchmark.pedantic(replicate_once, rounds=3, iterations=1)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: validate behaviour and JSON shape, skip the "
        "throughput assertion",
    )
    args = parser.parse_args(argv)
    print(json.dumps(run_benchmarks(smoke=args.smoke), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
