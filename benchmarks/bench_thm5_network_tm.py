"""THM-5: order-2 transducer networks simulate PTIME Turing machines.

Theorem 5: acyclic order-2 networks express exactly the PTIME sequence
functions.  The benchmark compiles linear-time machines into order-2
networks (counter chain + initial configuration + step-calling simulator +
decoder), checks the outputs against direct machine execution across a
length sweep, and measures the simulation cost.
"""

from conftest import print_table

from repro.turing import machines
from repro.turing.compile_to_network import compile_tm_to_network


def test_theorem_5_network_simulation(benchmark):
    rows = []
    for factory in (machines.complement_machine, machines.identity_machine, machines.increment_machine):
        machine = factory()
        network = compile_tm_to_network(machine, time_exponent=1)
        assert network.order == 2
        for length in (2, 4, 8):
            word = ("10" * length)[:length]
            direct = machine.compute(word).text
            via_network = network.compute_function(word).text
            rows.append(
                (
                    machine.name,
                    length,
                    direct,
                    via_network,
                    network.order,
                    network.diameter,
                    "ok" if direct == via_network else "MISMATCH",
                )
            )
            assert direct == via_network

    print_table(
        "Theorem 5: order-2 networks vs direct TM runs",
        ["machine", "input length", "machine output", "network output", "order", "diameter", "status"],
        rows,
    )

    network = compile_tm_to_network(machines.complement_machine(), time_exponent=1)
    benchmark.pedantic(
        lambda: network.compute_function("10101010"), rounds=3, iterations=1
    )
