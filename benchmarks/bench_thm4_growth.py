"""THM-4 / EX-6.1 / THM-6: output growth of order-2 and order-3 machines.

Theorem 4: an order-2 network produces output of at most polynomial length
(quadratic for a single squaring transducer, Example 6.1), while an order-3
network can produce hyperexponential (double-exponential) output.  The
benchmark sweeps the input length and reports the measured output lengths
against the paper's bounds; the recurrence ``L_i = (n + L_{i-1})^2`` from the
proof of Theorem 4 is checked exactly for the order-3 machine.
"""

from conftest import print_table

from repro.transducers import library


def test_theorem_4_order_2_quadratic_growth(benchmark):
    square = library.square_transducer("ab")
    rows = []
    for n in (1, 2, 4, 8, 16, 32):
        word = ("ab" * n)[:n]
        output = square(word)
        rows.append((n, len(output), n * n))
        assert len(output) == n * n
    print_table(
        "Theorem 4 / Example 6.1: order-2 squaring transducer",
        ["input length n", "output length", "paper bound n^2"],
        rows,
    )
    benchmark(lambda: square("ab" * 8))


def test_theorem_4_order_3_hyperexponential_growth(benchmark):
    hyper = library.hyper_transducer("ab")
    rows = []
    for n in (1, 2, 3):
        word = "a" * n
        output = hyper(word)
        expected = 0
        for _ in range(n):
            expected = (n + expected) ** 2
        rows.append((n, len(output), expected, 2 ** (2 ** n)))
        assert len(output) == expected
    print_table(
        "Theorem 4 / Theorem 6: order-3 transducer (double-exponential growth)",
        ["input length n", "output length", "recurrence (n + L)^2", "2^(2^n)"],
        rows,
    )
    # The growth overtakes every polynomial already at n = 3.
    assert rows[-1][1] > rows[-1][0] ** 4
    benchmark.pedantic(lambda: hyper("aa"), rounds=3, iterations=1)


def test_theorem_4_order_2_chain_is_polynomial_per_stage(benchmark):
    """A diameter-d chain of order-2 squaring nodes: output length n^(2^d)."""
    from repro.transducers.network import NetworkNode, TransducerNetwork

    s1 = NetworkNode("s1", library.square_transducer("ab", name="sq1"), ["x"])
    s2 = NetworkNode("s2", library.square_transducer("ab", name="sq2"), [s1])
    network = TransducerNetwork(["x"], [s1, s2], s2)
    rows = []
    for n in (1, 2, 3):
        output = network.compute_function("a" * n)
        rows.append((n, len(output), n ** 4))
        assert len(output) == n ** 4
    print_table(
        "Theorem 4: diameter-2 chain of order-2 squaring nodes",
        ["input length n", "output length", "paper bound n^(2^d) = n^4"],
        rows,
    )
    benchmark.pedantic(lambda: network.compute_function("aa"), rounds=3, iterations=1)
