"""Engine-core benchmark: interpreted vs compiled evaluation.

Compares the three fixpoint strategies (naive reference, clause-level
semi-naive, compiled dependency-scheduled semi-naive) on the two flagship
workloads — Theorem 1 Turing-machine simulation and the Example 7.2 genome
transcription simulation — verifying that all strategies agree on the
fixpoint and emitting a JSON record for the performance trajectory::

    PYTHONPATH=src python benchmarks/bench_engine_core.py          # JSON on stdout
    pytest benchmarks/bench_engine_core.py --benchmark-only -s     # harness run
"""

import json
import time

from repro import EvaluationLimits, SequenceDatabase, compute_least_fixpoint
from repro.core import paper_programs
from repro.engine.fixpoint import COMPILED, NAIVE, SEMI_NAIVE
from repro.engine.query import output_relation
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog, strip_blanks
from repro.workloads import random_dna

TM_LIMITS = EvaluationLimits(max_iterations=400, max_sequence_length=400)
STRATEGIES = (NAIVE, SEMI_NAIVE, COMPILED)


def _workloads():
    """(label, program, database, check) cases; check() validates a result."""
    cases = []

    for factory, word in (
        (machines.increment_machine, "1101"),
        (machines.complement_machine, "01101"),
    ):
        machine = factory()
        program = compile_tm_to_sequence_datalog(machine)
        database = SequenceDatabase.single_input(word)
        expected = machine.compute(word).text

        def check(result, machine=machine, expected=expected):
            derived = {
                strip_blanks(o, machine) for o in output_relation(result.interpretation)
            }
            return derived == {expected}

        cases.append((f"thm1-tm-{machine.name}-{word}", program, database, check))

    for count, length in ((3, 9), (5, 12)):
        program = paper_programs.transcribe_simulation_program()
        strands = [random_dna(length, seed=count * 100 + i) for i in range(count)]
        database = SequenceDatabase.from_dict({"dnaseq": strands})

        def check(result, strands=strands):
            produced = {row[0].text for row in result.interpretation.tuples("rnaseq")}
            return len(produced) == len(set(strands))

        cases.append((f"ex72-genome-{count}x{length}", program, database, check))

    return cases


def run_benchmarks():
    """Evaluate every workload under every strategy; return the JSON record."""
    report = {"benchmark": "engine_core", "unit": "seconds", "cases": []}
    for label, program, database, check in _workloads():
        entry = {"case": label, "strategies": {}}
        fixpoints = {}
        for strategy in STRATEGIES:
            started = time.perf_counter()
            result = compute_least_fixpoint(
                program, database, limits=TM_LIMITS, strategy=strategy
            )
            elapsed = time.perf_counter() - started
            assert check(result), f"{label}: wrong fixpoint under {strategy}"
            fixpoints[strategy] = result.interpretation
            entry["strategies"][strategy] = {
                "seconds": round(elapsed, 4),
                "iterations": result.iterations,
                "facts": result.fact_count,
            }
        assert fixpoints[NAIVE] == fixpoints[COMPILED], f"{label}: strategy mismatch"
        assert fixpoints[NAIVE] == fixpoints[SEMI_NAIVE], f"{label}: strategy mismatch"
        naive_time = entry["strategies"][NAIVE]["seconds"]
        compiled_time = max(entry["strategies"][COMPILED]["seconds"], 1e-9)
        entry["speedup_compiled_vs_naive"] = round(naive_time / compiled_time, 2)
        report["cases"].append(entry)
    return report


def test_engine_core_interpreted_vs_compiled(benchmark):
    report = run_benchmarks()
    print()
    print(json.dumps(report, indent=2))

    program = compile_tm_to_sequence_datalog(machines.complement_machine())
    database = SequenceDatabase.single_input("01101")
    benchmark.pedantic(
        lambda: compute_least_fixpoint(
            program, database, limits=TM_LIMITS, strategy=COMPILED
        ),
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":
    print(json.dumps(run_benchmarks(), indent=2))
