"""FIG-2: the computation table of the squaring transducer (Example 6.1).

Figure 2 of the paper tabulates the run of ``T_square`` on the input ``abc``:
at each step the machine consumes one input symbol and calls the ``append``
subtransducer, so the output grows from ``abc`` to ``abcabc`` to
``abcabcabc``.  The benchmark regenerates exactly that table and measures
the cost of a squaring run (top-level steps plus subtransducer steps).
"""

from conftest import print_table

from repro.transducers import library


def _figure_2_rows(word: str):
    square = library.square_transducer("abc")
    run = square.run(word, trace=True)
    rows = []
    for step in run.trace:
        rows.append(
            (
                step.step,
                step.positions[0],
                step.output_before or "(empty)",
                step.operation,
                step.output_after,
            )
        )
    return rows, run


def test_figure_2_square_trace(benchmark):
    rows, run = _figure_2_rows("abc")
    print_table(
        "Figure 2: computation of T_square on 'abc'",
        ["step", "input position", "output before", "operation", "new output"],
        rows,
    )
    print(
        f"  top-level steps: {run.steps}, total steps incl. subtransducer: {run.total_steps}, "
        f"output length: {len(run.output)} (= 3^2)"
    )
    assert run.output.text == "abcabcabc"
    assert [row[4] for row in rows] == ["abc", "abcabc", "abcabcabc"]

    square = library.square_transducer("abc")
    benchmark(lambda: square("abcabcabc"))
