"""Genome-workload scaling: the Example 7.1 pipeline on growing databases.

The paper's evaluation of the genome example is qualitative (the two-rule
program "terminates for every database" and performs all restructurings
inside transducers).  This benchmark makes the claim quantitative on
synthetic genome databases of growing size: per pipeline stage it reports
evaluation time and checks outputs against a plain-Python reference, so the
shape under test is "the strongly safe, order-1 pipeline scales smoothly
with the database" (Theorem 8's polynomial envelope for order <= 2).
"""

import time

from conftest import print_table

from repro.genome import GenomeAnalyzer
from repro.transducers.library import TRANSCRIPTION_MAP
from repro.workloads import random_dna_strings

COMPLEMENT = {"a": "t", "t": "a", "c": "g", "g": "c"}


def _reference_transcribe(dna: str) -> str:
    return "".join(TRANSCRIPTION_MAP[base] for base in dna)


def _reference_reverse_complement(dna: str) -> str:
    return "".join(COMPLEMENT[base] for base in reversed(dna))


def test_genome_pipeline_scaling(benchmark):
    rows = []
    for count, length in [(2, 9), (4, 12), (6, 15), (8, 18)]:
        strands = random_dna_strings(count, length, seed=count * 100 + length)
        analyzer = GenomeAnalyzer(strands)

        started = time.perf_counter()
        transcripts = analyzer.transcripts()
        transcribe_ms = (time.perf_counter() - started) * 1000
        assert transcripts == {s: _reference_transcribe(s) for s in strands}

        started = time.perf_counter()
        proteins = analyzer.proteins()
        translate_ms = (time.perf_counter() - started) * 1000
        assert set(proteins) == set(strands)

        started = time.perf_counter()
        orfs = analyzer.open_reading_frames(min_codons=1)
        orf_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        revcomp = analyzer.reverse_complements()
        revcomp_ms = (time.perf_counter() - started) * 1000
        assert revcomp == {s: _reference_reverse_complement(s) for s in strands}

        rows.append(
            (
                count,
                length,
                f"{transcribe_ms:.1f}",
                f"{translate_ms:.1f}",
                f"{orf_ms:.1f}",
                f"{revcomp_ms:.1f}",
                len(orfs),
            )
        )

    print_table(
        "Genome pipeline scaling (synthetic DNA; times in ms)",
        ["strands", "length", "transcribe", "translate", "ORF search", "rev.comp.", "ORFs found"],
        rows,
    )

    strands = random_dna_strings(4, 12, seed=412)
    analyzer = GenomeAnalyzer(strands)
    benchmark.pedantic(analyzer.transcripts, rounds=3, iterations=1)


def test_restriction_site_scaling(benchmark):
    """Pattern matching (restriction sites) stays cheap as strands grow."""
    rows = []
    site = "gaattc"
    for length in (20, 40, 60, 80):
        strand = (
            random_dna_strings(1, length - 12, seed=length)[0]
            + site
            + random_dna_strings(1, 6, seed=length + 1)[0]
        )
        analyzer = GenomeAnalyzer([strand])
        started = time.perf_counter()
        sites = analyzer.restriction_sites(site)
        elapsed_ms = (time.perf_counter() - started) * 1000
        assert sites[strand], "the planted site must be found"
        rows.append((length, len(sites[strand]), f"{elapsed_ms:.1f}"))

    print_table(
        "Restriction-site search scaling (one strand, planted EcoRI site)",
        ["strand length", "sites found", "time (ms)"],
        rows,
    )

    strand = random_dna_strings(1, 40, seed=99)[0] + site
    analyzer = GenomeAnalyzer([strand])
    benchmark.pedantic(lambda: analyzer.restriction_sites(site), rounds=3, iterations=1)
