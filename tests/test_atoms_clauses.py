"""Tests for atoms, comparisons, clauses and programs (Section 3.1)."""

import pytest

from repro.errors import ValidationError
from repro.language.atoms import Atom, Comparison, TrueLiteral, ground_atom
from repro.language.clauses import Clause, fact
from repro.language.parser import parse_clause, parse_program
from repro.language.terms import (
    ConcatTerm,
    IndexConstant,
    IndexedTerm,
    TransducerTerm,
    constant,
    seq_var,
)


class TestAtoms:
    def test_signature(self):
        atom = Atom("p", [seq_var("X"), constant("a")])
        assert atom.signature == ("p", 2)
        assert atom.arity == 2

    def test_predicate_naming_convention(self):
        with pytest.raises(ValidationError):
            Atom("P", [seq_var("X")])

    def test_variable_collection(self):
        atom = Atom("p", [IndexedTerm(seq_var("X"), IndexConstant(1))])
        assert atom.sequence_variables() == {"X"}

    def test_is_ground(self):
        assert ground_atom("p", "a", "b").is_ground()
        assert not Atom("p", [seq_var("X")]).is_ground()

    def test_constructive_detection(self):
        assert Atom("p", [ConcatTerm([seq_var("X"), seq_var("Y")])]).is_constructive()
        assert not Atom("p", [seq_var("X")]).is_constructive()

    def test_transducer_names(self):
        atom = Atom("p", [TransducerTerm("t", [seq_var("X")])])
        assert atom.transducer_names() == {"t"}


class TestComparisons:
    def test_equality_and_inequality(self):
        eq = Comparison(seq_var("X"), constant("a"), "=")
        ne = Comparison(seq_var("X"), constant("a"), "!=")
        assert eq.is_equality() and not ne.is_equality()

    def test_invalid_operator(self):
        with pytest.raises(ValidationError):
            Comparison(seq_var("X"), seq_var("Y"), "<")

    def test_constructive_operands_rejected(self):
        with pytest.raises(ValidationError):
            Comparison(ConcatTerm([seq_var("X"), seq_var("Y")]), seq_var("Z"))


class TestClauses:
    def test_fact_detection(self):
        assert fact("r", "abc").is_fact()
        assert not parse_clause("p(X) :- q(X).").is_fact()

    def test_true_literal_is_dropped(self):
        clause = Clause(ground_atom("p", "a"), [TrueLiteral()])
        assert clause.body == ()
        assert clause.is_fact()

    def test_constructive_terms_forbidden_in_bodies(self):
        head = Atom("p", [seq_var("X")])
        body_atom = Atom("q", [ConcatTerm([seq_var("X"), seq_var("Y")])])
        with pytest.raises(ValidationError):
            Clause(head, [body_atom])

    def test_transducer_terms_forbidden_in_bodies(self):
        head = Atom("p", [seq_var("X")])
        body_atom = Atom("q", [TransducerTerm("t", [seq_var("X")])])
        with pytest.raises(ValidationError):
            Clause(head, [body_atom])

    def test_constructive_clause_detection(self):
        clause = parse_clause('p(X ++ Y) :- q(X), q(Y).')
        assert clause.is_constructive()
        assert not parse_clause("p(X) :- q(X).").is_constructive()

    def test_guardedness_examples_from_the_paper(self):
        """X is guarded in p(X[1]) :- q(X) but not in p(X) :- q(X[1])."""
        guarded = parse_clause("p(X[1]) :- q(X).")
        unguarded = parse_clause("p(X) :- q(X[1]).")
        assert guarded.is_guarded()
        assert not unguarded.is_guarded()
        assert unguarded.unguarded_sequence_variables() == {"X"}

    def test_body_atom_and_comparison_partition(self):
        clause = parse_clause('p(X) :- q(X), X[1] = "a", r(X).')
        assert len(clause.body_atoms()) == 2
        assert len(clause.body_comparisons()) == 1

    def test_string_round_trip(self):
        clause = parse_clause("suffix(X[N:end]) :- r(X).")
        assert parse_clause(str(clause)) == clause


class TestPrograms:
    def test_head_body_and_base_predicates(self):
        program = parse_program(
            """
            p(X) :- q(X), r(X).
            q(X) :- r(X).
            """
        )
        assert program.head_predicates() == {"p", "q"}
        assert program.base_predicates() == {"r"}

    def test_clauses_for(self):
        program = parse_program("p(X) :- q(X). p(X) :- r(X). q(X) :- r(X).")
        assert len(program.clauses_for("p")) == 2

    def test_signatures_detect_arity_conflicts(self):
        program = parse_program("p(X) :- q(X). p(X, Y) :- q(X), q(Y).")
        with pytest.raises(ValidationError):
            program.signatures()

    def test_constructive_clause_listing(self):
        program = parse_program("p(X ++ X) :- q(X). q(X) :- r(X).")
        assert len(program.constructive_clauses()) == 1
        assert program.is_constructive()

    def test_program_concatenation(self):
        left = parse_program("p(X) :- q(X).")
        right = parse_program("q(X) :- r(X).")
        assert len(left + right) == 2

    def test_program_equality_ignores_order(self):
        one = parse_program("p(X) :- q(X). q(X) :- r(X).")
        two = parse_program("q(X) :- r(X). p(X) :- q(X).")
        assert one == two

    def test_uses_transducers(self):
        program = parse_program("p(@t(X)) :- q(X).")
        assert program.uses_transducers()
        assert program.transducer_names() == {"t"}

    def test_facts_and_rules_partition(self):
        program = parse_program('r("abc"). p(X) :- r(X).')
        assert len(program.facts()) == 1
        assert len(program.rules()) == 1
