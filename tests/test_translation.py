"""Tests for the Theorem 7 translation and the Corollary 1 rewriting."""

import pytest

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.limits import EvaluationLimits
from repro.errors import ValidationError
from repro.language.parser import parse_program
from repro.transducer_datalog import (
    TransducerDatalogProgram,
    concatenation_to_transducers,
    translate_to_sequence_datalog,
)
from repro.transducers import TransducerCatalog, library

TRANSLATION_LIMITS = EvaluationLimits(
    max_iterations=300, max_facts=200_000, max_domain_size=200_000,
    max_sequence_length=2_000,
)


def _translated_equals_native(program_text, catalog, data, queries):
    program = parse_program(program_text)
    database = SequenceDatabase.from_dict(data)

    native = TransducerDatalogProgram(program, catalog).evaluate(
        database, limits=TRANSLATION_LIMITS
    )
    translated_program = translate_to_sequence_datalog(program, catalog)
    assert not translated_program.uses_transducers()
    translated = compute_least_fixpoint(
        translated_program, database, limits=TRANSLATION_LIMITS
    )
    for query in queries:
        assert (
            evaluate_query(native.interpretation, query).texts()
            == evaluate_query(translated.interpretation, query).texts()
        ), f"mismatch for query {query}"


class TestTheorem7Translation:
    def test_transcription_program(self):
        """Example 7.2 is exactly what the translation automates."""
        catalog = TransducerCatalog([library.transcribe_transducer()])
        _translated_equals_native(
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).",
            catalog,
            {"dnaseq": ["acgt", "tt"]},
            ["rnaseq(D, R)"],
        )

    def test_append_program(self):
        catalog = TransducerCatalog([library.append_transducer("ab", 2)])
        _translated_equals_native(
            "answer(@append(X, Y)) :- r(X), s(Y).",
            catalog,
            {"r": ["a", "ab"], "s": ["b"]},
            ["answer(Z)"],
        )

    def test_order_2_subtransducer_simulation(self):
        """Simulating an order-2 machine exercises the gamma_4/gamma_5 rules."""
        catalog = TransducerCatalog([library.square_transducer("ab")])
        _translated_equals_native(
            "sq(X, @square(X)) :- r(X).",
            catalog,
            {"r": ["ab"]},
            ["sq(X, Y)"],
        )

    def test_translation_preserves_program_predicates_only(self):
        catalog = TransducerCatalog([library.transcribe_transducer()])
        program = parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
        translated = translate_to_sequence_datalog(program, catalog)
        predicates = translated.predicates()
        assert "rnaseq" in predicates
        assert "p_transcribe" in predicates
        assert "comp_transcribe" in predicates
        assert "input_transcribe" in predicates
        assert "delta_emit_transcribe" in predicates

    def test_delta_facts_encode_the_transition_function(self):
        catalog = TransducerCatalog([library.transcribe_transducer()])
        program = parse_program("rnaseq(D, @transcribe(D)) :- dnaseq(D).")
        translated = translate_to_sequence_datalog(program, catalog)
        delta_facts = [
            clause for clause in translated
            if clause.head.predicate == "delta_emit_transcribe"
        ]
        # One fact per (state, symbol) pair of the 4-symbol mapping machine.
        assert len(delta_facts) == 4
        assert all(clause.is_fact() for clause in delta_facts)

    def test_predicate_clash_is_detected(self):
        catalog = TransducerCatalog([library.transcribe_transducer()])
        program = parse_program(
            """
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            p_transcribe(X) :- dnaseq(X).
            """
        )
        with pytest.raises(ValidationError):
            translate_to_sequence_datalog(program, catalog)

    def test_rules_without_transducer_terms_are_copied_verbatim(self):
        catalog = TransducerCatalog([library.transcribe_transducer()])
        program = parse_program(
            """
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            plain(X) :- dnaseq(X).
            """
        )
        translated = translate_to_sequence_datalog(program, catalog)
        assert any(str(clause) == "plain(X) :- dnaseq(X)." for clause in translated)

    def test_translation_of_composed_terms_flattens_them(self):
        catalog = TransducerCatalog([library.complement_transducer("01")])
        program = parse_program("out(@complement(@complement(X))) :- r(X).")
        translated = translate_to_sequence_datalog(program, catalog)
        # Two p_complement subgoals are introduced for the nested call.
        rewritten = [c for c in translated if c.head.predicate == "out"]
        assert len(rewritten) == 1
        assert sum(
            1 for atom in rewritten[0].body_atoms() if atom.predicate == "p_complement"
        ) == 2


class TestCorollary1Rewriting:
    def test_concatenation_becomes_append_terms(self):
        program = parse_program("answer(X ++ Y ++ Z) :- r(X), r(Y), r(Z).")
        rewritten, catalog = concatenation_to_transducers(program, "ab")
        assert "append" in catalog
        assert not any(clause.is_constructive() and "++" in str(clause) for clause in rewritten)
        assert "@append" in str(rewritten)

    def test_rewriting_preserves_semantics(self, test_limits):
        program = parse_program("answer(X ++ Y) :- r(X), r(Y).")
        database = SequenceDatabase.from_dict({"r": ["a", "b"]})
        original = compute_least_fixpoint(program, database, limits=test_limits)

        rewritten, catalog = concatenation_to_transducers(program, "ab")
        native = TransducerDatalogProgram(rewritten, catalog).evaluate(
            database, limits=test_limits
        )
        assert (
            evaluate_query(original.interpretation, "answer(X)").texts()
            == evaluate_query(native.interpretation, "answer(X)").texts()
        )

    def test_rewriting_reverse_program_preserves_semantics(self, test_limits):
        program = paper_programs.reverse_program()
        database = SequenceDatabase.from_dict({"r": ["110"]})
        original = compute_least_fixpoint(program, database, limits=test_limits)

        rewritten, catalog = concatenation_to_transducers(program, "01")
        native = TransducerDatalogProgram(rewritten, catalog).evaluate(
            database, limits=test_limits
        )
        assert (
            evaluate_query(original.interpretation, "answer(Y)").texts()
            == evaluate_query(native.interpretation, "answer(Y)").texts()
        )
