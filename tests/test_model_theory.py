"""Tests for the model-theoretic semantics (Appendix A)."""

import pytest

from repro.core import model_theory, paper_programs
from repro.database import SequenceDatabase
from repro.engine import Interpretation, compute_least_fixpoint
from repro.language.parser import parse_program
from repro.sequences import Sequence


@pytest.fixture
def program():
    return paper_programs.suffixes_program()


@pytest.fixture
def database():
    return SequenceDatabase.from_dict({"r": ["ab"]})


class TestModels:
    def test_least_fixpoint_is_a_model(self, program, database):
        lfp = model_theory.minimal_model(program, database)
        assert model_theory.is_model(program, database, lfp)

    def test_empty_interpretation_is_not_a_model(self, program, database):
        assert not model_theory.is_model(program, database, Interpretation())

    def test_supersets_of_the_least_fixpoint_are_models(self, program, database):
        lfp = model_theory.minimal_model(program, database)
        bigger = lfp.copy()
        bigger.add("suffix", [Sequence("zzz")])
        assert model_theory.is_model(program, database, bigger)

    def test_dropping_a_derived_fact_breaks_modelhood(self, program, database):
        lfp = model_theory.minimal_model(program, database)
        smaller = Interpretation(
            fact for fact in lfp.facts() if fact != ("suffix", (Sequence("b"),))
        )
        assert not model_theory.is_model(program, database, smaller)

    def test_minimal_model_is_minimal(self, program, database):
        """Corollary 5: the least fixpoint is contained in every model.

        Checked against a family of candidate models obtained by adding
        arbitrary facts: each still contains the least fixpoint."""
        lfp = model_theory.minimal_model(program, database)
        for extra in ["x", "yy", "zzz"]:
            candidate = lfp.copy()
            candidate.add("suffix", [Sequence(extra)])
            assert model_theory.is_model(program, database, candidate)
            assert all(candidate.contains_fact(fact) for fact in lfp.facts())


class TestEntailment:
    def test_entailed_atoms(self, program, database):
        assert model_theory.entails(program, database, 'suffix("b")')
        assert model_theory.entails(program, database, 'suffix("")')
        assert model_theory.entails(program, database, 'r("ab")')

    def test_non_entailed_atoms(self, program, database):
        assert not model_theory.entails(program, database, 'suffix("a")')
        assert not model_theory.entails(program, database, 'r("b")')

    def test_entailment_matches_the_fixpoint(self, program, database):
        """Corollary 6: P, db |= alpha iff alpha is in the least fixpoint."""
        lfp = compute_least_fixpoint(program, database).interpretation
        for predicate, values in lfp.facts():
            rendered = f'{predicate}({", ".join(chr(34) + v.text + chr(34) for v in values)})'
            assert model_theory.entails(program, database, rendered)


class TestConstructivePrograms:
    def test_model_check_with_constructive_clauses(self):
        program = parse_program("answer(X ++ Y) :- r(X), r(Y).")
        database = SequenceDatabase.from_dict({"r": ["a", "b"]})
        lfp = model_theory.minimal_model(program, database)
        assert model_theory.is_model(program, database, lfp)
        assert model_theory.entails(program, database, 'answer("ab")')
        assert not model_theory.entails(program, database, 'answer("ba!")')

    def test_model_check_with_transducers(self):
        from repro.transducers import library

        program = parse_program("out(@complement(X)) :- r(X).")
        database = SequenceDatabase.from_dict({"r": ["01"]})
        registry = {"complement": library.complement_transducer("01")}
        lfp = model_theory.minimal_model(program, database, transducers=registry)
        assert model_theory.is_model(program, database, lfp, transducers=registry)
        assert model_theory.entails(
            program, database, 'out("10")', transducers=registry
        )
