"""Tests for the concurrent serving layer (repro.engine.server).

The properties under test:

* snapshot isolation — a pinned snapshot answers identically no matter how
  much maintenance ran after it was pinned (repeatable reads), and every
  answer a concurrent reader sees corresponds to a *published* generation,
  never a half-maintained state;
* serialized maintenance — concurrent ``add_facts`` calls interleave safely
  and each publishes a consistent fixpoint;
* poisoning visibility — after a failed maintenance run, every thread sees
  the session as poisoned;
* the batching machinery — result caching, in-flight coalescing and batch
  deduplication.
"""

from __future__ import annotations

import threading

import pytest

from repro import DatalogServer, SequenceDatalogEngine
from repro.engine.limits import EvaluationLimits
from repro.engine.session import DatalogSession
from repro.errors import (
    FixpointNotReached,
    SessionPoisonedError,
    UnknownPredicateError,
    ValidationError,
)

CHAIN = """
derived(X) :- base(X).
pair(X, Y) :- derived(X), derived(Y).
"""


def _chain_server(values=("a", "b"), **kwargs):
    return DatalogServer(CHAIN, {"base": list(values)}, **kwargs)


class TestBasics:
    def test_query_matches_session(self):
        with _chain_server() as server:
            session = DatalogSession(CHAIN, {"base": ["a", "b"]})
            assert (
                server.query("pair(X, Y)").texts()
                == session.query("pair(X, Y)").texts()
            )

    def test_generation_advances_on_maintenance(self):
        with _chain_server() as server:
            assert server.generation == 0
            report = server.add_facts({"base": ["c"]})
            assert report.base_facts_added == 1
            assert server.generation == 1
            assert ("c", "c") in [
                tuple(row) for row in server.query("pair(X, Y)").texts()
            ]

    def test_explicit_snapshot_pins_the_past(self):
        with _chain_server() as server:
            old = server.snapshot
            before = server.query("pair(X, Y)").texts()
            server.add_facts({"base": ["c"]})
            assert server.query("pair(X, Y)", snapshot=old).texts() == before
            assert len(server.query("pair(X, Y)").texts()) > len(before)

    def test_strict_unknown_predicate(self):
        with _chain_server() as server:
            with pytest.raises(UnknownPredicateError):
                server.query("tyop(X)", strict=True)
            # Known but empty predicates stay quiet under strict.
            assert server.query("derived(X)", strict=True).values("X") == ["a", "b"]

    def test_result_cache_and_batch_dedup(self):
        with _chain_server() as server:
            server.query("pair(X, Y)")
            server.query("pair(X, Y)")
            server.query("pair( X , Y )")  # canonicalised to the same entry
            stats = server.stats()["server"]
            assert stats["result_cache"]["hits"] == 2
            results = server.query_batch(
                ["derived(X)", "derived(X)", "pair(X, Y)"]
            )
            assert len(results) == 3
            assert results[0].texts() == results[1].texts()
            assert server.stats()["server"]["batch_deduped"] == 1

    def test_cache_invalidated_by_publication(self):
        with _chain_server() as server:
            assert server.query("derived(X)").values("X") == ["a", "b"]
            server.add_facts({"base": ["z"]})
            # New generation -> new cache key -> fresh execution.
            assert server.query("derived(X)").values("X") == ["a", "b", "z"]

    def test_noop_maintenance_keeps_generation_and_cache(self):
        with _chain_server() as server:
            server.query("pair(X, Y)")
            report = server.add_facts({"base": ["a", "b"]})  # all present
            assert report.base_facts_added == 0
            assert server.generation == 0
            server.query("pair(X, Y)")
            # The unchanged model kept its generation, so the warm result
            # cache still serves.
            assert server.stats()["server"]["result_cache"]["hits"] == 1

    def test_engine_api_serve(self):
        engine = SequenceDatalogEngine(CHAIN)
        with engine.serve({"base": ["x"]}, workers=2) as server:
            assert server.query("derived(X)").values("X") == ["x"]
            assert server.stats()["server"]["workers"] == 2

    def test_wrapping_an_existing_session(self):
        session = DatalogSession(CHAIN, {"base": ["a"]})
        with DatalogServer(session) as server:
            assert server.session is session
            assert server.query("derived(X)").values("X") == ["a"]

    def test_wrapping_a_session_rejects_ignored_arguments(self):
        session = DatalogSession(CHAIN, {"base": ["a"]})
        with pytest.raises(ValidationError, match="workers"):
            DatalogServer(session, workers=8)
        with pytest.raises(ValidationError, match="database"):
            DatalogServer(session, database={"base": ["b"]})
        session.close()

    def test_wrapping_a_parallel_session_reports_its_workers(self):
        with DatalogSession(CHAIN, {"base": ["a"]}, workers=2) as session:
            with DatalogServer(session) as server:
                assert server.stats()["server"]["workers"] == 2

    def test_malformed_batch_publishes_nothing(self):
        with _chain_server() as server:
            generation = server.generation
            with pytest.raises(ValidationError):
                server.add_facts(["not-a-pair"])
            assert server.generation == generation
            assert server.query("derived(X)").values("X") == ["a", "b"]

    def test_mid_batch_rejection_publishes_the_accepted_prefix(self):
        with _chain_server() as server:
            with pytest.raises(ValidationError):
                # The arity clash rejects the second fact after the first
                # was accepted; the session restores its fixpoint for the
                # prefix and the server must publish it — reads never
                # diverge from the resident model.
                server.add_facts([("base", ("c",)), ("base", ("c", "d"))])
            assert server.generation == 1
            assert server.query("derived(X)").values("X") == ["a", "b", "c"]
            assert (
                server.query("derived(X)").texts()
                == server.session.query("derived(X)").texts()
            )


class TestConcurrency:
    def test_concurrent_queries_vs_add_facts(self):
        """Readers race a writer; every answer set must be a published one."""
        with _chain_server(values=("a",)) as server:
            writer_batches = [[f"w{i}"] for i in range(8)]
            # Every published generation has base = {"a"} + a prefix of the
            # writer batches, so the legal answer sets for derived(X) are
            # exactly these prefixes.
            legal = set()
            prefix = ["a"]
            legal.add(tuple(sorted(prefix)))
            for batch in writer_batches:
                prefix = prefix + batch
                legal.add(tuple(sorted(prefix)))
            errors = []
            seen = set()
            stop = threading.Event()

            def reader():
                try:
                    while not stop.is_set():
                        values = tuple(server.query("derived(X)").values("X"))
                        seen.add(values)
                        if values not in legal:
                            errors.append(f"illegal answer set {values}")
                            return
                except Exception as error:  # pragma: no cover
                    errors.append(repr(error))

            def writer():
                try:
                    for batch in writer_batches:
                        server.add_facts({"base": batch})
                finally:
                    stop.set()

            threads = [threading.Thread(target=reader) for _ in range(4)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            final = tuple(sorted(["a"] + [w for b in writer_batches for w in b]))
            assert server.query("derived(X)").values("X") == list(final)

    def test_snapshot_isolation_under_interleaved_maintenance(self):
        """Repeatable reads: one pinned snapshot answers identically forever,
        while maintenance keeps appending behind it."""
        with _chain_server(values=("a", "b")) as server:
            errors = []
            stop = threading.Event()

            def reader():
                try:
                    while not stop.is_set():
                        pinned = server.snapshot
                        first = server.query("pair(X, Y)", snapshot=pinned).texts()
                        second = server.query("pair(X, Y)", snapshot=pinned).texts()
                        if first != second:
                            errors.append(
                                f"generation {pinned.generation} answered "
                                f"{len(first)} then {len(second)} rows"
                            )
                            return
                        # The pair relation of a consistent fixpoint is a
                        # perfect square of the base count; a torn snapshot
                        # would expose a non-square intermediate state.
                        count = len(first)
                        root = int(count ** 0.5)
                        if root * root != count:
                            errors.append(f"non-square pair count {count}")
                            return
                except Exception as error:  # pragma: no cover
                    errors.append(repr(error))

            def writer():
                try:
                    for i in range(10):
                        server.add_facts({"base": [f"m{i}"]})
                finally:
                    stop.set()

            threads = [threading.Thread(target=reader) for _ in range(4)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors

    def test_concurrent_writers_serialize(self):
        with _chain_server(values=()) as server:
            def writer(start):
                for i in range(start, start + 5):
                    server.add_facts({"base": [f"v{i}"]})

            threads = [
                threading.Thread(target=writer, args=(base,))
                for base in (0, 5, 10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert server.generation == 15
            assert server.query("derived(X)").values("X") == sorted(
                f"v{i}" for i in range(15)
            )

    def test_poisoned_session_is_visible_across_threads(self):
        program = 'grow(X ++ X) :- grow(X). seed("a") :- true. out(X) :- base(X).'
        server = DatalogServer(
            program,
            {"base": ["b"]},
            limits=EvaluationLimits(max_sequence_length=64),
        )
        with server:
            assert server.query("out(X)").values("X") == ["b"]
            with pytest.raises(FixpointNotReached):
                # The growth rule explodes past the length limit as soon as
                # a grow fact exists; maintenance fails and poisons.
                server.add_facts({"grow": ["a"]})
            assert server.poisoned
            results = []

            def probe():
                try:
                    server.query("out(X)")
                    results.append("served")
                except SessionPoisonedError:
                    results.append("poisoned")

            threads = [threading.Thread(target=probe) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert results == ["poisoned"] * 6
            with pytest.raises(SessionPoisonedError):
                server.add_facts({"base": ["c"]})

    def test_coalescing_counter_under_concurrent_identical_queries(self):
        with _chain_server(values=("a", "b", "c")) as server:
            barrier = threading.Barrier(8)
            answers = []

            def client():
                barrier.wait()
                answers.append(server.query("pair(X, Y)").texts())

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len({tuple(map(tuple, answer)) for answer in answers}) == 1
            stats = server.stats()["server"]
            # All eight asked for the same thing: one execution, the rest
            # either coalesced onto it or hit the cache just after.
            assert (
                stats["result_cache"]["hits"] + stats["coalesced_queries"] == 7
            )
