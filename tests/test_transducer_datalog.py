"""Tests for Transducer Datalog programs (Section 7.1, Section 8)."""

import pytest

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import evaluate_query
from repro.errors import SafetyError, TransducerError, ValidationError
from repro.transducer_datalog import TransducerDatalogProgram
from repro.transducers import TransducerCatalog, library


class TestProgramConstruction:
    def test_missing_transducers_rejected(self):
        with pytest.raises(TransducerError):
            TransducerDatalogProgram("p(@missing(X)) :- q(X).")

    def test_arity_mismatch_rejected(self):
        catalog = TransducerCatalog([library.append_transducer("ab", 2)])
        with pytest.raises(ValidationError):
            TransducerDatalogProgram("p(@append(X)) :- q(X).", catalog)

    def test_catalog_can_be_passed_as_transducers_iterable(self):
        program = TransducerDatalogProgram(
            "p(@copy(X)) :- q(X).", transducers=[library.copy_transducer("ab")]
        )
        assert "copy" in program.catalog

    def test_order_reflects_the_catalog(self):
        program = TransducerDatalogProgram(
            "p(@square(X)) :- q(X).", transducers=[library.square_transducer("ab")]
        )
        assert program.order == 2

    def test_plain_programs_have_order_zero(self):
        program = TransducerDatalogProgram("p(X) :- q(X).")
        assert program.order == 0


class TestExample71Genome:
    def test_dna_to_protein_pipeline(self, dna_db, genome_catalog):
        program = TransducerDatalogProgram(
            paper_programs.EXAMPLE_7_1_GENOME, genome_catalog
        )
        result = program.evaluate(dna_db, require_safety=True)
        rna = dict(evaluate_query(result.interpretation, "rnaseq(D, R)").texts())
        protein = dict(evaluate_query(result.interpretation, "proteinseq(D, P)").texts())
        assert rna["acgtac"] == "ugcaug"
        assert rna["ttagga"] == "aauccu"
        assert protein["acgtac"] == "CM"
        assert protein["ttagga"] == "NP"

    def test_program_is_strongly_safe_and_order_1(self, genome_catalog):
        program = TransducerDatalogProgram(
            paper_programs.EXAMPLE_7_1_GENOME, genome_catalog
        )
        assert program.is_strongly_safe()
        assert program.order == 1
        assert program.finiteness().verdict.is_finite()

    def test_example_7_2_simulation_agrees_with_the_transducer(self, dna_db, genome_catalog):
        """Example 7.2: the Sequence Datalog simulation of the transcription
        transducer produces the same rnaseq relation."""
        native = TransducerDatalogProgram(
            paper_programs.EXAMPLE_7_1_GENOME, genome_catalog
        ).evaluate(dna_db)
        from repro.engine import compute_least_fixpoint

        simulated = compute_least_fixpoint(
            paper_programs.transcribe_simulation_program(), dna_db
        )
        assert (
            evaluate_query(native.interpretation, "rnaseq(D, R)").texts()
            == evaluate_query(simulated.interpretation, "rnaseq(D, R)").texts()
        )


class TestStrongSafetyEnforcement:
    def test_figure_3_p2_is_rejected_when_safety_required(self):
        program = TransducerDatalogProgram(
            paper_programs.EXAMPLE_8_1_P2, paper_programs.figure_3_catalog()
        )
        assert not program.is_strongly_safe()
        with pytest.raises(SafetyError):
            program.evaluate(SequenceDatabase.from_dict({"p": ["a"]}), require_safety=True)

    def test_figure_3_p1_is_accepted(self, test_limits):
        program = TransducerDatalogProgram(
            paper_programs.EXAMPLE_8_1_P1, paper_programs.figure_3_catalog()
        )
        assert program.is_strongly_safe()
        db = SequenceDatabase.from_dict({"a": [("ab", "ba")]})
        result = program.evaluate(db, require_safety=True, limits=test_limits)
        assert evaluate_query(result.interpretation, "r(X, Y)").texts() == [
            ("abab", "baba")
        ]

    def test_safety_report_names_the_order(self):
        program = TransducerDatalogProgram(
            paper_programs.EXAMPLE_8_1_P2, paper_programs.figure_3_catalog()
        )
        assert program.safety().order == 2


class TestCorollary3PtimeFunctions:
    """Strongly safe order-<=2 programs computing PTIME sequence functions."""

    def test_complement_as_strongly_safe_program(self):
        program = TransducerDatalogProgram(
            "output(@complement(X)) :- input(X).",
            transducers=[library.complement_transducer("01")],
        )
        assert program.is_strongly_safe()
        result = program.evaluate(SequenceDatabase.single_input("1100"))
        assert evaluate_query(result.interpretation, "output(Y)").values("Y") == ["0011"]

    def test_squaring_as_strongly_safe_order_2_program(self):
        program = TransducerDatalogProgram(
            "output(@square(X)) :- input(X).",
            transducers=[library.square_transducer("ab")],
        )
        assert program.order == 2
        assert program.is_strongly_safe()
        result = program.evaluate(SequenceDatabase.single_input("ab"))
        assert evaluate_query(result.interpretation, "output(Y)").values("Y") == ["abab"]

    def test_composed_transducer_terms(self):
        program = TransducerDatalogProgram(
            "output(@complement(@complement(X))) :- input(X).",
            transducers=[library.complement_transducer("01")],
        )
        result = program.evaluate(SequenceDatabase.single_input("0101"))
        assert evaluate_query(result.interpretation, "output(Y)").values("Y") == ["0101"]
