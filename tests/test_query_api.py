"""Tests for the query layer and the high-level engine facade."""

import pytest

from repro import SequenceDatalogEngine, SequenceDatabase
from repro.core import paper_programs
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.query import PreparedQuery, output_relation
from repro.errors import MultiValuedOutputError, UnknownPredicateError


class TestPatternQueries:
    @pytest.fixture
    def suffix_result(self, small_string_db):
        return compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)

    def test_unary_pattern(self, suffix_result):
        result = evaluate_query(suffix_result.interpretation, "suffix(X)")
        assert ("abc",) in result.texts()
        assert len(result) == len(result.texts())

    def test_ground_pattern(self, suffix_result):
        assert len(evaluate_query(suffix_result.interpretation, 'suffix("bc")')) == 1
        assert evaluate_query(suffix_result.interpretation, 'suffix("zz")').is_empty()

    def test_pattern_with_indexed_term(self, suffix_result):
        # Suffixes whose first symbol is "b".
        result = evaluate_query(suffix_result.interpretation, 'suffix(X[1:end])')
        assert ("abc",) in result.texts()

    def test_binary_pattern_with_repeated_variable(self):
        db = SequenceDatabase.from_dict({"r": ["abab", "ab"]})
        result = compute_least_fixpoint(paper_programs.rep1_program(), db)
        same = evaluate_query(result.interpretation, "rep1(X, X)")
        assert ("ab", "ab") in same.texts()
        assert all(x == y for x, y in same.texts())

    def test_unknown_predicate_behaviour(self, suffix_result):
        assert evaluate_query(suffix_result.interpretation, "nothing(X)").is_empty()
        with pytest.raises(UnknownPredicateError):
            evaluate_query(suffix_result.interpretation, "nothing(X)", strict=True)

    def test_strict_accepts_known_but_empty_predicates(self, suffix_result):
        # A predicate the program defines but that derived nothing must not
        # be confused with a typo.
        result = evaluate_query(
            suffix_result.interpretation,
            "empty(X)",
            strict=True,
            known_predicates={"empty", "suffix", "r"},
        )
        assert result.is_empty()
        with pytest.raises(UnknownPredicateError):
            evaluate_query(
                suffix_result.interpretation,
                "sufix(X)",  # typo: not in the known set
                strict=True,
                known_predicates={"empty", "suffix", "r"},
            )

    def test_engine_query_strict_uses_program_predicates(self, small_string_db):
        engine = SequenceDatalogEngine("both(X) :- r(X), never(X).")
        result = engine.evaluate(small_string_db)
        # `both` and `never` derived nothing but belong to the program.
        assert engine.query(result, "both(X)", strict=True).is_empty()
        assert engine.query(result, "never(X)", strict=True).is_empty()
        with pytest.raises(UnknownPredicateError):
            engine.query(result, "bot(X)", strict=True)

    def test_indexed_patterns_do_not_duplicate_rows(self, suffix_result):
        # Each suffix fact is matched by many (X, N) witnesses; the rows
        # must still appear exactly once.
        result = evaluate_query(suffix_result.interpretation, "suffix(X[N:end])")
        assert len(result) == len(set(result.rows))
        assert result.texts() == sorted(set(result.texts()))
        # Witness substitutions are all kept (there are more than rows here).
        assert len(result.substitutions) > len(result.rows)

    def test_prepared_query_matches_one_shot_evaluation(self, suffix_result):
        prepared = PreparedQuery("suffix(X)")
        once = prepared.run(suffix_result.interpretation)
        again = prepared.run(suffix_result.interpretation)
        assert once.texts() == again.texts()
        assert once.texts() == evaluate_query(
            suffix_result.interpretation, "suffix(X)"
        ).texts()

    def test_contains_is_cached_across_calls(self, suffix_result):
        result = evaluate_query(suffix_result.interpretation, "suffix(X)")
        assert "abc" in result
        cached = result._row_set
        assert cached is not None
        assert "bc" in result
        assert result._row_set is cached  # no per-call set rebuild
        result.rows.append((result.rows[0]))  # mutation invalidates the cache
        assert result.rows[-1] in result

    def test_values_accessor(self, suffix_result):
        values = evaluate_query(suffix_result.interpretation, "suffix(X)").values("X")
        assert values == sorted(set(values))

    def test_membership_helper(self, suffix_result):
        result = evaluate_query(suffix_result.interpretation, "suffix(X)")
        assert "abc" in result
        assert ("abc",) in result

    def test_output_relation_helper(self):
        engine = SequenceDatalogEngine("output(X[1:2]) :- input(X).")
        result = engine.evaluate(SequenceDatabase.single_input("abc"))
        assert output_relation(result.interpretation) == ["ab"]


class TestEngineFacade:
    def test_run_combines_evaluate_and_query(self):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_1_SUFFIXES)
        result = engine.run({"r": ["ab"]}, "suffix(X)")
        assert result.values("X") == ["", "ab", "b"]

    def test_accepts_prebuilt_databases(self, small_string_db):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_1_SUFFIXES)
        assert not engine.run(small_string_db, "suffix(X)").is_empty()

    def test_compute_function_definition_5(self):
        engine = SequenceDatalogEngine(
            """
            output(Y) :- input(X), reverse(X, Y).
            reverse("", "") :- true.
            reverse(X[1:N+1], X[N+1] ++ Y) :- input(X), reverse(X[1:N], Y).
            """
        )
        assert engine.compute_function("1100") == "0011"

    def test_compute_function_undefined_returns_none(self):
        engine = SequenceDatalogEngine("output(X) :- input(X), never(X).")
        assert engine.compute_function("ab") is None

    def test_compute_function_multi_valued_raises(self):
        # Definition 5: several derived outputs mean the program does not
        # express a function at this input — not "the smallest one wins".
        engine = SequenceDatalogEngine("output(X[N:end]) :- input(X).")
        with pytest.raises(MultiValuedOutputError) as excinfo:
            engine.compute_function("ab")
        assert "output" in str(excinfo.value)

    def test_compute_function_single_valued_still_works(self):
        engine = SequenceDatalogEngine("output(X[1:2]) :- input(X).")
        assert engine.compute_function("abc") == "ab"

    def test_safety_and_finiteness_accessors(self):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_5_REP2)
        assert not engine.safety().strongly_safe
        assert not engine.finiteness().verdict.is_finite()

    def test_explain_renders_the_compiled_plan(self):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_1_SUFFIXES)
        report = engine.explain()
        assert "stratum" in report
        assert "scan r(X)" in report

    def test_evaluate_accepts_every_strategy(self, small_string_db):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_1_SUFFIXES)
        results = {
            strategy: engine.evaluate(small_string_db, strategy=strategy)
            for strategy in ("naive", "semi-naive", "compiled")
        }
        assert (
            results["naive"].interpretation
            == results["semi-naive"].interpretation
            == results["compiled"].interpretation
        )
