"""Round-trip and cross-subsystem composition properties.

Two families of invariants that cut across modules:

* **printer/parser round-trip** -- the textual form produced by the clause
  and program printers parses back to an equal object, for every paper
  program, every genome/text program, and hypothesis-generated clauses built
  directly from the term constructors;
* **composition agreement** -- independent implementations of the same
  genome/text operation (Sequence Datalog program vs generalized transducer
  vs plain Python) agree on random inputs, e.g. reverse-complement =
  reverse o complement, and splice-then-transcribe = transcribe-then-splice
  (after mapping the intron marks).
"""

from hypothesis import given, settings, strategies as st

from repro.core import paper_programs
from repro.genome import GenomeAnalyzer
from repro.genome.machines import complement_dna_transducer, splice_transducer
from repro.genome.programs import (
    orf_program,
    reading_frame_program,
    restriction_site_program,
    reverse_complement_program,
)
from repro.language.atoms import Atom, Comparison
from repro.language.clauses import Clause
from repro.language.parser import parse_clause, parse_program
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexVariable,
    IndexedTerm,
    SequenceVariable,
)
from repro.text.programs import (
    motif_program,
    palindrome_program,
    repeat_program,
    shared_substring_program,
    tandem_repeat_program,
)
from repro.transducers.library import transcribe_transducer

SLOW = settings(max_examples=10, deadline=None)
FAST = settings(max_examples=50, deadline=None)


# ----------------------------------------------------------------------
# Printer / parser round-trips
# ----------------------------------------------------------------------
ALL_PAPER_PROGRAMS = [
    paper_programs.suffixes_program,
    paper_programs.concatenations_program,
    paper_programs.anbncn_program,
    paper_programs.reverse_program,
    paper_programs.rep1_program,
    paper_programs.rep2_program,
    paper_programs.echo_program,
    paper_programs.stratified_construction_program,
    paper_programs.transcribe_simulation_program,
]

APPLICATION_PROGRAMS = [
    reverse_complement_program,
    orf_program,
    lambda: reading_frame_program(2),
    lambda: restriction_site_program("gaattc"),
    motif_program,
    lambda: shared_substring_program(3),
    palindrome_program,
    tandem_repeat_program,
    repeat_program,
]


def test_every_paper_program_round_trips_through_the_parser():
    for factory in ALL_PAPER_PROGRAMS:
        program = factory()
        assert parse_program(str(program)) == program


def test_every_application_program_round_trips_through_the_parser():
    for factory in APPLICATION_PROGRAMS:
        program = factory()
        assert parse_program(str(program)) == program


def test_transducer_datalog_programs_round_trip():
    program, _ = paper_programs.genome_program()
    assert parse_program(str(program)) == program
    for figure_program in paper_programs.figure_3_programs():
        assert parse_program(str(figure_program)) == figure_program


# Hypothesis strategies building terms directly from the constructors, so the
# round-trip is exercised on shapes no hand-written program happens to use.
# Index sums are kept one level deep: the concrete syntax is left-
# associative, so a right-nested ``0 + (end + end)`` prints as
# ``0+end+end`` and re-parses left-nested -- semantically equal but not
# structurally, which is all this round-trip checks.
_index_leaves = st.one_of(
    st.integers(0, 9).map(IndexConstant),
    st.sampled_from(["N", "M", "K"]).map(IndexVariable),
    st.just(End()),
)
index_terms = st.one_of(
    _index_leaves,
    st.builds(IndexSum, _index_leaves, _index_leaves, st.sampled_from(["+", "-"])),
)

base_sequence_terms = st.one_of(
    st.text(alphabet="ab", max_size=3).map(ConstantTerm),
    st.sampled_from(["X", "Y", "Z"]).map(SequenceVariable),
)

indexed_terms = st.builds(
    IndexedTerm,
    st.sampled_from(["X", "Y", "Z"]).map(SequenceVariable),
    index_terms,
    st.one_of(st.none(), index_terms),
)

body_sequence_terms = st.one_of(base_sequence_terms, indexed_terms)

head_sequence_terms = st.one_of(
    body_sequence_terms,
    st.lists(body_sequence_terms, min_size=2, max_size=3).map(ConcatTerm),
)


@FAST
@given(
    st.sampled_from(["p", "q", "edge"]),
    st.lists(head_sequence_terms, min_size=1, max_size=3),
    st.lists(
        st.tuples(st.sampled_from(["r", "s"]), st.lists(body_sequence_terms, min_size=1, max_size=2)),
        min_size=1,
        max_size=2,
    ),
)
def test_generated_clauses_round_trip(head_predicate, head_args, body_spec):
    head = Atom(head_predicate, head_args)
    body = [Atom(predicate, args) for predicate, args in body_spec]
    clause = Clause(head, body)
    assert parse_clause(str(clause)) == clause


@FAST
@given(body_sequence_terms, body_sequence_terms, st.sampled_from(["=", "!="]))
def test_generated_comparisons_round_trip(left, right, operator):
    clause = Clause(Atom("p", [SequenceVariable("X")]),
                    [Atom("r", [SequenceVariable("X")]), Comparison(left, right, operator)])
    assert parse_clause(str(clause)) == clause


# ----------------------------------------------------------------------
# Cross-subsystem composition agreement
# ----------------------------------------------------------------------
@SLOW
@given(st.text(alphabet="acgt", min_size=1, max_size=6))
def test_reverse_complement_equals_reverse_of_complement(dna):
    """The Sequence Datalog reverse-complement equals composing the order-1
    complement transducer with plain reversal."""
    analyzer = GenomeAnalyzer([dna])
    via_program = analyzer.reverse_complements()[dna]
    via_machine = complement_dna_transducer()(dna).text[::-1]
    assert via_program == via_machine


@SLOW
@given(st.text(alphabet="acgu", max_size=8))
def test_splice_of_unmarked_transcript_is_identity(rna):
    machine = splice_transducer()
    assert machine(rna).text == rna


@FAST
@given(st.text(alphabet="acgt", max_size=8))
def test_transcribing_twice_is_not_needed_complement_relation(dna):
    """Transcription is the complement map onto the RNA alphabet: composing
    it with the DNA complement per-symbol map gives the identity up to the
    t/u renaming."""
    transcribed = transcribe_transducer()(dna).text
    complemented = complement_dna_transducer()(dna).text
    assert transcribed == complemented.replace("t", "u")


def test_example_7_1_strings_through_every_route():
    """The paper's own strings: acgtacgt -> ugcaugca (Example 7.1), via the
    Transducer Datalog pipeline, the Example 7.2 simulation, and the machine
    directly."""
    from repro import SequenceDatabase, compute_least_fixpoint
    from repro.engine import evaluate_query

    dna = "acgtacgt"
    analyzer = GenomeAnalyzer([dna])
    assert analyzer.transcripts()[dna] == "ugcaugca"

    db = SequenceDatabase.from_dict({"dnaseq": [dna]})
    result = compute_least_fixpoint(paper_programs.transcribe_simulation_program(), db)
    simulated = dict(evaluate_query(result.interpretation, "rnaseq(D, R)").texts())
    assert simulated[dna] == "ugcaugca"

    assert transcribe_transducer()(dna).text == "ugcaugca"
