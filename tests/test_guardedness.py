"""Tests for guarded programs and the guarded transformation (Appendix B)."""

import pytest

from repro.analysis import guard_program, is_guarded, unguarded_clauses
from repro.analysis.guardedness import strip_dom_facts
from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.language.parser import parse_program


class TestGuardednessDetection:
    def test_paper_examples(self):
        assert is_guarded(parse_program("p(X[1]) :- q(X)."))
        assert not is_guarded(parse_program("p(X) :- q(X[1])."))

    def test_unguarded_clause_listing(self):
        program = parse_program("p(X[1]) :- q(X). p(X) :- q(X[1]).")
        assert len(unguarded_clauses(program)) == 1

    def test_head_only_variables_are_unguarded(self):
        # Example 1.5 rep1: the first clause has X guarded... but the second
        # clause's X appears only inside indexed terms in the body.
        program = paper_programs.rep1_program()
        assert not is_guarded(program)


class TestGuardedTransformation:
    def test_result_is_guarded(self):
        program = parse_program("p(X) :- q(X[1]).")
        guarded, dom = guard_program(program)
        assert is_guarded(guarded)
        assert dom == "dom"

    def test_dom_predicate_name_avoids_clashes(self):
        program = parse_program("dom(X) :- q(X). p(X) :- q(X[1]).")
        guarded, dom = guard_program(program)
        assert dom != "dom"
        assert is_guarded(guarded)

    def test_dom_rules_cover_subsequences_and_all_predicates(self):
        program = parse_program("p(X) :- q(X[1]).")
        guarded, dom = guard_program(program)
        rendered = str(guarded)
        assert f"{dom}(X[M:N]) :- {dom}(X)." in rendered
        assert f"{dom}(X1) :- q(X1)." in rendered
        assert f"{dom}(X1) :- p(X1)." in rendered

    def test_extra_base_predicates_are_included(self):
        program = parse_program("p(X) :- q(X).")
        guarded, dom = guard_program(program, base_predicates={"extra": 2})
        assert f"{dom}(X2) :- extra(X1, X2)." in str(guarded)


class TestTheorem10Equivalence:
    """The guarded program expresses the same queries (Theorem 10)."""

    @pytest.mark.parametrize(
        "source, data, query",
        [
            (paper_programs.EXAMPLE_1_1_SUFFIXES, {"r": ["abc"]}, "suffix(X)"),
            (paper_programs.EXAMPLE_1_4_REVERSE, {"r": ["1100"]}, "answer(Y)"),
            (paper_programs.EXAMPLE_1_5_REP1, {"r": ["abab"]}, "rep1(X, Y)"),
            (
                paper_programs.EXAMPLE_1_3_ANBNCN,
                {"r": ["abc", "ab", "aabbcc"]},
                "answer(X)",
            ),
        ],
    )
    def test_same_answers_for_program_predicates(self, source, data, query, test_limits):
        program = parse_program(source)
        db = SequenceDatabase.from_dict(data)
        original = compute_least_fixpoint(program, db, limits=test_limits)

        # The construction needs the database schema: dom must collect the
        # sequences of every base relation, including ones the program never
        # mentions explicitly (Appendix B assumes a fixed, finite schema).
        schema_arities = {
            relation.name: relation.arity for relation in db.schema()
        }
        guarded, dom = guard_program(program, base_predicates=schema_arities)
        transformed = compute_least_fixpoint(guarded, db, limits=test_limits)

        assert (
            evaluate_query(original.interpretation, query).texts()
            == evaluate_query(transformed.interpretation, query).texts()
        )

    def test_strip_dom_facts_removes_only_dom(self):
        program = parse_program("p(X) :- q(X[1]).")
        guarded, dom = guard_program(program)
        db = SequenceDatabase.from_dict({"q": ["ab", "a"]})
        result = compute_least_fixpoint(guarded, db)
        remaining = strip_dom_facts(list(result.interpretation.facts()), dom)
        assert all(fact[0] != dom for fact in remaining)
        assert any(fact[0] == "p" for fact in remaining)
