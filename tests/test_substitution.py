"""Tests for substitutions and interpreted-term evaluation (Section 3.2)."""

import pytest

from repro.engine.bindings import Substitution, UnboundVariableError
from repro.errors import EvaluationError
from repro.language.parser import parse_atom, parse_term
from repro.language.terms import IndexConstant, IndexSum, IndexVariable, End
from repro.sequences import Sequence


@pytest.fixture
def theta() -> Substitution:
    return Substitution({"S": Sequence("uvwxy"), "X": Sequence("ab")}, {"N": 3, "M": 2})


class TestBindingBasics:
    def test_bindings_are_immutable_extensions(self, theta):
        extended = theta.bind_sequence("Y", Sequence("zz"))
        assert extended.binds_sequence("Y")
        assert not theta.binds_sequence("Y")

    def test_unbound_lookup_raises(self, theta):
        with pytest.raises(UnboundVariableError):
            theta.sequence("Missing")
        with pytest.raises(UnboundVariableError):
            theta.index("Missing")

    def test_covers(self, theta):
        assert theta.covers({"S"}, {"N"})
        assert not theta.covers({"S", "Q"}, set())

    def test_equality_and_hash(self, theta):
        other = Substitution({"S": Sequence("uvwxy"), "X": Sequence("ab")}, {"N": 3, "M": 2})
        assert theta == other
        assert hash(theta) == hash(other)


class TestIndexEvaluation:
    def test_constants_variables_and_end(self, theta):
        assert theta.evaluate_index(IndexConstant(7), end_value=5) == 7
        assert theta.evaluate_index(IndexVariable("N"), end_value=5) == 3
        assert theta.evaluate_index(End(), end_value=5) == 5

    def test_arithmetic(self, theta):
        term = IndexSum(IndexSum(End(), IndexConstant(5), "-"), IndexVariable("M"), "+")
        assert theta.evaluate_index(term, end_value=10) == 7

    def test_end_outside_indexed_term_raises(self, theta):
        with pytest.raises(EvaluationError):
            theta.evaluate_index(End(), end_value=None)


class TestSequenceEvaluation:
    """The uvwxy table of Section 3.2, evaluated through terms."""

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("S[3:6]", None),
            ("S[3:5]", "wxy"),
            ("S[3:4]", "wx"),
            ("S[3:3]", "w"),
            ("S[3:2]", ""),
            ("S[3:1]", None),
            ("S[N:end]", "wxy"),
            ("S[1:end-1]", "uvwx"),
            ("S[M+2:end]", "xy"),
            ("S[end]", "y"),
        ],
    )
    def test_indexed_terms(self, theta, text, expected):
        value = theta.evaluate_sequence(parse_term(text))
        if expected is None:
            assert value is None
        else:
            assert value == Sequence(expected)

    def test_constants_and_variables(self, theta):
        assert theta.evaluate_sequence(parse_term('"acgt"')) == Sequence("acgt")
        assert theta.evaluate_sequence(parse_term("X")) == Sequence("ab")

    def test_concatenation(self, theta):
        value = theta.evaluate_sequence(parse_term('X ++ "c" ++ S[3:3]'))
        assert value == Sequence("abcw")

    def test_concatenation_with_undefined_part_is_undefined(self, theta):
        assert theta.evaluate_sequence(parse_term("X ++ S[3:9]")) is None

    def test_unbound_variable_raises(self, theta):
        with pytest.raises(UnboundVariableError):
            theta.evaluate_sequence(parse_term("Q"))

    def test_transducer_terms_need_a_registry(self, theta):
        with pytest.raises(EvaluationError):
            theta.evaluate_sequence(parse_term("@t(X)"))

    def test_transducer_terms_with_registry(self, theta):
        registry = {"rev": lambda s: s.reverse()}
        value = theta.evaluate_sequence(parse_term("@rev(X)"), registry)
        assert value == Sequence("ba")


class TestAtomAndComparisonEvaluation:
    def test_atom_evaluation(self, theta):
        ground = theta.evaluate_atom(parse_atom("p(X, S[1:2])"))
        assert ground == ("p", (Sequence("ab"), Sequence("uv")))

    def test_atom_with_undefined_argument(self, theta):
        assert theta.evaluate_atom(parse_atom("p(S[3:9])")) is None

    def test_comparison_evaluation(self, theta):
        from repro.language.atoms import Comparison

        assert theta.evaluate_comparison(Comparison(parse_term("X[1]"), parse_term('"a"')))
        assert not theta.evaluate_comparison(
            Comparison(parse_term("X[1]"), parse_term('"b"'))
        )
        assert theta.evaluate_comparison(
            Comparison(parse_term("X[1]"), parse_term('"b"'), "!=")
        )

    def test_comparison_with_undefined_term_is_none(self, theta):
        from repro.language.atoms import Comparison

        comparison = Comparison(parse_term("S[3:9]"), parse_term('"a"'))
        assert theta.evaluate_comparison(comparison) is None
