"""Tests for the synthetic workload generators."""

from repro import workloads
from repro.sequences.alphabet import DNA_ALPHABET


class TestGenerators:
    def test_random_string_length_and_alphabet(self):
        word = workloads.random_string(50, alphabet="xyz", seed=7)
        assert len(word) == 50
        assert set(word) <= set("xyz")

    def test_seeding_is_deterministic(self):
        assert workloads.random_string(20, seed=1) == workloads.random_string(20, seed=1)
        assert workloads.random_strings(3, 10, seed=2) == workloads.random_strings(3, 10, seed=2)

    def test_random_dna_uses_the_dna_alphabet(self):
        word = workloads.random_dna(100, seed=3)
        assert set(word) <= set(DNA_ALPHABET.symbols)

    def test_anbncn_construction(self):
        assert workloads.anbncn(0) == ""
        assert workloads.anbncn(3) == "aaabbbccc"

    def test_anbncn_database_mixes_targets_and_decoys(self):
        db = workloads.anbncn_database(3, decoys=4, seed=5)
        rows = {row[0].text for row in db.relation("r")}
        assert "aabbcc" in rows
        decoys = [row for row in rows if not workloads._is_anbncn(row)]
        assert len(decoys) >= 1

    def test_repeats_database(self):
        db = workloads.repeats_database(pattern_lengths=(2,), copies=(1, 3), seed=9)
        rows = sorted(row[0].text for row in db.relation("r"))
        assert len(rows[1]) == 3 * len(rows[0])

    def test_string_database_shape(self):
        db = workloads.string_database(5, 7, relation="docs", seed=11)
        assert len(db.relation("docs")) == 5
        assert all(len(row[0]) == 7 for row in db.relation("docs"))

    def test_dna_database_shape(self):
        db = workloads.dna_database(3, 9, seed=13)
        assert len(db.relation("dnaseq")) == 3

    def test_size_sweep(self):
        sweep = workloads.size_sweep([1, 2, 4], length=5, seed=17)
        assert [size for size, _ in sweep] == [1, 2, 4]
        assert all(len(db.relation("r")) == size for size, db in sweep)

    def test_length_sweep(self):
        sweep = workloads.length_sweep([2, 4], count=3, seed=19)
        for length, db in sweep:
            assert all(len(row[0]) == length for row in db.relation("r"))
