"""Tests for the versioned public API (:mod:`repro.api`).

Covers the four layers bottom-up — typed schema and error mapping
(``types``), wire framing (``protocol``), in-process dispatch with
cursor pagination (``service``), and the live TCP transport + client —
plus the CLI integration (``serve --json``, ``serve --tcp``, ``client``).

The crown jewel is the randomized remote-equivalence property: a
:class:`DatalogClient` talking to a live TCP server must return
fact-for-fact identical answers (rows, witnesses, strict-mode behaviour,
paged or monolithic) to in-process ``engine_api`` evaluation.
"""

import io
import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SequenceDatalogEngine
from repro.api import (
    AddFactsRequest,
    ApiError,
    BatchRequest,
    DatalogClient,
    DatalogService,
    ErrorCode,
    ExplainRequest,
    FetchRequest,
    PingRequest,
    QueryRequest,
    QueryResultPage,
    SCHEMA_VERSION,
    ServerStats,
    StatsRequest,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    parse_address,
    recv_json,
    send_json,
    serve_tcp,
)
from repro.api.protocol import read_frame, write_frame
from repro.cli import main
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import (
    FixpointNotReached,
    MultiValuedOutputError,
    ParseError,
    ProtocolError,
    RemoteApiError,
    SessionPoisonedError,
    UnknownPredicateError,
    ValidationError,
)
from repro.language.parser import parse_program
from repro.live import serve_tcp_async
from repro.workloads import random_strings

SUFFIX_PROGRAM = "suffix(X[N:end]) :- r(X)."

API_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# A compatible subset of the equivalence templates used across the suite.
CLAUSE_TEMPLATES = (
    "p(X) :- r(X).",
    "p(X[1:N]) :- r(X).",
    "p(Y) :- r(X), Y = X[1:2].",
    "q(X) :- p(X), r(X).",
    'q(X) :- p(X), X != "a".',
    "q(X[2:end]) :- q(X), r(X).",
)


@pytest.fixture(params=["threaded", "async"])
def tcp(request):
    """Factory for live TCP servers, all closed at teardown.

    Parametrized over both transports — every test taking this fixture
    runs against the thread-per-connection server *and* the asyncio
    front-end, which must be wire-identical for the whole request
    surface.
    """
    factory = serve_tcp if request.param == "threaded" else serve_tcp_async
    servers = []

    def start(program, database=None, **options):
        server = factory(program, database, port=0, **options)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


def witness_keys(page):
    """Canonical, order-insensitive view of a page's witnesses."""
    return sorted(
        (
            tuple(sorted(witness["sequences"].items())),
            tuple(sorted(witness["indexes"].items())),
        )
        for witness in page.witnesses
    )


def monolithic_page(result):
    """In-process QueryResult -> the typed page the API would ship."""
    return QueryResultPage.from_result(result, result.window(witnesses=True))


# ----------------------------------------------------------------------
# Typed error mapping
# ----------------------------------------------------------------------
class TestErrorMapping:
    @pytest.mark.parametrize(
        "exception, code",
        [
            (UnknownPredicateError("nope"), ErrorCode.UNKNOWN_PREDICATE),
            (SessionPoisonedError("poisoned"), ErrorCode.SESSION_POISONED),
            (MultiValuedOutputError("two outputs"), ErrorCode.MULTI_VALUED_OUTPUT),
            (FixpointNotReached("limit", iterations=7), ErrorCode.LIMIT_EXCEEDED),
            (ParseError("bad atom", 3, 9), ErrorCode.PARSE),
            (ValidationError("bad shape"), ErrorCode.VALIDATION),
            (ProtocolError("bad frame"), ErrorCode.PROTOCOL),
        ],
    )
    def test_library_exceptions_get_stable_codes(self, exception, code):
        error = ApiError.from_exception(exception)
        assert error.code == code
        assert str(exception) in error.message

    def test_parse_error_carries_location_details(self):
        error = ApiError.from_exception(ParseError("bad atom", 3, 9))
        assert error.details == {"line": 3, "column": 9}

    def test_limit_error_carries_iterations(self):
        error = ApiError.from_exception(FixpointNotReached("limit", iterations=7))
        assert error.details == {"iterations": 7}

    def test_raise_restores_structured_attributes(self):
        parse = ApiError.from_exception(ParseError("bad atom", 3, 9))
        with pytest.raises(ParseError) as excinfo:
            ApiError.from_payload(parse.to_payload()).raise_()
        assert (excinfo.value.line, excinfo.value.column) == (3, 9)
        assert str(excinfo.value).count("line 3") == 1  # not re-appended
        limit = ApiError.from_exception(FixpointNotReached("limit", iterations=7))
        with pytest.raises(FixpointNotReached) as excinfo:
            ApiError.from_payload(limit.to_payload()).raise_()
        assert excinfo.value.iterations == 7

    def test_internal_exceptions_never_leak_raw(self):
        error = ApiError.from_exception(KeyError("secret_predicate"))
        assert error.code == ErrorCode.INTERNAL
        assert error.details["exception"] == "KeyError"
        assert "Traceback" not in error.message

    @pytest.mark.parametrize(
        "exception_type",
        [
            UnknownPredicateError,
            SessionPoisonedError,
            ValidationError,
            MultiValuedOutputError,
        ],
    )
    def test_raise_reraises_the_same_type(self, exception_type):
        error = ApiError.from_exception(exception_type("boom"))
        roundtripped = ApiError.from_payload(error.to_payload())
        with pytest.raises(exception_type, match="boom"):
            roundtripped.raise_()

    def test_unknown_codes_raise_remote_api_error(self):
        error = ApiError(code="from_the_future", message="??", details={"x": 1})
        with pytest.raises(RemoteApiError) as excinfo:
            error.raise_()
        assert excinfo.value.code == "from_the_future"
        assert excinfo.value.details == {"x": 1}

    def test_remote_api_error_round_trips_its_code(self):
        original = RemoteApiError("nope", code=ErrorCode.BAD_REQUEST, details={"field": "v"})
        error = ApiError.from_exception(original)
        assert error.code == ErrorCode.BAD_REQUEST
        assert error.details == {"field": "v"}


# ----------------------------------------------------------------------
# Request/response codecs and validation
# ----------------------------------------------------------------------
class TestCodecs:
    @pytest.mark.parametrize(
        "request_",
        [
            QueryRequest(pattern="p(X)", strict=True, page_size=5, include_witnesses=True),
            QueryRequest(pattern="p(X)"),
            FetchRequest(cursor="c1"),
            AddFactsRequest(facts=(("r", ("a", "b")), ("s", ("c",)))),
            BatchRequest(patterns=("p(X)", "q(Y)"), strict=True),
            ExplainRequest(),
            StatsRequest(),
            PingRequest(),
        ],
    )
    def test_requests_round_trip(self, request_):
        message = encode_request(request_)
        assert message["v"] == SCHEMA_VERSION
        assert json.loads(json.dumps(message)) == message
        assert decode_request(message) == request_

    def test_missing_version_is_a_bad_request(self):
        with pytest.raises(RemoteApiError) as excinfo:
            decode_request({"op": "ping"})
        assert excinfo.value.code == ErrorCode.BAD_REQUEST

    def test_future_version_is_rejected_with_supported_list(self):
        with pytest.raises(RemoteApiError) as excinfo:
            decode_request({"v": 99, "op": "ping"})
        assert excinfo.value.code == ErrorCode.UNSUPPORTED_VERSION
        assert excinfo.value.details == {"supported": [1]}

    def test_unknown_op_lists_known_ops(self):
        with pytest.raises(RemoteApiError) as excinfo:
            decode_request({"v": 1, "op": "zap"})
        assert excinfo.value.code == ErrorCode.BAD_REQUEST
        assert "query" in excinfo.value.details["known_ops"]

    @pytest.mark.parametrize(
        "message, field",
        [
            ({"v": 1, "op": "query"}, "pattern"),
            ({"v": 1, "op": "query", "pattern": "  "}, "pattern"),
            ({"v": 1, "op": "query", "pattern": "p(X)", "page_size": 0}, "page_size"),
            ({"v": 1, "op": "query", "pattern": "p(X)", "strict": "yes"}, "strict"),
            ({"v": 1, "op": "add_facts", "facts": "r"}, "facts"),
            ({"v": 1, "op": "add_facts", "facts": [["r"]]}, "facts[0]"),
            ({"v": 1, "op": "add_facts", "facts": [[3, ["a"]]]}, "facts[0].predicate"),
            ({"v": 1, "op": "add_facts", "facts": [["r", []]]}, "facts[0].values"),
            (
                {"v": 1, "op": "add_facts", "facts": [["r", ["a"]], ["r", ["a", 5]]]},
                "facts[1].values[1]",
            ),
            ({"v": 1, "op": "batch", "patterns": "p(X)"}, "patterns"),
            ({"v": 1, "op": "batch", "patterns": ["p(X)", ""]}, "patterns[1]"),
        ],
    )
    def test_field_level_validation_messages(self, message, field):
        with pytest.raises(RemoteApiError) as excinfo:
            decode_request(message)
        assert excinfo.value.code == ErrorCode.VALIDATION
        assert str(excinfo.value).startswith(f"{field}:")
        assert excinfo.value.details["field"] == field

    def test_responses_round_trip(self):
        page = QueryResultPage(
            pattern="p(X)",
            rows=(("a",), ("b",)),
            witnesses=({"sequences": {"X": "a"}, "indexes": {}},),
            row_offset=0,
            witness_offset=0,
            total_rows=10,
            total_witnesses=12,
            complete=False,
            cursor="c3",
            generation=4,
        )
        assert decode_response(encode_response(page)) == page
        stats = ServerStats(
            facts=3, base_facts=1, predicates=2, queries_served=5,
            maintenance_runs=1, poisoned=False, generation=2, workers=None,
            extra={"intern_table": {"size": 9}},
        )
        decoded = decode_response(encode_response(stats))
        assert decoded.facts == 3 and decoded.generation == 2
        assert decoded.extra["intern_table"] == {"size": 9}

    def test_error_envelope_decodes_to_api_error(self):
        envelope = encode_response(ApiError(code="parse_error", message="bad"))
        decoded = decode_response(envelope)
        assert isinstance(decoded, ApiError)
        assert decoded.code == "parse_error"

    def test_unknown_response_kind_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_response({"v": 1, "ok": True, "kind": "mystery"})

    @pytest.mark.parametrize(
        "message",
        [
            {"v": 1, "ok": True, "kind": "query_result", "rows": [1]},
            {"v": 1, "ok": True, "kind": "query_result", "rows": [["a"]],
             "witnesses": [7]},
            {"v": 1, "ok": True, "kind": "query_result", "rows": [["a"]],
             "total_rows": "many"},
            {"v": 1, "ok": True, "kind": "batch", "results": [{"rows": [3]}]},
            {"v": 1, "ok": True, "kind": "add_facts", "sweeps": "lots"},
        ],
    )
    def test_garbage_inside_known_kinds_is_a_protocol_error(self, message):
        # A known kind with malformed innards must not escape as a raw
        # TypeError/ValueError — the client's typed-error contract.
        with pytest.raises(ProtocolError, match="malformed"):
            decode_response(message)


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
class TestProtocolFraming:
    def roundtrip(self, *messages):
        stream = io.BytesIO()
        for message in messages:
            send_json(stream, message)
        stream.seek(0)
        return [recv_json(stream) for _ in messages]

    def test_frames_round_trip_in_order(self):
        first, second = {"v": 1, "op": "ping"}, {"v": 1, "rows": [["a\nb", "c"]]}
        assert self.roundtrip(first, second) == [first, second]

    def test_clean_eof_returns_none(self):
        assert recv_json(io.BytesIO(b"")) is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"xyz\n{}\n",            # non-decimal length
            b"5\n{}\n",              # length larger than payload
            b"2\n{}",                # missing terminator
            b"2\n{}X",               # wrong terminator
            b"7\nnotjson\n",         # not JSON
            b"2\n[]\n",              # JSON but not an object
            b"1" * 40,               # unterminated length line
        ],
    )
    def test_malformed_frames_raise_protocol_error(self, raw):
        with pytest.raises(ProtocolError):
            recv_json(io.BytesIO(raw))

    def test_announced_oversize_frame_is_refused(self):
        with pytest.raises(ProtocolError, match="cap"):
            recv_json(io.BytesIO(b"999999\n" + b"x" * 999999 + b"\n"), max_bytes=1024)

    def test_sending_oversize_frame_is_refused(self):
        with pytest.raises(ProtocolError, match="paginate"):
            write_frame(io.BytesIO(), b"x" * (64 * 1024 * 1024 + 1))

    def test_read_frame_is_exact(self):
        stream = io.BytesIO()
        write_frame(stream, b'{"a":1}')
        stream.seek(0)
        assert read_frame(stream) == b'{"a":1}'
        assert read_frame(stream) is None


# ----------------------------------------------------------------------
# In-process service dispatch
# ----------------------------------------------------------------------
class TestService:
    def make(self, rows=("abc",), **options):
        server = DatalogServer(SUFFIX_PROGRAM, {"r": list(rows)})
        return server, DatalogService(server, **options)

    def test_query_fetch_loop_reassembles_everything(self):
        server, service = self.make(rows=("abcdefgh",))
        try:
            full = service.handle(QueryRequest(pattern="suffix(X)"))
            pages = [service.handle(QueryRequest(pattern="suffix(X)", page_size=3))]
            while not pages[-1].complete:
                assert len(pages[-1].rows) <= 3
                pages.append(service.handle(FetchRequest(cursor=pages[-1].cursor)))
            merged = QueryResultPage.merge(pages)
            assert merged.texts() == full.texts()
            assert service.open_cursors() == 0  # exhausted cursors are dropped
        finally:
            server.close()

    def test_unknown_cursor_has_a_stable_code(self):
        server, service = self.make()
        try:
            reply = service.handle_raw({"v": 1, "op": "fetch", "cursor": "c99"})
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.UNKNOWN_CURSOR
        finally:
            server.close()

    def test_cursor_cap_is_enforced(self):
        server, service = self.make(rows=("abcdefgh",), max_open_cursors=2)
        try:
            for _ in range(2):
                page = service.handle(QueryRequest(pattern="suffix(X)", page_size=2))
                assert page.cursor is not None
            reply = service.handle_raw(
                encode_request(QueryRequest(pattern="suffix(X)", page_size=2))
            )
            assert reply["error"]["code"] == ErrorCode.BAD_REQUEST
            assert "cursors" in reply["error"]["message"]
        finally:
            server.close()

    def test_batch_failure_releases_the_cursors_it_registered(self):
        # Hitting the open-cursor cap mid-batch must free the cursors the
        # earlier results of the same batch registered: only the error
        # reply ships, so the client can never learn their ids.
        program = "suffix(X[N:end]) :- r(X). prefix(X[1:N]) :- r(X)."
        server = DatalogServer(program, {"r": ["abcdefgh"]})
        try:
            service = DatalogService(server, max_page_rows=2, max_open_cursors=1)
            reply = service.handle_raw(
                encode_request(BatchRequest(patterns=("suffix(X)", "prefix(X)")))
            )
            assert reply["ok"] is False
            assert "cursors" in reply["error"]["message"]
            assert service.open_cursors() == 0
            # Paged queries still work on this service afterwards.
            page = service.handle(QueryRequest(pattern="suffix(X)", page_size=2))
            assert page.cursor is not None
        finally:
            server.close()

    def test_handle_raw_never_raises(self):
        server, service = self.make()
        try:
            for garbage in (None, [], "x", {}, {"v": 1}, {"v": 1, "op": "query"}):
                reply = service.handle_raw(garbage)
                assert reply["ok"] is False
                assert "code" in reply["error"]
        finally:
            server.close()

    def test_internal_backend_bugs_become_typed_internal_errors(self):
        server, service = self.make()
        try:
            server_query = server.query

            def exploding(*args, **kwargs):
                raise KeyError("lost predicate")

            server.query = exploding
            reply = service.handle_raw(encode_request(QueryRequest(pattern="r(X)")))
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.INTERNAL
            assert reply["error"]["details"]["exception"] == "KeyError"
            server.query = server_query
        finally:
            server.close()

    def test_add_facts_value_types_are_validated_in_process_too(self):
        # Satellite regression: a number deep in a batch used to escape as
        # a raw TypeError out of the interning layer.
        server, _ = self.make()
        try:
            with pytest.raises(ValidationError, match="position 1"):
                server.add_facts([("r", ("ok", 5))])
        finally:
            server.close()

    def test_session_backend_serves_demand_queries(self):
        session = DatalogSession(SUFFIX_PROGRAM, {"r": ["ab"]}, lazy=True)
        try:
            service = DatalogService(session, demand=True)
            page = service.handle(QueryRequest(pattern='suffix("b")'))
            assert page.total_rows == 1
            stats = service.handle(StatsRequest())
            assert stats.generation is None  # sessions do not publish generations
            assert stats.extra["materialized"] is False  # demand never materialises
        finally:
            session.close()

    def test_explain_and_stats_are_typed(self):
        server, service = self.make()
        try:
            assert "stratum" in service.handle(ExplainRequest()).text
            stats = service.handle(StatsRequest())
            assert isinstance(stats, ServerStats)
            assert stats.generation == 0 and stats.facts > 0
        finally:
            server.close()


# ----------------------------------------------------------------------
# Live TCP: remote answers == in-process answers
# ----------------------------------------------------------------------
class TestRemoteEquivalence:
    @pytest.mark.parametrize(
        "transport", [serve_tcp, serve_tcp_async], ids=["threaded", "async"]
    )
    @API_SETTINGS
    @given(
        st.lists(st.sampled_from(CLAUSE_TEMPLATES), min_size=1, max_size=4, unique=True),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_remote_matches_in_process_on_random_programs(
        self, transport, templates, seed, count, length
    ):
        program = parse_program("".join(templates))
        database = {"r": random_strings(count, length, alphabet="ab", seed=seed)}
        engine = SequenceDatalogEngine("".join(templates))
        result = engine.evaluate(database)
        with transport("".join(templates), database, port=0) as server:
            with DatalogClient(*server.address) as client:
                for predicate, arity in sorted(program.signatures().items()):
                    variables = ", ".join(f"V{i}" for i in range(arity))
                    pattern = f"{predicate}({variables})"
                    local = engine.query(result, pattern)
                    remote = client.query(pattern, witnesses=True)
                    assert remote.texts() == local.texts(), pattern
                    assert witness_keys(remote) == witness_keys(monolithic_page(local))

    def test_pagination_reassembly_and_streaming_agree(self, tcp):
        text = "ab" * 60
        server = tcp(SUFFIX_PROGRAM, {"r": [text]})
        engine = SequenceDatalogEngine(SUFFIX_PROGRAM)
        local = engine.query(engine.evaluate({"r": [text]}), "suffix(X)")
        with DatalogClient(*server.address) as client:
            monolithic = client.query("suffix(X)")
            paged = client.query("suffix(X)", page_size=7)
            streamed = sorted(client.query_iter("suffix(X)", page_size=7))
            assert monolithic.texts() == local.texts()
            assert paged.texts() == local.texts()
            assert streamed == local.texts()

    def test_no_page_exceeds_the_requested_size(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abcdefghij"]})
        with DatalogClient(*server.address) as client:
            pages = [
                client._expect(
                    QueryRequest(pattern="suffix(X)", page_size=3), QueryResultPage
                )
            ]
            while not pages[-1].complete:
                pages.append(
                    client._expect(FetchRequest(cursor=pages[-1].cursor), QueryResultPage)
                )
            assert all(len(page.rows) <= 3 for page in pages)
            assert len(pages) >= 4  # 11 suffixes / 3 per page

    def test_strict_mode_distinctions_survive_the_wire(self, tcp):
        program = SUFFIX_PROGRAM + ' empty(X) :- r(X), X = "zz".'
        server = tcp(program, {"r": ["abc"]})
        with DatalogClient(*server.address) as client:
            # Unknown predicate: raises the same type as in-process strict.
            with pytest.raises(UnknownPredicateError, match="nosuch"):
                client.query("nosuch(X)", strict=True)
            # Known but empty: empty result, no error.
            assert client.query("empty(X)", strict=True).is_empty()
            # Non-strict unknown: empty result.
            assert client.query("nosuch(X)").is_empty()

    def test_parse_errors_come_back_typed_with_location(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        with DatalogClient(*server.address) as client:
            with pytest.raises(ParseError, match="line 1") as excinfo:
                client.query("suffix(")
            # The structured attributes survive the wire, not just the
            # rendered message.
            assert excinfo.value.line == 1
            assert excinfo.value.column > 0

    def test_add_facts_round_trip_and_generations(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        with DatalogClient(*server.address) as client:
            before = client.stats().generation
            report = client.add_fact("r", "xy")
            assert report.base_facts_added == 1
            assert report.generation == before + 1
            assert ("y",) in client.query("suffix(X)").rows
            # Replaying the same facts is absorbed: no new generation.
            replay = client.add_fact("r", "xy")
            assert replay.base_facts_added == 0
            assert replay.generation == report.generation

    def test_add_facts_malformed_values_are_typed_remotely(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        with DatalogClient(*server.address) as client:
            reply = client.raw_request(
                {"v": 1, "op": "add_facts", "facts": [["r", ["a", None]]]}
            )
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.VALIDATION
            assert "facts[0].values[1]" in reply["error"]["message"]

    def test_batch_preserves_input_order_and_duplicates(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        engine = SequenceDatalogEngine(SUFFIX_PROGRAM)
        result = engine.evaluate({"r": ["ab"]})
        patterns = ["suffix(X)", "r(X)", "suffix(X)"]
        with DatalogClient(*server.address) as client:
            remote = client.query_batch(patterns)
            assert [page.texts() for page in remote] == [
                engine.query(result, pattern).texts() for pattern in patterns
            ]

    def test_mid_stream_add_facts_keeps_the_pinned_snapshot(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abcdef"]})
        with DatalogClient(*server.address) as reader, \
                DatalogClient(*server.address) as writer:
            stream = reader.query_iter("suffix(X)", page_size=2)
            first_rows = [next(stream), next(stream), next(stream)]
            writer.add_fact("r", "wxwx")
            rest = list(stream)
            # The stream yields exactly the pre-update suffixes.
            assert sorted(first_rows + rest) == sorted(
                (suffix,) for suffix in
                [""] + ["abcdef"[i:] for i in range(6)]
            )
            # A fresh query sees the new strand.
            assert ("xwx",) in reader.query("suffix(X)").rows

    def test_concurrent_clients_get_consistent_answers(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        host, port = server.address
        errors = []
        answer_sets = []

        def worker():
            try:
                with DatalogClient(host, port) as client:
                    for _ in range(5):
                        answer_sets.append(frozenset(client.query("suffix(X)").rows))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        def maintainer():
            try:
                with DatalogClient(host, port) as client:
                    client.add_fact("r", "qr")
                    client.add_fact("r", "st")
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads.append(threading.Thread(target=maintainer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every observed answer set must be one of the published states:
        # suffixes of abc, +qr, +st (in either add order the end state is
        # the union; intermediate sets are subsets of the final one).
        base = {("",), ("abc",), ("bc",), ("c",)}
        final = base | {("qr",), ("r",)} | {("st",), ("t",)}
        for observed in answer_sets:
            assert base <= set(observed) <= final

    def test_query_iter_early_break_releases_the_cursor(self, tcp):
        # Regression: breaking out of a streamed result used to strand the
        # server-side cursor until the connection closed, pinning the
        # fully-evaluated result and eating into the per-connection cap.
        server = tcp(SUFFIX_PROGRAM, {"r": ["abcdefghij"]})
        with DatalogClient(*server.address) as client:
            for count, _row in enumerate(client.query_iter("suffix(X)", page_size=2)):
                if count == 2:
                    break  # mid-stream: the cursor is still open server-side
            live = client.stats().live
            assert live is not None and live["open_cursors"] == 0

    def test_query_pages_closed_generator_releases_the_cursor(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abcdefghij"]})
        with DatalogClient(*server.address) as client:
            pages = client.query_pages("suffix(X)", page_size=2)
            first = next(pages)
            assert not first.complete and first.cursor is not None
            pages.close()
            assert client.stats().live["open_cursors"] == 0

    def test_query_batch_failure_releases_unfinished_cursors(
        self, tcp, monkeypatch
    ):
        # A failure while finishing result k must not strand the cursors
        # the batch reply opened for the results after it.
        server = tcp(SUFFIX_PROGRAM, {"r": ["abcdefghij"]}, max_page_rows=2)
        with DatalogClient(*server.address) as client:
            original = DatalogClient._finish_pages
            finished = []

            def flaky(self, page):
                merged = original(self, page)
                finished.append(merged)
                if len(finished) == 2:
                    raise RuntimeError("boom after result 1")
                return merged

            monkeypatch.setattr(DatalogClient, "_finish_pages", flaky)
            with pytest.raises(RuntimeError, match="boom"):
                client.query_batch(["suffix(X)"] * 3)
            monkeypatch.setattr(DatalogClient, "_finish_pages", original)
            assert client.stats().live["open_cursors"] == 0

    def test_client_send_cap_applies_to_outbound_frames(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        host, port = server.address
        client = DatalogClient(host, port, max_frame_bytes=256, retries=0)
        try:
            with pytest.raises(ProtocolError, match="cap 256"):
                client.add_facts([("r", ("x" * 500,))])
        finally:
            client.close()

    def test_client_reconnects_after_close(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        client = DatalogClient(*server.address)
        try:
            assert client.query("r(X)").total_rows == 1
            client.close()
            assert not client.connected
            assert client.query("r(X)").total_rows == 1  # auto-reopened
        finally:
            client.close()

    def test_version_negotiation_over_the_wire(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        with DatalogClient(*server.address) as client:
            assert SCHEMA_VERSION in client.server_versions
            assert client.server_version
            reply = client.raw_request({"v": 99, "op": "ping"})
            assert reply["error"]["code"] == ErrorCode.UNSUPPORTED_VERSION
            assert reply["error"]["details"]["supported"] == [1]

    def test_explain_is_served_remotely(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        with DatalogClient(*server.address) as client:
            assert "scan r(X)" in client.explain()

    def test_lint_spans_survive_the_wire_one_based(self, tcp):
        program = "bad(X) :- r(Y).\nsuffix(X[N:end]) :- r(X).\n"
        server = tcp(program, {"r": ["ab"]})
        local = SequenceDatalogEngine(program).lint()
        with DatalogClient(*server.address) as client:
            remote = client.lint()
            # The full report — codes, severities, messages, hints AND
            # 1-based spans — is exactly what lint() returns in-process.
            assert remote == local
            spans = [d.span for d in remote if d.span is not None]
            assert spans and all(
                span.line >= 1 and span.column >= 1 for span in spans
            )
            first = remote.by_code("SDL-E103")[0]
            assert (first.span.line, first.span.column) == (1, 1)
            assert (first.span.end_line, first.span.end_column) == (1, 6)

    def test_lint_patterns_are_checked_remotely(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        with DatalogClient(*server.address) as client:
            clean = client.lint()
            assert not clean.has_errors()
            report = client.lint(patterns=["suffix(X, Y)"])
            conflict = report.by_code("SDL-E102")
            assert len(conflict) == 1 and conflict[0].predicate == "suffix"
            report = client.lint(patterns=["suffix(X"])
            assert report.by_code("SDL-E100")

    def test_lint_wire_payload_shape(self, tcp):
        server = tcp("bad(X) :- r(Y).", {"r": ["ab"]})
        with DatalogClient(*server.address) as client:
            reply = client.raw_request({"v": 1, "op": "lint"})
            assert reply["ok"] is True and reply["kind"] == "lint"
            assert reply["counts"]["error"] == 1
            first = reply["diagnostics"][0]
            assert first["code"] == "SDL-E103"
            assert first["span"] == {
                "line": 1, "column": 1, "end_line": 1, "end_column": 6,
            }

    def test_pages_are_labeled_with_the_generation_they_read(self, tcp):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        with DatalogClient(*server.address) as client:
            assert client.query("suffix(X)").generation == 0
            client.add_fact("r", "mnp")
            page = client.query("suffix(X)", page_size=2)
            assert page.generation == 1
            # Every page of a batch reads (and is labeled with) one snapshot.
            results = client.query_batch(["r(X)", "suffix(X)"])
            assert {result.generation for result in results} == {1}

    def test_oversized_reply_becomes_a_typed_error_not_a_dead_connection(self):
        # A page whose JSON exceeds the frame cap must come back as a
        # protocol_error reply — and the connection must keep serving.
        strand = "abcdefghijklmnopqrstuvwxyz012345"
        with serve_tcp(
            SUFFIX_PROGRAM, {"r": [strand]}, port=0, max_frame_bytes=512,
        ) as server:
            with DatalogClient(*server.address) as client:
                with pytest.raises(ProtocolError, match="paginate"):
                    client.query("suffix(X)")
                # Same connection, small result: still alive.
                assert client.query("r(X)").total_rows == 1
                # Small pages fit under the cap, so streaming still works.
                assert len(list(client.query_iter("suffix(X)", page_size=2))) == 33

    def test_malformed_inbound_frame_gets_a_protocol_error_reply(self, tcp):
        # A peer that breaks the framing must receive one typed
        # protocol_error envelope before the connection is dropped.
        import socket as socket_module

        server = tcp(SUFFIX_PROGRAM, {"r": ["ab"]})
        with socket_module.create_connection(server.address, timeout=10) as raw:
            reader = raw.makefile("rb")
            raw.sendall(b"notdigits\n")
            reply = recv_json(reader)
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.PROTOCOL
            # The stream position is unknowable after a bad frame: the
            # server then closes the connection.
            assert reader.readline() == b""

    def test_undeliverable_replies_do_not_leak_cursors(self):
        # Every oversized reply used to orphan its freshly-registered
        # cursor; after max_open_cursors (64) failures the connection
        # permanently rejected paged queries.
        strand = "abcdefghijklmnopqrstuvwxyz012345"
        with serve_tcp(
            SUFFIX_PROGRAM, {"r": [strand]}, port=0, max_frame_bytes=512,
        ) as server:
            with DatalogClient(*server.address) as client:
                for _ in range(70):
                    with pytest.raises(ProtocolError):
                        # page_size 20: paged (cursor registered) AND the
                        # first page's frame still exceeds the 512-byte cap.
                        client.query("suffix(X)", page_size=20)
                # Paged queries must still work on this connection.
                assert len(list(client.query_iter("suffix(X)", page_size=2))) == 33


# ----------------------------------------------------------------------
# serve_tcp plumbing
# ----------------------------------------------------------------------
class TestTransportPlumbing:
    def test_parse_address_forms(self):
        assert parse_address("127.0.0.1:4321") == ("127.0.0.1", 4321)
        assert parse_address(":4321") == ("127.0.0.1", 4321)
        assert parse_address("4321") == ("127.0.0.1", 4321)
        with pytest.raises(ProtocolError):
            parse_address("nope")
        with pytest.raises(ProtocolError):
            parse_address(":70000")

    def test_serve_tcp_rejects_options_with_an_existing_server(self):
        backend = DatalogServer(SUFFIX_PROGRAM, {"r": ["ab"]})
        try:
            with pytest.raises(ProtocolError):
                serve_tcp(backend, {"r": ["cd"]})
        finally:
            backend.close()

    def test_serve_tcp_does_not_close_a_handed_in_backend(self):
        backend = DatalogServer(SUFFIX_PROGRAM, {"r": ["ab"]})
        try:
            with serve_tcp(backend, port=0) as server:
                with DatalogClient(*server.address) as client:
                    assert client.query("r(X)").total_rows == 1
            # The transport is gone; the backend must still serve.
            assert len(backend.query("r(X)")) == 1
        finally:
            backend.close()

    def test_engine_facade_serves_tcp(self):
        engine = SequenceDatalogEngine(SUFFIX_PROGRAM)
        with engine.serve_tcp(database={"r": ["abc"]}) as server:
            with DatalogClient(*server.address) as client:
                assert ("bc",) in client.query("suffix(X)").rows


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliApi:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "p.sdl"
        path.write_text(SUFFIX_PROGRAM + "\n")
        return str(path)

    @pytest.fixture
    def database_file(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"r": ["abc"]}))
        return str(path)

    def serve(self, program_file, database_file, tmp_path, script, *flags):
        path = tmp_path / "commands.txt"
        path.write_text(script)
        out = io.StringIO()
        code = main(
            ["serve", program_file, "--db", database_file, "--script", str(path)]
            + list(flags),
            out=out,
        )
        return code, out.getvalue()

    def test_json_mode_emits_structured_errors_with_line_numbers(
        self, program_file, database_file, tmp_path
    ):
        script = "query suffix(X)\nbogus\nadd r\nquery suffix(\nquit\n"
        code, output = self.serve(
            program_file, database_file, tmp_path, script, "--json"
        )
        assert code == 1  # malformed input lines => non-zero exit
        replies = [json.loads(line) for line in output.strip().splitlines()]
        assert all(reply["v"] == 1 for reply in replies)
        by_line = {reply["line"]: reply for reply in replies}
        assert by_line[1]["kind"] == "query_result" and by_line[1]["total_rows"] == 4
        assert by_line[2]["error"]["code"] == ErrorCode.BAD_REQUEST
        assert "unknown command" in by_line[2]["error"]["message"]
        assert by_line[3]["error"]["code"] == ErrorCode.BAD_REQUEST
        assert by_line[4]["error"]["code"] == ErrorCode.PARSE

    def test_json_mode_clean_run_exits_zero(
        self, program_file, database_file, tmp_path
    ):
        script = "query suffix(X)\nadd r xyz\nstats\nquit\n"
        code, output = self.serve(
            program_file, database_file, tmp_path, script, "--json"
        )
        assert code == 0
        kinds = [json.loads(line)["kind"] for line in output.strip().splitlines()]
        assert kinds == ["query_result", "add_facts", "stats"]

    def test_json_stats_is_schema_stable(
        self, program_file, database_file, tmp_path
    ):
        code, output = self.serve(
            program_file, database_file, tmp_path, "stats\n", "--json"
        )
        assert code == 0
        stats = json.loads(output.strip().splitlines()[-1])
        for key in (
            "v", "kind", "facts", "base_facts", "predicates", "queries_served",
            "maintenance_runs", "poisoned", "generation", "workers",
        ):
            assert key in stats, key

    def test_tcp_script_mode_runs_end_to_end(
        self, program_file, database_file, tmp_path
    ):
        script = 'query suffix(X)\nadd r xyz\nquery suffix("yz")\nquit\n'
        code, output = self.serve(
            program_file, database_file, tmp_path, script, "--tcp", ":0"
        )
        assert code == 0
        assert "schema v1" in output
        lines = output.splitlines()
        assert "abc" in lines and "yz" in lines
        assert "% +4 facts (1 base)" in output

    def test_text_mode_prints_rows_sorted_like_the_old_loop(
        self, tmp_path, database_file
    ):
        # Historical contract: the serve loop printed result.texts()
        # (sorted); paged execution must not regress that.
        program = tmp_path / "p2.sdl"
        program.write_text(SUFFIX_PROGRAM + "\n")
        db = tmp_path / "db2.json"
        db.write_text(json.dumps({"r": ["cab"]}))
        code, output = self.serve(str(program), str(db), tmp_path, "query suffix(X)\n")
        assert code == 0
        lines = output.splitlines()
        assert lines[0].startswith("% serving")
        assert lines[1:5] == ["", "ab", "b", "cab"]

    def test_tcp_script_json_mode_is_pure_json(
        self, program_file, database_file, tmp_path
    ):
        script = "query suffix(X)\nadd r xyz\nstats\nquit\n"
        code, output = self.serve(
            program_file, database_file, tmp_path, script, "--tcp", ":0", "--json"
        )
        assert code == 0
        replies = [json.loads(line) for line in output.strip().splitlines()]
        assert [reply["kind"] for reply in replies] == [
            "query_result", "add_facts", "stats",
        ]

    def test_tcp_rejects_demand(self, program_file, database_file, tmp_path):
        code, output = self.serve(
            program_file, database_file, tmp_path, "quit\n", "--tcp", ":0", "--demand"
        )
        assert code == 1
        assert "drop --demand" in output

    def test_client_subcommand_against_live_server(
        self, program_file, database_file, tmp_path, tcp
    ):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        host, port = server.address
        path = tmp_path / "commands.txt"
        path.write_text("query suffix(X)\nadd r qq\nstats\nquit\n")
        out = io.StringIO()
        code = main(
            ["client", f"{host}:{port}", "--script", str(path)], out=out
        )
        assert code == 0
        lines = out.getvalue().splitlines()
        assert "abc" in lines
        assert "% 4 answers" in lines
        assert "% +3 facts (1 base)" in out.getvalue()
        stats = json.loads(out.getvalue().strip().splitlines()[-1])
        assert stats["generation"] == 1

    def test_client_subcommand_json_mode(
        self, program_file, database_file, tmp_path, tcp
    ):
        server = tcp(SUFFIX_PROGRAM, {"r": ["abc"]})
        host, port = server.address
        path = tmp_path / "commands.txt"
        path.write_text("query suffix(X)\nbogus\nquit\n")
        out = io.StringIO()
        code = main(
            ["client", f"{host}:{port}", "--script", str(path), "--json"], out=out
        )
        assert code == 1
        replies = [json.loads(line) for line in out.getvalue().strip().splitlines()]
        assert replies[0]["kind"] == "query_result"
        assert replies[1]["error"]["code"] == ErrorCode.BAD_REQUEST

    def test_client_connection_refused_is_reported(self, tmp_path):
        out = io.StringIO()
        code = main(["client", "127.0.0.1:1", "--timeout", "0.5"], out=out)
        assert code == 1
        assert "error:" in out.getvalue()

    def test_run_json_emits_a_typed_page(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)",
             "--json"],
            out=out,
        )
        assert code == 0
        page = json.loads(out.getvalue())
        assert page["v"] == 1 and page["kind"] == "query_result"
        assert sorted(row[0] for row in page["rows"]) == ["", "abc", "bc", "c"]

    def test_run_rejects_blank_query_with_field_error(
        self, program_file, database_file
    ):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "   "], out=out
        )
        assert code == 1
        assert "pattern" in out.getvalue()

    def test_run_json_errors_are_structured(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "bad((",
             "--json"],
            out=out,
        )
        assert code == 1
        envelope = json.loads(out.getvalue())
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == ErrorCode.PARSE