"""Tests for the rs-operations baseline (extractors and mergers, Section 1.1).

These check that the implemented operations behave as the proposal of [16]
intends -- pattern matching with shared variables, fixed-size merging -- and
that the limitation the paper emphasises is visible: no rs-operation here
can compute the reverse or the complement of a sequence, because the output
of an extractor or merger is a concatenation of *factors of its inputs* (and
literals), never a symbol-by-symbol recoding.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.rs_operations import (
    Extractor,
    Merger,
    Pattern,
    concatenation_merger,
    literal,
    prefix_extractor,
    square_merger,
    suffix_extractor,
    tandem_repeat_extractor,
    variable,
)
from repro.errors import ValidationError
from repro.sequences import Sequence


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
class TestPattern:
    def test_empty_pattern_is_rejected(self):
        with pytest.raises(ValidationError):
            Pattern([])

    def test_literal_pattern_matches_exactly(self):
        pattern = Pattern([literal("ab")])
        assert list(pattern.matches("ab")) == [{}]
        assert list(pattern.matches("abc")) == []

    def test_single_variable_matches_whole_sequence(self):
        pattern = Pattern([variable("X")])
        assert list(pattern.matches("abc")) == [{"X": "abc"}]

    def test_shared_variable_forces_equal_factors(self):
        pattern = Pattern([variable("X"), literal("b"), variable("X")])
        assert {frozenset(b.items()) for b in pattern.matches("aba")} == {
            frozenset({("X", "a")})
        }
        assert list(pattern.matches("abc")) == []

    def test_two_variables_enumerate_all_splits(self):
        pattern = Pattern([variable("X"), variable("Y")])
        bindings = list(pattern.matches("ab"))
        assert {(b["X"], b["Y"]) for b in bindings} == {
            ("", "ab"), ("a", "b"), ("ab", ""),
        }

    def test_prebound_variable_is_respected(self):
        pattern = Pattern([variable("X"), variable("Y")])
        bindings = list(pattern.matches("ab", {"X": "a"}))
        assert bindings == [{"X": "a", "Y": "b"}]

    def test_instantiate_requires_all_variables(self):
        pattern = Pattern([variable("X"), literal("-"), variable("Y")])
        assert pattern.instantiate({"X": "a", "Y": "b"}) == Sequence("a-b")
        with pytest.raises(ValidationError):
            pattern.instantiate({"X": "a"})

    def test_variables_listed_in_first_occurrence_order(self):
        pattern = Pattern([variable("B"), variable("A"), variable("B")])
        assert pattern.variables() == ["B", "A"]

    def test_str_round_trips_the_shape(self):
        pattern = Pattern([variable("X"), literal("ab")])
        assert str(pattern) == 'X . "ab"'

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_every_match_reassembles_the_input(self, word):
        pattern = Pattern([variable("X"), variable("Y"), variable("Z")])
        for bindings in pattern.matches(word):
            assert bindings["X"] + bindings["Y"] + bindings["Z"] == word


# ----------------------------------------------------------------------
# Extractors
# ----------------------------------------------------------------------
class TestExtractor:
    def test_output_variables_must_be_bound(self):
        with pytest.raises(ValidationError):
            Extractor(Pattern([variable("X")]), Pattern([variable("Y")]))

    def test_framed_middle_extraction(self):
        framed = Extractor(
            Pattern([literal("<"), variable("X"), literal(">")]),
            Pattern([variable("X")]),
        )
        assert framed.apply("<abc>") == {Sequence("abc")}
        assert framed.apply("abc") == set()

    def test_suffix_extractor_matches_example_1_1(self):
        extractor = suffix_extractor()
        assert {s.text for s in extractor.apply("abc")} == {"", "c", "bc", "abc"}

    def test_prefix_extractor(self):
        extractor = prefix_extractor()
        assert {s.text for s in extractor.apply("ab")} == {"", "a", "ab"}

    def test_apply_relation_unions_results(self):
        extractor = suffix_extractor()
        results = extractor.apply_relation(["ab", "c"])
        assert {s.text for s in results} == {"", "b", "ab", "c"}

    def test_tandem_repeat_detection(self):
        extractor = tandem_repeat_extractor()
        repeats = {s.text for s in extractor.apply("abab")} - {""}
        assert repeats == {"ab"}
        assert {s.text for s in extractor.apply("abc")} - {""} == set()

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=7))
    def test_extracted_suffixes_are_real_suffixes(self, word):
        extractor = suffix_extractor()
        for result in extractor.apply(word):
            assert word.endswith(result.text)

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_no_extractor_output_contains_new_symbols(self, word):
        """Every output symbol comes from the input or a pattern literal --
        the structural reason the safe fragment of [16] cannot express
        complementation."""
        extractor = suffix_extractor()
        for result in extractor.apply(word):
            assert set(result.text) <= set(word)


# ----------------------------------------------------------------------
# Mergers
# ----------------------------------------------------------------------
class TestMerger:
    def test_arity_is_checked(self):
        merger = concatenation_merger()
        with pytest.raises(ValidationError):
            merger.apply("a")

    def test_concatenation_merger_matches_example_1_2(self):
        merger = concatenation_merger()
        assert merger.apply("ab", "c") == {Sequence("abc")}

    def test_apply_relation_builds_all_pairs(self):
        merger = concatenation_merger()
        results = {s.text for s in merger.apply_relation(["a", "b"], ["x"])}
        assert results == {"ax", "bx"}

    def test_square_merger_doubles(self):
        merger = square_merger()
        assert merger.apply("ab") == {Sequence("abab")}

    def test_shared_variables_across_inputs_join(self):
        # Merge pairs (X, X ++ Y) into Y: "difference" by shared prefix.
        merger = Merger(
            input_patterns=[
                Pattern([variable("X")]),
                Pattern([variable("X"), variable("Y")]),
            ],
            output_pattern=Pattern([variable("Y")]),
            name="strip_prefix",
        )
        assert merger.apply("ab", "abcd") == {Sequence("cd")}
        assert merger.apply("zz", "abcd") == set()

    def test_output_variables_must_come_from_some_input(self):
        with pytest.raises(ValidationError):
            Merger(
                input_patterns=[Pattern([variable("X")])],
                output_pattern=Pattern([variable("Z")]),
            )

    def test_merger_needs_at_least_one_input_pattern(self):
        with pytest.raises(ValidationError):
            Merger(input_patterns=[], output_pattern=Pattern([literal("a")]))

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=5), st.text(alphabet="ab", max_size=5))
    def test_concatenation_merger_agrees_with_python(self, first, second):
        merger = concatenation_merger()
        assert merger.apply(first, second) == {Sequence(first + second)}

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="01", min_size=1, max_size=6))
    def test_no_merger_here_computes_the_complement(self, word):
        """The paper's point: rs-operations rearrange factors, so the binary
        complement (which rewrites every symbol) is not produced by any of
        the ready-made operations on any non-degenerate input."""
        complement = word.translate(str.maketrans("01", "10"))
        for operation in (concatenation_merger(), square_merger()):
            outputs = (
                operation.apply(word, word)
                if operation.arity == 2
                else operation.apply(word)
            )
            if complement != word and complement not in {o.text for o in outputs}:
                continue
            # The only way the complement can appear is the degenerate case
            # where it equals a concatenation of copies of the input.
            assert set(complement) <= set(word)
