"""Tests for alphabets and extended active domains (Definitions 2-3, Lemma 1)."""

import pytest

from repro.errors import AlphabetError
from repro.sequences import (
    Alphabet,
    DNA_ALPHABET,
    ExtendedDomain,
    RNA_ALPHABET,
    Sequence,
    extension_of,
)


class TestAlphabet:
    def test_symbols_preserve_order_and_deduplicate(self):
        assert Alphabet("abca").symbols == ("a", "b", "c")

    def test_membership(self):
        assert "a" in DNA_ALPHABET
        assert "u" not in DNA_ALPHABET
        assert "u" in RNA_ALPHABET

    def test_index(self):
        assert Alphabet("acgt").index("g") == 2

    def test_index_of_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("ab").index("z")

    def test_multi_character_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab"])

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_validate_word(self):
        DNA_ALPHABET.validate_word("acgt")
        with pytest.raises(AlphabetError):
            DNA_ALPHABET.validate_word("acgu")

    def test_union(self):
        assert set(Alphabet("ab").union(Alphabet("bc")).symbols) == {"a", "b", "c"}

    def test_equality_and_hash(self):
        assert Alphabet("ab") == Alphabet("ab")
        assert hash(Alphabet("ab")) == hash(Alphabet("ab"))
        assert Alphabet("ab") != Alphabet("ba")


class TestExtendedDomain:
    def test_contains_all_contiguous_subsequences(self):
        domain = ExtendedDomain(["abc"])
        for fragment in ["", "a", "b", "c", "ab", "bc", "abc"]:
            assert Sequence(fragment) in domain
        assert Sequence("ac") not in domain

    def test_integer_part_is_zero_to_lmax_plus_one(self):
        domain = ExtendedDomain(["abc"])
        assert list(domain.integers()) == [0, 1, 2, 3, 4]
        assert 4 in domain
        assert 5 not in domain

    def test_empty_domain_contains_epsilon(self):
        domain = ExtendedDomain()
        assert Sequence("") in domain
        assert list(domain.integers()) == [0, 1]

    def test_add_returns_growth_flag(self):
        domain = ExtendedDomain(["ab"])
        assert domain.add("abc") is True
        assert domain.add("abc") is False
        assert domain.add("b") is False  # already present as a subsequence

    def test_max_length_tracks_longest_sequence(self):
        domain = ExtendedDomain(["ab"])
        assert domain.max_length == 2
        domain.add("abcde")
        assert domain.max_length == 5

    def test_lemma_1_monotonicity(self):
        """If I1 ⊆ I2 then Dext(I1) ⊆ Dext(I2)."""
        small = ExtendedDomain(["ab"])
        large = ExtendedDomain(["ab", "xyz"])
        for sequence in small.sequences():
            assert sequence in large

    def test_lemma_1_union(self):
        """The extension of a union is the union of the extensions."""
        union = ExtendedDomain(["ab", "cd"])
        separate = set(ExtendedDomain(["ab"]).sequences()) | set(
            ExtendedDomain(["cd"]).sequences()
        )
        assert set(union.sequences()) == separate

    def test_copy_is_independent(self):
        domain = ExtendedDomain(["ab"])
        clone = domain.copy()
        clone.add("xyz")
        assert Sequence("xyz") not in domain

    def test_sorted_sequences_is_stable(self):
        domain = ExtendedDomain(["ba"])
        assert [s.text for s in domain.sorted_sequences()] == ["", "a", "b", "ba"]

    def test_extension_of_helper(self):
        assert extension_of(["ab"]) == ExtendedDomain(["ab"])

    def test_size_counts_sequences_not_integers(self):
        assert len(ExtendedDomain(["abc"])) == 7
