"""Tests for the Turing machine substrate and both compilers (Theorems 1, 5)."""

import pytest

from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.query import output_relation
from repro.errors import TuringMachineError
from repro.turing import TuringMachine, machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog, strip_blanks
from repro.turing.compile_to_network import compile_tm_to_network
from repro.turing.machine import LEFT, LEFT_END, RIGHT

TM_LIMITS = EvaluationLimits(
    max_iterations=400, max_facts=100_000, max_domain_size=100_000,
    max_sequence_length=500,
)


class TestTuringMachineModel:
    def test_identity(self):
        machine = machines.identity_machine()
        assert machine.compute("0101").text == "0101"

    def test_complement(self):
        machine = machines.complement_machine()
        assert machine.compute("0110").text == "1001"

    def test_increment_lsb_first(self):
        machine = machines.increment_machine()
        assert machine.compute("110").text == "001"   # 3 -> 4
        assert machine.compute("111").text == "0001"  # 7 -> 8
        assert machine.compute("").text == "1"        # 0 -> 1

    def test_erase(self):
        machine = machines.erase_machine()
        assert machine.compute("0101").text == ""

    def test_looping_machine_exceeds_step_limit(self):
        machine = machines.looping_machine()
        with pytest.raises(TuringMachineError):
            machine.run("01", max_steps=100)
        assert not machine.halts_on("01", max_steps=100)

    def test_unknown_input_symbol_rejected(self):
        with pytest.raises(TuringMachineError):
            machines.complement_machine().run("012")

    def test_validation_rejects_overwriting_the_left_marker(self):
        with pytest.raises(TuringMachineError):
            TuringMachine(
                name="bad",
                input_alphabet="0",
                initial_state="q",
                halting_states={"h"},
                transitions={("q", LEFT_END): ("h", "0", RIGHT)},
            )

    def test_validation_rejects_moving_left_of_the_marker(self):
        with pytest.raises(TuringMachineError):
            TuringMachine(
                name="bad",
                input_alphabet="0",
                initial_state="q",
                halting_states={"h"},
                transitions={("q", LEFT_END): ("h", LEFT_END, LEFT)},
            )

    def test_validation_rejects_transitions_out_of_halting_states(self):
        with pytest.raises(TuringMachineError):
            TuringMachine(
                name="bad",
                input_alphabet="0",
                initial_state="q",
                halting_states={"q"},
                transitions={("q", "0"): ("q", "0", RIGHT)},
            )

    def test_run_metadata(self):
        run = machines.identity_machine().run("01")
        assert run.halted
        assert run.steps == 4  # marker + two symbols + blank
        assert run.final_tape.startswith(LEFT_END)


class TestTheorem1Compiler:
    """Sequence Datalog expresses every computable sequence function."""

    @pytest.mark.parametrize(
        "factory, word",
        [
            (machines.increment_machine, "110"),
            (machines.increment_machine, ""),
            (machines.complement_machine, "010"),
            (machines.identity_machine, "01"),
            (machines.erase_machine, "01"),
        ],
    )
    def test_compiled_program_computes_the_machine_function(self, factory, word):
        machine = factory()
        program = compile_tm_to_sequence_datalog(machine)
        database = SequenceDatabase.single_input(word)
        result = compute_least_fixpoint(program, database, limits=TM_LIMITS)
        outputs = {strip_blanks(o, machine) for o in output_relation(result.interpretation)}
        assert outputs == {machine.compute(word).text}

    def test_configurations_are_derived_as_conf_facts(self):
        machine = machines.identity_machine()
        program = compile_tm_to_sequence_datalog(machine)
        result = compute_least_fixpoint(
            program, SequenceDatabase.single_input("0"), limits=TM_LIMITS
        )
        assert result.interpretation.tuples("conf")

    def test_custom_predicate_names(self):
        machine = machines.complement_machine()
        program = compile_tm_to_sequence_datalog(
            machine, input_predicate="word", output_predicate="result",
            conf_predicate="cfg",
        )
        db = SequenceDatabase.from_dict({"word": ["01"]})
        result = compute_least_fixpoint(program, db, limits=TM_LIMITS)
        outputs = {strip_blanks(o, machine) for o in output_relation(result.interpretation, "result")}
        assert outputs == {"10"}

    def test_one_rule_per_transition_plus_bookkeeping(self):
        machine = machines.complement_machine()
        program = compile_tm_to_sequence_datalog(machine)
        # 1 initial rule + 4 transitions + 2 output rules.
        assert len(program) == 1 + len(machine.transitions) + 2


class TestTheorem5Compiler:
    """Order-2 networks express the PTIME sequence functions."""

    # The network simulation cost grows ~10x per input symbol, so the word
    # lists stay at length <= 4; that already exercises multi-symbol runs,
    # the counter stages and the decode stage of the construction.
    @pytest.mark.slow
    @pytest.mark.parametrize(
        "factory, words",
        [
            (machines.complement_machine, ["01", "110", "1100"]),
            (machines.identity_machine, ["01", "0101"]),
            (machines.increment_machine, ["11", "010"]),
            (machines.erase_machine, ["0101"]),
        ],
    )
    def test_network_computes_the_machine_function(self, factory, words):
        machine = factory()
        network = compile_tm_to_network(machine, time_exponent=1)
        for word in words:
            assert network.compute_function(word) == machine.compute(word)

    def test_network_has_order_2(self):
        network = compile_tm_to_network(machines.complement_machine())
        assert network.order == 2

    def test_network_structure(self):
        network = compile_tm_to_network(machines.complement_machine())
        names = set(network.nodes)
        assert {"init", "sim", "decode"} <= names
        assert any(name.startswith("counter") for name in names)
        assert network.diameter >= 3

    def test_invalid_time_exponent_rejected(self):
        with pytest.raises(TuringMachineError):
            compile_tm_to_network(machines.complement_machine(), time_exponent=0)
