"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import load_database_json, main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "suffixes.sdl"
    path.write_text("suffix(X[N:end]) :- r(X).\n")
    return str(path)


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(json.dumps({"r": ["abc"], "pairs": [["a", "b"]]}))
    return str(path)


class TestDatabaseLoading:
    def test_strings_and_tuples(self, database_file):
        database = load_database_json(database_file)
        assert ("abc",) in database.relation("r")
        assert ("a", "b") in database.relation("pairs")


class TestCommands:
    def test_run_prints_answers_and_summary(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)"],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert "abc" in lines
        assert lines[-1].startswith("% 4 answers")

    def test_run_with_naive_strategy(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)",
             "--strategy", "naive"],
            out=out,
        )
        assert code == 0

    def test_run_with_compiled_strategy(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)",
             "--strategy", "compiled"],
            out=out,
        )
        assert code == 0
        assert "% 4 answers" in out.getvalue()

    def test_explain_prints_plans_and_strata(self, program_file):
        out = io.StringIO()
        code = main(["explain", program_file], out=out)
        assert code == 0
        report = out.getvalue()
        assert "stratum 1" in report
        assert "clause: suffix(X[N:end]) :- r(X)." in report
        assert "scan r(X)" in report

    def test_analyze_reports_finiteness(self, program_file):
        out = io.StringIO()
        code = main(["analyze", program_file], out=out)
        assert code == 0
        assert "non-constructive" in out.getvalue()

    def test_parse_pretty_prints(self, program_file):
        out = io.StringIO()
        code = main(["parse", program_file], out=out)
        assert code == 0
        assert "suffix(X[N:end]) :- r(X)." in out.getvalue()

    def test_parse_error_yields_exit_code_1(self, tmp_path):
        bad = tmp_path / "bad.sdl"
        bad.write_text("p(X :- q(X).")
        out = io.StringIO()
        assert main(["parse", str(bad)], out=out) == 1
        assert "error:" in out.getvalue()

    def test_missing_file_yields_exit_code_1(self):
        out = io.StringIO()
        assert main(["parse", "/nonexistent/prog.sdl"], out=out) == 1
