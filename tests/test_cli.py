"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import load_database_json, main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "suffixes.sdl"
    path.write_text("suffix(X[N:end]) :- r(X).\n")
    return str(path)


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(json.dumps({"r": ["abc"], "pairs": [["a", "b"]]}))
    return str(path)


class TestDatabaseLoading:
    def test_strings_and_tuples(self, database_file):
        database = load_database_json(database_file)
        assert ("abc",) in database.relation("r")
        assert ("a", "b") in database.relation("pairs")

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"r": [[]]}, "empty row"),
            ({"r": [5]}, "row 5"),
            ({"r": [["a", 7]]}, "non-string value 7"),
            ({"r": "abc"}, "expected a list of rows"),
            ([1, 2], "must be an object"),
        ],
    )
    def test_malformed_json_reports_relation_and_row(self, tmp_path, payload, fragment):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        from repro.errors import ValidationError

        with pytest.raises(ValidationError) as excinfo:
            load_database_json(str(path))
        assert fragment in str(excinfo.value)

    def test_malformed_json_yields_exit_code_1(self, tmp_path, program_file):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"r": [[]]}))
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", str(path), "--query", "suffix(X)"],
            out=out,
        )
        assert code == 1
        assert "error: relation 'r'" in out.getvalue()


class TestCommands:
    def test_run_prints_answers_and_summary(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)"],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert "abc" in lines
        assert lines[-1].startswith("% 4 answers")

    def test_run_with_naive_strategy(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)",
             "--strategy", "naive"],
            out=out,
        )
        assert code == 0

    def test_run_with_compiled_strategy(self, program_file, database_file):
        out = io.StringIO()
        code = main(
            ["run", program_file, "--db", database_file, "--query", "suffix(X)",
             "--strategy", "compiled"],
            out=out,
        )
        assert code == 0
        assert "% 4 answers" in out.getvalue()

    def test_explain_prints_plans_and_strata(self, program_file):
        out = io.StringIO()
        code = main(["explain", program_file], out=out)
        assert code == 0
        report = out.getvalue()
        assert "stratum 1" in report
        assert "clause: suffix(X[N:end]) :- r(X)." in report
        assert "scan r(X)" in report

    def test_analyze_reports_finiteness(self, program_file):
        out = io.StringIO()
        code = main(["analyze", program_file], out=out)
        assert code == 0
        assert "non-constructive" in out.getvalue()

    def test_parse_pretty_prints(self, program_file):
        out = io.StringIO()
        code = main(["parse", program_file], out=out)
        assert code == 0
        assert "suffix(X[N:end]) :- r(X)." in out.getvalue()

    def test_parse_error_yields_exit_code_1(self, tmp_path):
        bad = tmp_path / "bad.sdl"
        bad.write_text("p(X :- q(X).")
        out = io.StringIO()
        assert main(["parse", str(bad)], out=out) == 1
        assert "error:" in out.getvalue()

    def test_missing_file_yields_exit_code_1(self):
        out = io.StringIO()
        assert main(["parse", "/nonexistent/prog.sdl"], out=out) == 1


class TestServeCommand:
    def _serve(self, program_file, database_file, tmp_path, script):
        path = tmp_path / "commands.txt"
        path.write_text(script)
        out = io.StringIO()
        code = main(
            ["serve", program_file, "--db", database_file, "--script", str(path)],
            out=out,
        )
        return code, out.getvalue()

    def test_query_and_summary(self, program_file, database_file, tmp_path):
        code, output = self._serve(
            program_file, database_file, tmp_path, "? suffix(X)\nquit\n"
        )
        assert code == 0
        lines = output.strip().splitlines()
        assert "abc" in lines
        assert "% 4 answers" in lines

    def test_incremental_add_is_served_by_later_queries(
        self, program_file, database_file, tmp_path
    ):
        script = (
            "# add a strand, then query a suffix only it has\n"
            "add r xyz\n"
            'query suffix("yz")\n'
        )
        code, output = self._serve(program_file, database_file, tmp_path, script)
        assert code == 0
        assert "% +4 facts (1 base)" in output
        assert "yz" in output.splitlines()

    def test_add_accepts_quoted_values(self, program_file, database_file, tmp_path):
        # Quoted values mirror the query syntax: the stored sequence must
        # not contain the quote marks.
        script = 'add r "qv"\nquery suffix("v")\nquery r(X)\n'
        code, output = self._serve(program_file, database_file, tmp_path, script)
        assert code == 0
        lines = output.splitlines()
        assert "v" in lines
        assert "qv" in lines
        assert '"qv"' not in lines

    def test_add_quoted_value_with_space_stays_one_value(
        self, program_file, database_file, tmp_path
    ):
        script = 'add r "a b"\nquery r("a b")\nadd r nospace\nquery r(X)\n'
        code, output = self._serve(program_file, database_file, tmp_path, script)
        assert code == 0
        lines = output.splitlines()
        assert "a b" in lines  # stored as a single arity-1 fact
        # The relation's arity was not poisoned: a later plain add works.
        assert "nospace" in lines
        assert "error:" not in output

    def test_add_with_unbalanced_quote_reports_and_continues(
        self, program_file, database_file, tmp_path
    ):
        script = 'add r "broken\nquery r(X)\n'
        code, output = self._serve(program_file, database_file, tmp_path, script)
        assert code == 0
        assert "error:" in output
        assert "% 1 answers" in output  # the session kept serving

    def test_stats_reports_model_and_cache(self, program_file, database_file, tmp_path):
        code, output = self._serve(
            program_file, database_file, tmp_path, "stats\n"
        )
        assert code == 0
        stats = json.loads(output.strip().splitlines()[-1])
        assert stats["facts"] > 0
        assert stats["prepared_cache"]["capacity"] == 128

    def test_errors_do_not_end_the_session(
        self, program_file, database_file, tmp_path
    ):
        script = "bogus\nadd r\nquery suffix(\nquery r(X)\n"
        code, output = self._serve(program_file, database_file, tmp_path, script)
        assert code == 0
        assert "error: unknown command 'bogus'" in output
        assert "error: add needs a relation" in output
        # The parse error is reported, then the next command still runs.
        assert output.count("error:") == 3
        assert "% 1 answers" in output


class TestParallelAndServerFlags:
    def test_run_parallel_strategy_matches_compiled(
        self, program_file, database_file
    ):
        compiled_out, parallel_out = io.StringIO(), io.StringIO()
        base = ["run", program_file, "--db", database_file, "--query", "suffix(X)"]
        assert main(base, out=compiled_out) == 0
        assert (
            main(base + ["--strategy", "parallel", "--workers", "2"], out=parallel_out)
            == 0
        )
        def answers(output):
            return [
                line
                for line in output.getvalue().splitlines()
                if not line.startswith("%")
            ]

        assert answers(parallel_out) == answers(compiled_out)

    def _serve_workers(self, program_file, database_file, tmp_path, script):
        path = tmp_path / "commands.txt"
        path.write_text(script)
        out = io.StringIO()
        code = main(
            [
                "serve", program_file, "--db", database_file,
                "--script", str(path), "--workers", "2",
            ],
            out=out,
        )
        return code, out.getvalue()

    def test_serve_workers_queries_and_maintains(
        self, program_file, database_file, tmp_path
    ):
        script = 'query suffix(X)\nadd r xyz\nquery suffix("yz")\nstats\nquit\n'
        code, output = self._serve_workers(
            program_file, database_file, tmp_path, script
        )
        assert code == 0
        assert "server mode: 2 workers" in output
        lines = output.splitlines()
        assert "abc" in lines and "yz" in lines
        stats = json.loads(output.strip().splitlines()[-1])
        assert stats["server"]["generation"] == 1
        assert stats["server"]["workers"] == 2

    def test_serve_workers_result_cache_hits(
        self, program_file, database_file, tmp_path
    ):
        script = "query suffix(X)\nquery suffix(X)\nstats\n"
        code, output = self._serve_workers(
            program_file, database_file, tmp_path, script
        )
        assert code == 0
        stats = json.loads(output.strip().splitlines()[-1])
        assert stats["server"]["result_cache"]["hits"] == 1

    def test_serve_workers_rejects_demand(
        self, program_file, database_file, tmp_path
    ):
        path = tmp_path / "commands.txt"
        path.write_text("quit\n")
        out = io.StringIO()
        code = main(
            [
                "serve", program_file, "--db", database_file,
                "--script", str(path), "--workers", "2", "--demand",
            ],
            out=out,
        )
        assert code == 1
        assert "drop --demand" in out.getvalue()


class TestLintCommand:
    @pytest.fixture
    def bad_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.sdl").write_text("bad(X) :- r(Y).\n")
        return "bad.sdl"

    def test_human_output_has_caret_excerpts_and_exit_2(self, bad_file):
        out = io.StringIO()
        code = main(["lint", bad_file], out=out)
        assert code == 2
        text = out.getvalue()
        assert "bad.sdl:1:1: SDL-E103 error:" in text
        assert "    1 | bad(X) :- r(Y).\n      | ^^^^^^" in text
        assert "= hint: add a body atom that binds X" in text
        assert text.rstrip().endswith("4 diagnostics: 1 error, 1 warning, 1 perf, 1 hint")

    def test_json_output_carries_spans_and_exit_code(self, bad_file):
        out = io.StringIO()
        code = main(["lint", bad_file, "--json"], out=out)
        assert code == 2
        payload = json.loads(out.getvalue())
        assert payload["exit_code"] == 2
        assert payload["counts"] == {"error": 1, "warning": 1, "perf": 1, "hint": 1}
        first = payload["diagnostics"][0]
        assert first["code"] == "SDL-E103"
        assert first["span"] == {"line": 1, "column": 1, "end_line": 1, "end_column": 6}

    def test_clean_program_exits_zero(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.sdl").write_text("p(X) :- r(X).\n")
        out = io.StringIO()
        assert main(["lint", "ok.sdl"], out=out) == 0
        assert "clean: no diagnostics" in out.getvalue()

    def test_strict_gates_on_warnings_but_not_hints(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "warn.sdl").write_text("suffix(X[N:end]) :- r(X).\n")
        (tmp_path / "hint.sdl").write_text("p(X) :- r(X).\np(X) :- r(X).\n")
        assert main(["lint", "warn.sdl"], out=io.StringIO()) == 0
        assert main(["lint", "warn.sdl", "--strict"], out=io.StringIO()) == 1
        assert main(["lint", "hint.sdl", "--strict"], out=io.StringIO()) == 0

    def test_database_and_query_sharpen_the_rules(
        self, tmp_path, monkeypatch, database_file
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "undef.sdl").write_text("p(X) :- q(X).\n")
        out = io.StringIO()
        code = main(
            ["lint", "undef.sdl", "--db", database_file, "--query", "p(X, Y)"],
            out=out,
        )
        assert code == 2
        text = out.getvalue()
        assert "SDL-E101" in text and "'q'" in text
        assert "SDL-E102" in text  # p/2 pattern against p/1

    def test_unparsable_program_is_a_diagnostic_not_a_crash(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "broken.sdl").write_text("p(X :- q(X).\n")
        out = io.StringIO()
        assert main(["lint", "broken.sdl"], out=out) == 2
        assert "SDL-E100" in out.getvalue()


class TestAnalyzeJson:
    def test_json_payload_is_schema_stable(self, program_file):
        out = io.StringIO()
        code = main(["analyze", program_file, "--json"], out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["verdict"] == "FINITE_NON_CONSTRUCTIVE"
        assert payload["finite"] is True
        assert payload["strongly_safe"] is True
        assert payload["constructive_cycles"] == []

    def test_possibly_infinite_exits_nonzero(self, tmp_path):
        path = tmp_path / "rep2.sdl"
        path.write_text("rep2(X, X) :- true.\nrep2(X ++ Y, Y) :- rep2(X, Y).\n")
        out = io.StringIO()
        code = main(["analyze", str(path), "--json"], out=out)
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["verdict"] == "POSSIBLY_INFINITE"
        assert payload["finite"] is False
        assert payload["constructive_cycles"] == [["rep2"]]
        assert main(["analyze", str(path)], out=io.StringIO()) == 1


class TestExplainDiagnostics:
    def test_explain_appends_the_diagnostics_section(self, tmp_path):
        path = tmp_path / "bad.sdl"
        path.write_text("bad(X) :- r(Y).\n")
        out = io.StringIO()
        assert main(["explain", str(path)], out=out) == 0
        text = out.getvalue()
        assert "diagnostics:" in text
        assert "SDL-E103" in text
        assert text.index("stratum") < text.index("diagnostics:")


class TestWatchCommand:
    @pytest.fixture
    def live_server(self):
        from repro.live import serve_tcp_async

        server = serve_tcp_async(
            "suffix(X[N:end]) :- r(X).", {"r": ["abc"]}, port=0
        )
        try:
            yield server
        finally:
            server.close()

    def test_watch_count_streams_initial_then_delta(self, live_server):
        import threading
        import time

        from repro import DatalogClient

        def publish_once_anchored():
            deadline = time.monotonic() + 10
            while not live_server.live.stats()["active_subscriptions"]:
                assert time.monotonic() < deadline, "watch never anchored"
                time.sleep(0.01)
            with DatalogClient(*live_server.address) as writer:
                writer.add_facts([("r", ("xy",))])

        writer = threading.Thread(target=publish_once_anchored)
        writer.start()
        out = io.StringIO()
        address = f":{live_server.address[1]}"
        try:
            assert main(["watch", address, "suffix(X)", "--count", "2"], out=out) == 0
        finally:
            writer.join()
        text = out.getvalue()
        assert "% watching suffix(X)" in text
        assert "% initial: generation 0, 4 row(s)" in text
        assert "% delta: generation 1, 2 row(s)" in text
        body = [line for line in text.splitlines() if not line.startswith("%")]
        assert body == ["", "abc", "bc", "c", "xy", "y"]

    def test_watch_json_emits_versioned_delta_frames(self, live_server):
        out = io.StringIO()
        address = f":{live_server.address[1]}"
        assert main(["watch", address, "suffix(X)", "--json", "--count", "1"], out=out) == 0
        frame = json.loads(out.getvalue())
        assert frame["v"] == 1
        assert frame["kind"] == "subscription_delta"
        assert frame["initial"] is True
        assert sorted(frame["rows"]) == [[""], ["abc"], ["bc"], ["c"]]

    def test_watch_strict_refuses_unknown_predicates(self, live_server):
        out = io.StringIO()
        address = f":{live_server.address[1]}"
        code = main(["watch", address, "nosuch(X)", "--strict"], out=out)
        assert code == 1
        assert "nosuch" in out.getvalue()
