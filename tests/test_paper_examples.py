"""End-to-end checks: every numbered example of the paper, in one place.

Each test states the paper's own expected outcome and checks it against the
library.  Detailed per-module behaviour is covered elsewhere; this module is
the executable index of Section-by-Section claims (the per-experiment index
of DESIGN.md points here and to the benchmarks).
"""

import pytest

from repro import SequenceDatabase, TransducerDatalogProgram, compute_least_fixpoint
from repro.analysis import classify_finiteness, is_strongly_safe
from repro.core import paper_programs
from repro.engine import evaluate_query
from repro.engine.limits import EvaluationLimits
from repro.errors import FixpointNotReached
from repro.transducers import library


class TestSection1Examples:
    def test_example_1_1(self):
        """Suffixes of every sequence in r."""
        result = compute_least_fixpoint(
            paper_programs.suffixes_program(), SequenceDatabase.from_dict({"r": ["abc"]})
        )
        assert evaluate_query(result.interpretation, "suffix(X)").values("X") == [
            "", "abc", "bc", "c",
        ]

    def test_example_1_2(self):
        """All concatenations of pairs of sequences in r."""
        result = compute_least_fixpoint(
            paper_programs.concatenations_program(),
            SequenceDatabase.from_dict({"r": ["x", "yz"]}),
        )
        assert evaluate_query(result.interpretation, "answer(X)").values("X") == [
            "xx", "xyz", "yzx", "yzyz",
        ]

    def test_example_1_3(self):
        """answer(X) retrieves exactly the sequences of the form a^n b^n c^n."""
        database = SequenceDatabase.from_dict({"r": ["aabbcc", "aabcc", "abc", ""]})
        result = compute_least_fixpoint(paper_programs.anbncn_program(), database)
        assert evaluate_query(result.interpretation, "answer(X)").values("X") == [
            "", "aabbcc", "abc",
        ]

    def test_example_1_4(self):
        """The reverse of 110000 is 000011."""
        database = SequenceDatabase.from_dict({"r": ["110000"]})
        result = compute_least_fixpoint(paper_programs.reverse_program(), database)
        assert evaluate_query(result.interpretation, "answer(Y)").values("Y") == ["000011"]

    def test_example_1_5_rep1_is_finite_rep2_is_not(self, test_limits):
        """rep1 has a finite semantics, rep2 an infinite one."""
        database = SequenceDatabase.from_dict({"r": ["abcdabcdabcd"]})
        result = compute_least_fixpoint(
            paper_programs.rep1_program(), database, limits=test_limits
        )
        repeats = {
            y for x, y in evaluate_query(result.interpretation, "rep1(X, Y)").texts()
            if x == "abcdabcdabcd"
        }
        assert repeats == {"abcd", "abcdabcdabcd"}

        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(
                paper_programs.rep2_program(),
                SequenceDatabase.from_dict({"r": ["ab"]}),
                limits=test_limits,
            )

    def test_example_1_6_echo(self):
        """Given abcd the echo sequence is aabbccdd; the fixpoint is infinite.

        The limits are deliberately tiny: the fixpoint is infinite whatever
        the budget, and the intended answer is derived within a handful of
        iterations, so a large budget only buys minutes of junk derivations
        before the limit trips.
        """
        echo_limits = EvaluationLimits(
            max_iterations=10, max_facts=8_000, max_domain_size=8_000,
            max_sequence_length=64,
        )
        with pytest.raises(FixpointNotReached) as excinfo:
            compute_least_fixpoint(
                paper_programs.echo_program(),
                SequenceDatabase.from_dict({"r": ["abcd"]}),
                limits=echo_limits,
            )
        echoes = dict(
            (x, y)
            for x, y in evaluate_query(excinfo.value.partial, "answer(X, Y)").texts()
        )
        assert echoes.get("abcd") == "aabbccdd"


class TestSection5And8Examples:
    def test_example_5_1_each_double_is_two_concatenations(self):
        database = SequenceDatabase.from_dict({"r": ["ab"]})
        result = compute_least_fixpoint(
            paper_programs.stratified_construction_program(), database
        )
        assert evaluate_query(result.interpretation, "double(X)").values("X") == ["abab"]
        assert evaluate_query(result.interpretation, "quadruple(X)").values("X") == [
            "abababab"
        ]

    def test_example_8_1_safety_verdicts(self):
        p1, p2, p3 = paper_programs.figure_3_programs()
        assert is_strongly_safe(p1)
        assert not is_strongly_safe(p2)
        assert not is_strongly_safe(p3)

    def test_finiteness_classification_matches_the_paper(self):
        assert classify_finiteness(paper_programs.rep1_program()).verdict.is_finite()
        assert not classify_finiteness(paper_programs.rep2_program()).verdict.is_finite()
        assert not classify_finiteness(paper_programs.echo_program()).verdict.is_finite()


class TestSection7Examples:
    def test_example_7_1_transcription_of_the_paper_string(self):
        """The DNA sequence acgtacgt is transcribed into ugcaugca."""
        program, catalog = paper_programs.genome_program()
        tdp = TransducerDatalogProgram(program, catalog)
        database = SequenceDatabase.from_dict({"dnaseq": ["acgtacgt"]})
        result = tdp.evaluate(database, require_safety=True)
        rna = evaluate_query(result.interpretation, "rnaseq(D, R)").texts()
        assert rna == [("acgtacgt", "ugcaugca")]

    def test_example_7_1_translation_of_the_paper_string(self):
        """The RNA sequence gaugacuuacac translates to DDLH."""
        assert library.translate_transducer()("gaugacuuacac").text == "DDLH"

    def test_example_7_2_simulation_matches_example_7_1(self):
        database = SequenceDatabase.from_dict({"dnaseq": ["acgtacgt"]})
        result = compute_least_fixpoint(
            paper_programs.transcribe_simulation_program(), database
        )
        rna = [
            (d, r)
            for d, r in evaluate_query(result.interpretation, "rnaseq(D, R)").texts()
        ]
        assert rna == [("acgtacgt", "ugcaugca")]


class TestSection6Examples:
    def test_example_6_1_square_on_abc(self):
        run = library.square_transducer("abc").run("abc", trace=True)
        assert run.output.text == "abcabcabc"
        assert [step.output_after for step in run.trace] == [
            "abc", "abcabc", "abcabcabc",
        ]
