"""Tests for the transducer library, including the Figure 2 reproduction."""

import pytest

from repro.errors import TransducerDefinitionError
from repro.transducers import library


class TestBaseMachines:
    def test_copy(self):
        assert library.copy_transducer("abc")("cab").text == "cab"

    def test_mapping_drops_symbols_mapped_to_empty(self):
        machine = library.mapping_transducer("drop_b", {"b": ""}, alphabet="ab")
        assert machine("abba").text == "aa"

    def test_mapping_rejects_multi_symbol_outputs(self):
        with pytest.raises(TransducerDefinitionError):
            library.mapping_transducer("bad", {"a": "xy"}, alphabet="a")

    def test_erase(self):
        machine = library.erase_transducer("ab_", erase="_")
        assert machine("a_b_").text == "ab"

    def test_binary_complement(self):
        assert library.complement_transducer("01")("110010").text == "001101"

    def test_dna_complement(self):
        assert library.complement_transducer("acgt")("acgt").text == "tgca"

    def test_complement_of_unknown_alphabet_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            library.complement_transducer("xyz")

    def test_transcription_example_7_1(self):
        """acgtacgt is transcribed into ugcaugca."""
        assert library.transcribe_transducer()("acgtacgt").text == "ugcaugca"

    def test_translation_example_7_1(self):
        """gaugacuuacac translates to the four amino acids DDLH."""
        assert library.translate_transducer()("gaugacuuacac").text == "DDLH"

    def test_translation_ignores_incomplete_trailing_codon(self):
        assert library.translate_transducer()("gauga").text == "D"

    def test_translation_of_stop_codons(self):
        assert library.translate_transducer()("uaa").text == "*"

    def test_append_two_inputs(self):
        machine = library.append_transducer("abcde", 2)
        assert machine("abc", "de").text == "abcde"
        assert machine("", "de").text == "de"
        assert machine("abc", "").text == "abc"
        assert machine("", "").text == ""

    def test_append_three_inputs(self):
        machine = library.append_transducer("ab", 3)
        assert machine("a", "bb", "ab").text == "abbab"
        assert machine("", "b", "").text == "b"

    def test_echo_duplicates_each_symbol(self):
        machine = library.echo_transducer("abcd")
        assert machine("abcd", "abcd").text == "aabbccdd"
        assert machine("", "").text == ""


class TestFigure2SquareTransducer:
    """Example 6.1 / Figure 2: squaring the input length."""

    def test_output_is_n_copies_of_the_input(self):
        square = library.square_transducer("abc")
        assert square("abc").text == "abcabcabc"

    def test_output_length_is_quadratic(self):
        square = library.square_transducer("ab")
        for n in (1, 2, 4, 7):
            assert len(square("ab" * (n // 2) + "a" * (n % 2))) == n * n

    def test_figure_2_trace(self):
        """The step-by-step table of Figure 2 for input abc."""
        square = library.square_transducer("abc")
        run = square.run("abc", trace=True)
        table = [
            (step.step, step.positions[0], step.output_before, step.output_after)
            for step in run.trace
        ]
        assert table == [
            (1, 1, "", "abc"),
            (2, 2, "abc", "abcabc"),
            (3, 3, "abcabc", "abcabcabc"),
        ]
        assert all("call" in step.operation for step in run.trace)

    def test_empty_input(self):
        assert library.square_transducer("ab")("").text == ""


class TestHigherOrderGrowth:
    """Theorem 4: output-length bounds by order."""

    def test_pair_square_is_quadratic_in_total_input(self):
        machine = library.pair_square_transducer("ab")
        for left, right in [("ab", "b"), ("a", ""), ("abab", "bb")]:
            total = len(left) + len(right)
            assert len(machine(left, right)) == total * total

    def test_order_2_output_is_polynomially_bounded(self):
        square = library.square_transducer("ab")
        for n in (1, 2, 3, 5, 8):
            word = "a" * n
            assert len(square(word)) <= n ** 2

    def test_hyper_transducer_has_order_3(self):
        assert library.hyper_transducer("ab").order == 3

    def test_order_3_growth_follows_the_theorem_4_recurrence(self):
        """L_i = (n + L_{i-1})^2 with L_0 = 0, for n steps.

        n stays <= 2: at n = 3 the output already has 21609 symbols and the
        simulation takes minutes, without exercising any new machine path.
        """
        machine = library.hyper_transducer("ab")
        for n in (1, 2):
            word = "ab"[:1] * n
            expected = 0
            for _ in range(n):
                expected = (n + expected) ** 2
            assert len(machine(word)) == expected

    def test_order_3_output_exceeds_any_fixed_polynomial_eventually(self):
        machine = library.hyper_transducer("ab")
        assert len(machine("aa")) > 2 ** 4  # already super-quartic at n = 2
