"""Tests for nondeterministic generalized transducers.

The paper remarks (after Definition 7) that the deterministic machine model
"can easily be generalized to allow nondeterministic computations"; this is
the generalization that subsumes the generic a-transducers of [16] and the
multi-tape automata of alignment logic [20].  These tests exercise:

* the restrictions of Definition 7 carried over to the nondeterministic
  model;
* the relation semantics (``outputs``) and the acceptor view (``accepts``);
* the embedding of deterministic machines and the trivial lowering back;
* termination (every branch consumes one symbol per step).
"""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.sequences import Sequence
from repro.transducers import library
from repro.transducers.machine import CONSUME, END_MARKER, STAY
from repro.transducers.nondeterministic import (
    NondeterministicBuilder,
    NondeterministicTransducer,
    NTransition,
    equal_length_acceptor,
    from_deterministic,
    guess_subsequence_transducer,
    shuffle_transducer,
)


def all_scattered_subsequences(word):
    """All (not necessarily contiguous) subsequences of ``word``."""
    found = set()
    for size in range(len(word) + 1):
        for positions in combinations(range(len(word)), size):
            found.add("".join(word[i] for i in positions))
    return found


def all_shuffles(first, second):
    """All interleavings of two words (reference implementation)."""
    if not first:
        return {second}
    if not second:
        return {first}
    return {first[0] + rest for rest in all_shuffles(first[1:], second)} | {
        second[0] + rest for rest in all_shuffles(first, second[1:])
    }


# ----------------------------------------------------------------------
# Definition 7 restrictions
# ----------------------------------------------------------------------
class TestDefinitionRestrictions:
    def test_needs_at_least_one_input(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer("bad", 0, "ab", "q0", {})

    def test_every_choice_must_consume(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                1,
                "ab",
                "q0",
                {("q0", ("a",)): [NTransition("q0", (STAY,), "a")]},
            )

    def test_cannot_consume_past_end_marker(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                1,
                "ab",
                "q0",
                {("q0", (END_MARKER,)): [NTransition("q0", (CONSUME,), "a")]},
            )

    def test_subtransducer_arity_must_be_m_plus_one(self):
        append = library.append_transducer("ab")  # two inputs
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                2,
                "ab",
                "q0",
                {("q0", ("a", "a")): [NTransition("q0", (CONSUME, STAY), append)]},
            )

    def test_output_action_must_be_single_symbol(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                1,
                "ab",
                "q0",
                {("q0", ("a",)): [NTransition("q0", (CONSUME,), "ab")]},
            )

    def test_wrong_scanned_arity_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                2,
                "ab",
                "q0",
                {("q0", ("a",)): [NTransition("q0", (CONSUME, STAY), "a")]},
            )

    def test_wrong_moves_arity_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            NondeterministicTransducer(
                "bad",
                1,
                "ab",
                "q0",
                {("q0", ("a",)): [NTransition("q0", (CONSUME, STAY), "a")]},
            )


# ----------------------------------------------------------------------
# Relation semantics
# ----------------------------------------------------------------------
class TestGuessSubsequence:
    def test_outputs_are_all_scattered_subsequences(self):
        machine = guess_subsequence_transducer("ab")
        outputs = {seq.text for seq in machine.outputs("aba")}
        assert outputs == all_scattered_subsequences("aba")

    def test_empty_input_has_single_empty_output(self):
        machine = guess_subsequence_transducer("ab")
        assert machine.outputs("") == frozenset({Sequence("")})

    def test_machine_is_not_deterministic(self):
        machine = guess_subsequence_transducer("ab")
        assert not machine.is_deterministic()
        assert machine.order == 1

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_output_count_matches_reference(self, word):
        machine = guess_subsequence_transducer("ab")
        outputs = {seq.text for seq in machine.outputs(word)}
        assert outputs == all_scattered_subsequences(word)

    def test_calling_as_function_fails_when_ambiguous(self):
        machine = guess_subsequence_transducer("ab")
        with pytest.raises(TransducerRuntimeError):
            machine("ab")

    def test_wrong_input_arity_raises(self):
        machine = guess_subsequence_transducer("ab")
        with pytest.raises(TransducerRuntimeError):
            machine.outputs("a", "b")


class TestShuffle:
    def test_shuffles_of_short_words(self):
        machine = shuffle_transducer("ab")
        outputs = {seq.text for seq in machine.outputs("aa", "b")}
        assert outputs == all_shuffles("aa", "b") == {"aab", "aba", "baa"}

    def test_shuffle_with_empty_word_is_identity(self):
        machine = shuffle_transducer("ab")
        assert {seq.text for seq in machine.outputs("abab", "")} == {"abab"}

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=4), st.text(alphabet="ab", max_size=4))
    def test_shuffle_matches_reference(self, first, second):
        machine = shuffle_transducer("ab")
        outputs = {seq.text for seq in machine.outputs(first, second)}
        assert outputs == all_shuffles(first, second)

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=4), st.text(alphabet="ab", max_size=4))
    def test_every_shuffle_preserves_length_and_multiset(self, first, second):
        machine = shuffle_transducer("ab")
        for output in machine.outputs(first, second):
            assert len(output) == len(first) + len(second)
            assert sorted(output.text) == sorted(first + second)


# ----------------------------------------------------------------------
# Acceptor view
# ----------------------------------------------------------------------
class TestAcceptor:
    def test_equal_length_pairs_are_accepted(self):
        acceptor = equal_length_acceptor("ab")
        assert acceptor.accepts("ab", "ba")
        assert acceptor.accepts("", "")

    def test_unequal_length_pairs_are_rejected(self):
        acceptor = equal_length_acceptor("ab")
        assert not acceptor.accepts("ab", "a")
        assert not acceptor.accepts("", "a")

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=5), st.text(alphabet="ab", max_size=5))
    def test_acceptance_iff_equal_length(self, first, second):
        acceptor = equal_length_acceptor("ab")
        assert acceptor.accepts(first, second) == (len(first) == len(second))


# ----------------------------------------------------------------------
# Embedding deterministic machines
# ----------------------------------------------------------------------
class TestDeterministicEmbedding:
    def test_embedded_machine_is_deterministic_and_agrees(self):
        copy = library.copy_transducer("ab")
        embedded = from_deterministic(copy)
        assert embedded.is_deterministic()
        assert embedded.outputs("abba") == frozenset({Sequence("abba")})
        assert embedded("abba") == Sequence("abba")

    def test_embedded_square_transducer_agrees(self):
        square = library.square_transducer("ab")
        embedded = from_deterministic(square)
        assert {seq.text for seq in embedded.outputs("ab")} == {"abab"}
        assert embedded.order == 2

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="acgt", min_size=0, max_size=6))
    def test_embedded_transcription_agrees_with_original(self, dna):
        machine = library.transcribe_transducer()
        embedded = from_deterministic(machine)
        assert embedded(dna) == machine(dna)

    def test_lowering_round_trip(self):
        copy = library.copy_transducer("ab")
        lowered = from_deterministic(copy).determinize_trivially()
        assert lowered("abab") == Sequence("abab")

    def test_lowering_ambiguous_machine_fails(self):
        machine = guess_subsequence_transducer("ab")
        with pytest.raises(TransducerDefinitionError):
            machine.determinize_trivially()


# ----------------------------------------------------------------------
# Builder and misc behaviour
# ----------------------------------------------------------------------
class TestBuilderAndLimits:
    def test_builder_accumulates_choices(self):
        builder = NondeterministicBuilder("toy", num_inputs=1, alphabet="ab")
        builder.add("q0", ("a",), "q0", (CONSUME,), "x")
        builder.add("q0", ("a",), "q0", (CONSUME,), "y")
        builder.add("q0", ("b",), "q0", (CONSUME,), "z")
        machine = builder.build(initial_state="q0")
        assert {seq.text for seq in machine.outputs("ab")} == {"xz", "yz"}

    def test_branch_limit_is_enforced(self):
        machine = guess_subsequence_transducer("ab")
        tight = NondeterministicTransducer(
            name=machine.name,
            num_inputs=machine.num_inputs,
            alphabet=machine.alphabet,
            initial_state=machine.initial_state,
            transitions=machine.transitions,
            max_branches=2,
        )
        with pytest.raises(TransducerRuntimeError):
            tight.outputs("abababababab")

    def test_stuck_branches_produce_no_output(self):
        # A machine that only consumes 'a': on input containing 'b' every
        # branch gets stuck, so the output relation is empty and the
        # acceptor rejects.
        builder = NondeterministicBuilder("only_a", num_inputs=1, alphabet="ab")
        builder.add("q0", ("a",), "q0", (CONSUME,), "a")
        machine = builder.build(initial_state="q0")
        assert machine.outputs("ab") == frozenset()
        assert not machine.accepts("ab")
        assert machine.accepts("aaa")

    def test_repr_mentions_choice_count(self):
        machine = guess_subsequence_transducer("ab")
        assert "choices=4" in repr(machine)

    def test_nondeterministic_subtransducer_call(self):
        # An order-2 machine that, at each step, replaces its output by a
        # nondeterministically chosen scattered subsequence of (input, output).
        sub = guess_subsequence_transducer("ab", name="sub_guess")
        # Subtransducer must have 2 inputs for a 1-input caller: build one.
        builder_sub = NondeterministicBuilder("pick2", num_inputs=2, alphabet="ab")
        for a in ("a", "b", END_MARKER):
            for b in ("a", "b", END_MARKER):
                if a == END_MARKER and b == END_MARKER:
                    continue
                if a != END_MARKER:
                    builder_sub.add("q0", (a, b), "q0", (CONSUME, STAY), a)
                    builder_sub.add("q0", (a, b), "q0", (CONSUME, STAY), "")
                else:
                    builder_sub.add("q0", (a, b), "q0", (STAY, CONSUME), b)
        picker = builder_sub.build(initial_state="q0")

        builder = NondeterministicBuilder("outer", num_inputs=1, alphabet="ab")
        for symbol in "ab":
            builder.add("q0", (symbol,), "q0", (CONSUME,), picker)
        outer = builder.build(initial_state="q0")
        assert outer.order == 2
        outputs = {seq.text for seq in outer.outputs("ab")}
        # Every output is built from symbols of the input.
        assert outputs
        assert all(set(text) <= {"a", "b"} for text in outputs)
        del sub  # the simple helper above was illustrative only
