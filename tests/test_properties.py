"""Property-based tests (hypothesis) for core invariants.

These target the data structures and semantic invariants that underpin the
paper's results: subsequence counting (Section 2.1), extended-domain
monotonicity (Lemma 1), the correctness of the paper's restructuring
programs (reverse, repeats), transducer semantics (append, complement,
square), and the agreement between the Theorem 1 compiler and direct machine
execution.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.fixpoint import COMPILED, NAIVE, SEMI_NAIVE
from repro.engine.limits import EvaluationLimits
from repro.language.parser import parse_program
from repro.sequences import ExtendedDomain, Sequence, subsequences
from repro.sequences.sequence import max_subsequence_count
from repro.transducers import library
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog, strip_blanks
from repro.turing.compile_to_network import compile_tm_to_network
from repro.workloads import random_strings, repeats_database, string_database

SLOW = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
FAST = settings(max_examples=100, deadline=None)

binary_words = st.text(alphabet="01", max_size=6)
ab_words = st.text(alphabet="ab", max_size=6)
dna_words = st.text(alphabet="acgt", max_size=8)


# ----------------------------------------------------------------------
# Sequence substrate
# ----------------------------------------------------------------------
@FAST
@given(st.text(alphabet="abc", max_size=12))
def test_subsequence_count_bound(word):
    """A sequence of length k has at most k(k+1)/2 + 1 contiguous subsequences."""
    assert 1 <= len(subsequences(word)) <= max_subsequence_count(len(word))


@FAST
@given(st.text(alphabet="abc", max_size=10))
def test_every_subsequence_is_contained(word):
    sequence = Sequence(word)
    for fragment in subsequences(word):
        assert fragment.is_subsequence_of(sequence)


@FAST
@given(st.text(alphabet="ab", max_size=8), st.text(alphabet="ab", max_size=8))
def test_domain_monotonicity_lemma_1(first, second):
    """Dext({x}) ⊆ Dext({x, y}) for all x, y."""
    small = ExtendedDomain([first])
    large = ExtendedDomain([first, second])
    assert set(small.sequences()) <= set(large.sequences())
    assert small.max_length <= large.max_length


@FAST
@given(st.text(alphabet="abc", max_size=8), st.integers(0, 10), st.integers(0, 10))
def test_subsequence_definedness_matches_the_paper(word, lo, hi):
    """s[n1:n2] is defined iff 1 <= n1 <= n2+1 <= len(s)+1 (Section 3.2)."""
    value = Sequence(word).subsequence(lo, hi)
    should_be_defined = 1 <= lo <= hi + 1 <= len(word) + 1
    assert (value is not None) == should_be_defined
    if value is not None and lo <= hi:
        assert value.text == word[lo - 1:hi]


# ----------------------------------------------------------------------
# Restructuring programs from Section 1
# ----------------------------------------------------------------------
@SLOW
@given(binary_words)
def test_reverse_program_matches_python_reverse(word):
    db = SequenceDatabase.from_dict({"r": [word]})
    result = compute_least_fixpoint(paper_programs.reverse_program(), db)
    answers = evaluate_query(result.interpretation, "answer(Y)").values("Y")
    assert answers == [word[::-1]]


@SLOW
@given(ab_words, st.integers(min_value=1, max_value=3))
def test_rep1_recognises_true_repeats(pattern, copies):
    word = pattern * copies
    db = SequenceDatabase.from_dict({"r": [word]})
    result = compute_least_fixpoint(paper_programs.rep1_program(), db)
    pairs = evaluate_query(result.interpretation, "rep1(X, Y)").texts()
    if word:
        assert (word, pattern) in pairs or pattern == ""
    # Soundness: every derived (X, Y) pair with Y non-empty satisfies X = Y^n.
    for x, y in pairs:
        if y:
            assert set(x.split(y)) <= {""}


@SLOW
@given(st.lists(st.text(alphabet="ab", max_size=3), min_size=1, max_size=3))
def test_concatenation_program_is_sound_and_complete(words):
    db = SequenceDatabase.from_dict({"r": words})
    result = compute_least_fixpoint(paper_programs.concatenations_program(), db)
    answers = set(evaluate_query(result.interpretation, "answer(X)").values("X"))
    expected = {x + y for x in words for y in words}
    assert answers == expected


# ----------------------------------------------------------------------
# Transducer semantics
# ----------------------------------------------------------------------
@FAST
@given(ab_words, ab_words)
def test_append_transducer_is_concatenation(left, right):
    machine = library.append_transducer("ab", 2)
    assert machine(left, right).text == left + right


@FAST
@given(binary_words)
def test_complement_is_an_involution(word):
    machine = library.complement_transducer("01")
    assert machine(machine(word)).text == word


@FAST
@given(ab_words)
def test_square_transducer_length_is_quadratic(word):
    machine = library.square_transducer("ab")
    assert len(machine(word)) == len(word) ** 2


@FAST
@given(dna_words)
def test_transcription_matches_the_symbol_map(word):
    machine = library.transcribe_transducer()
    expected = "".join(library.TRANSCRIPTION_MAP[symbol] for symbol in word)
    assert machine(word).text == expected


@FAST
@given(ab_words)
def test_echo_transducer_doubles_each_symbol(word):
    machine = library.echo_transducer("ab")
    expected = "".join(symbol * 2 for symbol in word)
    assert machine(word, word).text == expected


# ----------------------------------------------------------------------
# Theorem 1: compiled programs agree with direct machine execution
# ----------------------------------------------------------------------
@SLOW
@given(st.text(alphabet="01", min_size=0, max_size=4))
def test_theorem_1_compiler_agrees_with_the_machine(word):
    machine = machines.increment_machine()
    program = compile_tm_to_sequence_datalog(machine)
    database = SequenceDatabase.single_input(word)
    limits = EvaluationLimits(max_iterations=200, max_sequence_length=200)
    result = compute_least_fixpoint(program, database, limits=limits)
    outputs = {
        strip_blanks(row[0].text, machine)
        for row in result.interpretation.tuples("output")
    }
    assert outputs == {machine.compute(word).text}


# ----------------------------------------------------------------------
# Compiled-plan evaluation agrees with the naive reference on randomized
# programs over randomized workload databases
# ----------------------------------------------------------------------

# Clause templates covering every plan-step kind: bound and unbound scans,
# binding equalities, filters, head enumeration over the domain, structural
# recursion and (finite) construction.  Every combination of templates has
# a finite fixpoint, so strategies must agree on the exact result.
_CLAUSE_TEMPLATES = (
    "p(X) :- r(X).",
    "p(X[1:N]) :- r(X).",
    "p(X[N:end]) :- r(X).",
    "p(X, Y) :- r(X), r(Y).",
    'p(Y) :- r(X), Y = X[1:2].',
    "p(X ++ X) :- r(X).",
    "q(X) :- p(X), r(X).",
    'q(X) :- p(X), X != "a".',
    "q(X[2:end]) :- q(X), r(X).",
    "q(Y) :- p(X, Y), r(Y).",
)

_EQUIVALENCE_LIMITS = EvaluationLimits(
    max_iterations=80, max_facts=20_000, max_domain_size=20_000,
    max_sequence_length=64,
)


@SLOW
@given(
    st.lists(
        st.sampled_from(_CLAUSE_TEMPLATES), min_size=1, max_size=4, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
def test_compiled_strategy_matches_naive_on_random_programs(
    templates, seed, count, length
):
    sources = []
    for source in templates:
        try:
            parse_program("".join(sources + [source])).signatures()
        except Exception:
            continue  # arity clash between templates (p/1 vs p/2): drop it
        sources.append(source)
    program = parse_program("".join(sources))
    database = string_database(count, length, alphabet="ab", seed=seed)
    results = {
        strategy: compute_least_fixpoint(
            program, database, limits=_EQUIVALENCE_LIMITS, strategy=strategy
        )
        for strategy in (NAIVE, SEMI_NAIVE, COMPILED)
    }
    assert results[NAIVE].interpretation == results[COMPILED].interpretation
    assert results[NAIVE].interpretation == results[SEMI_NAIVE].interpretation


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_compiled_strategy_matches_naive_on_repeat_workloads(seed):
    program = paper_programs.rep1_program()
    database = repeats_database(
        pattern_lengths=(1, 2), copies=(1, 2), alphabet="ab", seed=seed
    )
    naive = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=NAIVE
    )
    compiled = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=COMPILED
    )
    assert naive.interpretation == compiled.interpretation


# ----------------------------------------------------------------------
# Parallel evaluation agrees with the sequential compiled strategy: wave
# scheduling and range partitioning only reorder monotone firings, so the
# least fixpoint (which is unique) must come out fact-for-fact identical.
# ----------------------------------------------------------------------
@SLOW
@given(
    st.lists(
        st.sampled_from(_CLAUSE_TEMPLATES), min_size=1, max_size=4, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
def test_parallel_strategy_matches_compiled_on_random_programs(
    templates, seed, count, length
):
    from repro.engine.parallel import ParallelFixpoint

    sources = []
    for source in templates:
        try:
            parse_program("".join(sources + [source])).signatures()
        except Exception:
            continue  # arity clash between templates (p/1 vs p/2): drop it
        sources.append(source)
    program = parse_program("".join(sources))
    database = string_database(count, length, alphabet="ab", seed=seed)
    compiled = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=COMPILED
    )
    # Thread backend with aggressive partitioning exercises the concurrent
    # merge barrier on every example; hypothesis drives the program shapes.
    engine = ParallelFixpoint(
        program, workers=3, mode="thread", min_partition_rows=1
    )
    try:
        engine.load_database(database)
        engine.run(_EQUIVALENCE_LIMITS)
        assert engine.interpretation == compiled.interpretation
    finally:
        engine.close()


def test_parallel_process_pool_matches_compiled_on_sampled_programs():
    """A non-hypothesis spot check of the process pool (worker startup is
    too slow to fork per hypothesis example) over mixed clause shapes."""
    from repro.engine.parallel import ParallelFixpoint

    compatible = _CLAUSE_TEMPLATES[:3] + _CLAUSE_TEMPLATES[4:9]  # all p/1, q/1
    program = parse_program("".join(compatible))
    for seed in (1, 99, 4242):
        database = string_database(3, 3, alphabet="ab", seed=seed)
        compiled = compute_least_fixpoint(
            program, database, limits=_EQUIVALENCE_LIMITS, strategy=COMPILED
        )
        engine = ParallelFixpoint(
            program, workers=2, mode="process",
            min_partition_rows=1, process_threshold=0,
        )
        try:
            engine.load_database(database)
            engine.run(_EQUIVALENCE_LIMITS)
            assert engine.interpretation == compiled.interpretation
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Batch kernel execution agrees with the per-tuple path: a batchable plan
# is a pure relational join over interned ids, so routing it through the
# kernels must not change a single fact — across full firings, semi-naive
# deltas, parallel windows, demand restriction and session maintenance.
# ----------------------------------------------------------------------

# Join-heavy templates: most are batchable (multi-atom joins, constant
# probes, repeated variables, filters), while the last two force per-tuple
# fallbacks so mixed programs exercise both paths in one fixpoint.  Every
# predicate keeps one arity across templates, so any subset parses.
_KERNEL_TEMPLATES = (
    "e(X, Y) :- r(X), r(Y).",
    "t(X, Y) :- e(X, Y).",
    "t(X, Z) :- t(X, Y), e(Y, Z).",
    't(X, Y) :- e(X, Y), X != "a".',
    "s(X) :- e(X, X).",
    "s(X) :- t(X, Y), s(Y).",
    'c(Y) :- e("a", Y).',
    'h("z", X) :- s(X).',
    "u(X ++ X) :- r(X).",
    "v(X[1:N]) :- r(X).",
)


@SLOW
@given(
    st.lists(
        st.sampled_from(_KERNEL_TEMPLATES), min_size=1, max_size=5, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_batch_kernels_match_tuple_path_on_random_programs(
    templates, seed, count, length
):
    program = parse_program("".join(templates))
    database = string_database(count, length, alphabet="ab", seed=seed)
    on = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS,
        strategy=COMPILED, use_kernels=True,
    )
    off = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS,
        strategy=COMPILED, use_kernels=False,
    )
    assert on.interpretation == off.interpretation
    assert on.fact_count == off.fact_count


@SLOW
@given(
    st.lists(
        st.sampled_from(_KERNEL_TEMPLATES), min_size=1, max_size=5, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_batch_kernels_match_tuple_path_under_parallel_windows(
    templates, seed, count, length
):
    """Partitioned delta windows hit the kernels' mid-store probe paths."""
    from repro.engine.parallel import ParallelFixpoint

    program = parse_program("".join(templates))
    database = string_database(count, length, alphabet="ab", seed=seed)
    reference = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS,
        strategy=COMPILED, use_kernels=False,
    )
    engine = ParallelFixpoint(
        program, workers=3, mode="thread", min_partition_rows=1,
        use_kernels=True,
    )
    try:
        engine.load_database(database)
        engine.run(_EQUIVALENCE_LIMITS)
        assert engine.interpretation == reference.interpretation
    finally:
        engine.close()


@SLOW
@given(
    st.lists(
        st.sampled_from(_KERNEL_TEMPLATES), min_size=1, max_size=5, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=3),
    st.data(),
)
def test_batch_kernels_match_tuple_path_under_session_increments(
    templates, seed, count, length, data
):
    """Incremental maintenance fires delta-restricted kernel firings."""
    from repro.engine.session import DatalogSession

    program = parse_program("".join(templates))
    database = string_database(count, length, alphabet="ab", seed=seed)
    rows = [row[0].text for row in database.relation("r")]
    split = data.draw(st.integers(min_value=0, max_value=len(rows)), label="split")
    sessions = {}
    for use_kernels in (True, False):
        session = DatalogSession(
            program, {"r": rows[:split]},
            limits=_EQUIVALENCE_LIMITS, use_kernels=use_kernels,
        )
        for row in rows[split:]:
            session.add_facts({"r": [row]})
        sessions[use_kernels] = session
    assert sessions[True].interpretation == sessions[False].interpretation


@SLOW
@given(
    st.lists(
        st.sampled_from(_KERNEL_TEMPLATES), min_size=2, max_size=5, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_batch_kernels_match_tuple_path_under_demand(templates, seed, count, data):
    """Demand slices (adornment-seeded plans) agree with kernels on and off."""
    from repro.engine.demand import compile_demand
    from repro.engine.kernels import set_batch_enabled

    program = parse_program("".join(templates))
    database = string_database(count, 2, alphabet="ab", seed=seed)
    predicate = data.draw(
        st.sampled_from(sorted(program.head_predicates())), label="predicate"
    )
    arity = program.signatures()[predicate]
    variables = [f"V{position}" for position in range(arity)]
    patterns = [f"{predicate}({', '.join(variables)})"]
    if arity:
        # Constant-bound: the adornment seeds the defining plans, so the
        # kernels run with a non-empty seed row.
        rest = ", ".join(variables[1:])
        patterns.append(f'{predicate}("a"{", " + rest if rest else ""})')
    for pattern in patterns:
        compiled = compile_demand(program, pattern)
        on = compiled.materialize(database, _EQUIVALENCE_LIMITS)
        previous = set_batch_enabled(False)
        try:
            off = compiled.materialize(database, _EQUIVALENCE_LIMITS)
        finally:
            set_batch_enabled(previous)
        assert sorted(compiled.query(on).texts()) == sorted(
            compiled.query(off).texts()
        )
        assert on.fact_count == off.fact_count


# ----------------------------------------------------------------------
# Demand-driven evaluation agrees with full materialisation
# ----------------------------------------------------------------------
@SLOW
@given(
    st.lists(
        st.sampled_from(_CLAUSE_TEMPLATES), min_size=1, max_size=4, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_demand_mode_matches_full_fixpoint_on_random_programs(
    templates, seed, count, length, data
):
    """Demand-mode answers must equal full-fixpoint answers — whether the
    compiler restricted the swept plans or (for domain-sensitive programs)
    fell back to full evaluation."""
    from repro.engine.demand import compile_demand

    sources = []
    for source in templates:
        try:
            parse_program("".join(sources + [source])).signatures()
        except Exception:
            continue  # arity clash between templates (p/1 vs p/2): drop it
        sources.append(source)
    program = parse_program("".join(sources))
    database = string_database(count, length, alphabet="ab", seed=seed)
    full = compute_least_fixpoint(program, database, limits=_EQUIVALENCE_LIMITS)

    predicate = data.draw(
        st.sampled_from(sorted(program.head_predicates())), label="predicate"
    )
    arity = program.signatures()[predicate]
    variables = [f"V{position}" for position in range(arity)]
    patterns = [f"{predicate}({', '.join(variables)})" if arity else predicate]
    # A constant-bound variant: bind the first position to a value the full
    # model actually holds (when any) and to a value it cannot hold.
    rows = sorted(full.interpretation.tuples(predicate))
    if arity:
        if rows:
            constant = rows[0][0].text
            rest = ", ".join(variables[1:])
            patterns.append(
                f'{predicate}("{constant}"{", " + rest if rest else ""})'
            )
        # "zz" is underivable over the {a, b} workload alphabet.
        patterns.append(
            f'{predicate}("zz"{ ", " + ", ".join(variables[1:]) if arity > 1 else ""})'
        )
    for pattern in patterns:
        compiled = compile_demand(program, pattern)
        demand_result = compiled.materialize(database, _EQUIVALENCE_LIMITS)
        assert demand_result.fact_count <= full.fact_count
        assert sorted(compiled.query(demand_result).texts()) == sorted(
            evaluate_query(full.interpretation, pattern).texts()
        )


# ----------------------------------------------------------------------
# Incremental session maintenance agrees with from-scratch evaluation
# ----------------------------------------------------------------------
@SLOW
@given(
    st.lists(
        st.sampled_from(_CLAUSE_TEMPLATES), min_size=1, max_size=4, unique=True
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_session_increments_match_from_scratch_on_random_programs(
    templates, seed, count, length, data
):
    """DatalogSession.add_facts must land on exactly lfp(T_{P, db ∪ Δ})."""
    from repro.engine.session import DatalogSession

    sources = []
    for source in templates:
        try:
            parse_program("".join(sources + [source])).signatures()
        except Exception:
            continue  # arity clash between templates (p/1 vs p/2): drop it
        sources.append(source)
    program = parse_program("".join(sources))
    database = string_database(count, length, alphabet="ab", seed=seed)
    rows = [row[0].text for row in database.relation("r")]
    split = data.draw(st.integers(min_value=0, max_value=len(rows)), label="split")

    session = DatalogSession(
        program, {"r": rows[:split]}, limits=_EQUIVALENCE_LIMITS
    )
    for row in rows[split:]:
        session.add_facts({"r": [row]})
    scratch = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=COMPILED
    )
    assert session.interpretation == scratch.interpretation


@SLOW
@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 3))
def test_session_increments_match_from_scratch_on_paper_programs(seed, splits):
    """Suffixes and rep1 (paper programs) served incrementally stay exact."""
    from repro.engine.session import DatalogSession

    database = repeats_database(
        pattern_lengths=(1, 2), copies=(1, 2), alphabet="ab", seed=seed
    )
    rows = sorted(row[0].text for row in database.relation("r"))
    for program in (paper_programs.suffixes_program(), paper_programs.rep1_program()):
        session = DatalogSession(
            program, {"r": rows[:splits]}, limits=_EQUIVALENCE_LIMITS
        )
        session.add_facts({"r": rows[splits:]})
        scratch = compute_least_fixpoint(
            program, database, limits=_EQUIVALENCE_LIMITS, strategy=NAIVE
        )
        assert session.interpretation == scratch.interpretation


@SLOW
@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 3))
def test_compiled_strategy_matches_naive_on_reverse_workloads(seed, count):
    program = paper_programs.reverse_program()
    database = SequenceDatabase.from_dict(
        {"r": random_strings(count, 4, alphabet="01", seed=seed)}
    )
    naive = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=NAIVE
    )
    compiled = compute_least_fixpoint(
        program, database, limits=_EQUIVALENCE_LIMITS, strategy=COMPILED
    )
    assert naive.interpretation == compiled.interpretation


# ----------------------------------------------------------------------
# Theorem 5: compiled networks agree with direct machine execution
# ----------------------------------------------------------------------
@pytest.mark.slow
@SLOW
@given(st.text(alphabet="01", min_size=2, max_size=4))
def test_theorem_5_network_agrees_with_the_machine(word):
    # Network simulation cost grows ~10x per symbol; length 4 keeps the
    # property meaningful (multi-symbol runs) without minute-long examples.
    machine = machines.complement_machine()
    network = compile_tm_to_network(machine, time_exponent=1)
    assert network.compute_function(word) == machine.compute(word)


# ----------------------------------------------------------------------
# Program diagnostics (repro.analysis.diagnostics)
# ----------------------------------------------------------------------
# A deliberately hostile template pool: broken syntax, undefined and
# arity-conflicting predicates, unbound heads, constructive recursion,
# cartesian joins, duplicates.  Linting any combination must produce a
# report, never an exception.
LINT_TEMPLATES = (
    "p(X) :- r(X).",
    "p(X :- r(X).",                      # does not parse
    "p(X, Y) :- r(X), r(Y).",            # arity conflict with p/1
    "bad(X) :- r(Y).",                   # unbound head variable
    "rep(X ++ Y, Y) :- rep(X, Y).",      # constructive recursion
    "q(X[1:N]) :- r(X[2:end]).",         # unguarded
    "p(X) :- r(X).",                     # duplicate of the first
    "dead(X) :- ghost(X).",              # unreachable body predicate
    "j(X, Y) :- r(X), s(Y).",            # cartesian join
    'c(X) :- r(X), X != "a".',
)


@FAST
@given(
    st.lists(st.sampled_from(LINT_TEMPLATES), min_size=1, max_size=6),
    st.lists(
        st.sampled_from(["p(X)", "p(X, Y)", "p(X", "ghost(Z)"]), max_size=2
    ),
)
def test_lint_never_raises(templates, patterns):
    """lint_program is total: any input yields a report, never an exception."""
    from repro.analysis.diagnostics import DiagnosticReport, lint_program
    from repro.database import SequenceDatabase

    source = "\n".join(templates)
    database = SequenceDatabase.from_json_dict({"r": ["ab"], "s": ["ba"]})
    for kwargs in ({}, {"database": database}, {"patterns": patterns}):
        report = lint_program(source, **kwargs)
        assert isinstance(report, DiagnosticReport)
        # The payload round-trips losslessly whatever the findings.
        assert DiagnosticReport.from_payload(report.to_payload()) == report


@SLOW
@given(
    st.lists(
        st.sampled_from(
            (
                "p(X) :- r(X).",
                "p(X[1:N]) :- r(X).",
                "q(X) :- p(X), r(X).",
                "q(X[2:end]) :- q(X), r(X).",
                "s(X, Y) :- r(X), r(Y).",
            )
        ),
        min_size=1,
        max_size=4,
    ),
    st.lists(st.text(alphabet="ab", min_size=1, max_size=4), min_size=1, max_size=3),
)
def test_error_free_finite_programs_evaluate_cleanly(templates, rows):
    """A program the linter passes without errors (and the classifier
    certifies finite) evaluates to a fixpoint without raising."""
    from repro.core.engine_api import SequenceDatalogEngine

    from hypothesis import assume

    engine = SequenceDatalogEngine("\n".join(dict.fromkeys(templates)))
    report = engine.lint(database={"r": rows})
    assume(not report.has_errors())  # e.g. E101 when q's rule samples alone
    assert engine.finiteness().verdict.is_finite()
    result = engine.evaluate({"r": rows})
    assert result.interpretation is not None


# ----------------------------------------------------------------------
# Durable storage: crash recovery (repro.storage)
# ----------------------------------------------------------------------
@SLOW
@given(
    st.lists(
        st.lists(dna_words, min_size=1, max_size=3), min_size=1, max_size=4
    ),
    st.data(),
)
def test_crash_recovery_is_fact_for_fact_identical(batches, data):
    """A crash-recovered session equals one that never crashed.

    Random fact batches are ingested durably, a checkpoint optionally
    lands at a random position, and then the process "crashes" (file
    handles dropped without flushing).  Recovery (snapshot + WAL-tail
    replay through the normal incremental maintenance path) must rebuild
    exactly the model an in-memory session computes from the same
    acknowledged batches — no lost commits, no resurrected partial
    batches, regardless of where the crash or the checkpoint fell.
    """
    import tempfile

    from repro.engine.session import DatalogSession
    from repro.storage import open_session

    program = "suffix(X[N:end]) :- r(X). pair(X, Y) :- r(X), r(Y)."
    checkpoint_after = data.draw(
        st.integers(min_value=0, max_value=len(batches)), label="checkpoint_after"
    )

    def facts_of(session):
        interpretation = session.interpretation
        return {
            (predicate, tuple(str(value) for value in row))
            for predicate in interpretation.predicates()
            for row in interpretation.tuples(predicate)
        }

    with tempfile.TemporaryDirectory() as tmp:
        durable = open_session(
            program, tmp, storage_options={"background_checkpoints": False}
        )
        for index, batch in enumerate(batches, start=1):
            durable.add_facts([("r", (word,)) for word in batch])
            if index == checkpoint_after:
                durable.storage.checkpoint()
        durable.storage.abandon()  # crash: nothing else reaches disk
        durable._core.close()

        recovered = open_session(program, tmp)
        witness = DatalogSession(program)
        for batch in batches:
            witness.add_facts([("r", (word,)) for word in batch])
        try:
            assert facts_of(recovered) == facts_of(witness)
            assert recovered.generation == recovered.storage.generation
        finally:
            recovered.storage.close(final_snapshot=False)
            recovered.close()
            witness.close()
