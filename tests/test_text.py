"""Tests for the text-database application layer.

Text databases are the paper's second motivating domain.  All programs in
``repro.text`` are non-constructive (Theorem 3 fragment); the tests check
each query against a plain-Python reference on small corpora, plus the
facade's position bookkeeping.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.text import TextCorpus
from repro.text.programs import (
    motif_program,
    palindrome_program,
    repeat_program,
    shared_substring_program,
    tandem_repeat_program,
)


def reference_occurrences(document: str, motif: str):
    positions, start = [], 0
    while True:
        index = document.find(motif, start)
        if index < 0:
            return positions
        positions.append(index + 1)
        start = index + 1


def reference_shared_substrings(first: str, second: str, min_length: int):
    substrings = {
        first[i:j]
        for i in range(len(first))
        for j in range(i + min_length, len(first) + 1)
    }
    return {s for s in substrings if s in second}


def reference_palindromic_substrings(document: str, min_length: int):
    found = set()
    for i in range(len(document)):
        for j in range(i + min_length, len(document) + 1):
            candidate = document[i:j]
            if candidate == candidate[::-1]:
                found.add(candidate)
    return found


def reference_tandem_repeats(document: str):
    found = set()
    for i in range(len(document)):
        for half in range(1, (len(document) - i) // 2 + 1):
            if document[i:i + half] == document[i + half:i + 2 * half]:
                found.add(document[i:i + half])
    return found


# ----------------------------------------------------------------------
# Programs are all non-constructive
# ----------------------------------------------------------------------
def test_every_text_program_is_non_constructive():
    programs = [
        motif_program(),
        shared_substring_program(),
        palindrome_program(),
        tandem_repeat_program(),
        repeat_program(),
    ]
    for program in programs:
        assert not any(clause.is_constructive() for clause in program)


def test_shared_substring_program_validates_min_length():
    with pytest.raises(ValidationError):
        shared_substring_program(0)


# ----------------------------------------------------------------------
# Motif occurrences
# ----------------------------------------------------------------------
class TestMotifOccurrences:
    def test_positions_match_reference(self):
        corpus = TextCorpus(["banana", "bandana"])
        occurrences = corpus.motif_occurrences(["ana", "ban"])
        assert occurrences["ana"]["banana"] == reference_occurrences("banana", "ana")
        assert occurrences["ana"]["bandana"] == reference_occurrences("bandana", "ana")
        assert occurrences["ban"]["banana"] == [1]
        assert occurrences["ban"]["bandana"] == [1]

    def test_absent_motif_has_no_entries(self):
        corpus = TextCorpus(["abc"])
        occurrences = corpus.motif_occurrences(["zzz"])
        assert occurrences == {"zzz": {}}

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=8), st.text(alphabet="ab", min_size=1, max_size=3))
    def test_random_documents_match_reference(self, document, motif):
        corpus = TextCorpus([document])
        occurrences = corpus.motif_occurrences([motif])
        expected = reference_occurrences(document, motif)
        assert occurrences[motif].get(document, []) == expected


# ----------------------------------------------------------------------
# Shared substrings (the corpus-overlap query)
# ----------------------------------------------------------------------
class TestSharedSubstrings:
    def test_shared_substrings_of_two_documents(self):
        corpus = TextCorpus(["abcde", "xbcdy"])
        shared = corpus.shared_substrings(min_length=2)
        assert shared[("abcde", "xbcdy")] == reference_shared_substrings(
            "abcde", "xbcdy", 2
        )

    def test_documents_without_overlap_share_nothing(self):
        corpus = TextCorpus(["aaa", "bbb"])
        assert corpus.shared_substrings(min_length=2) == {}

    def test_longest_shared_substring(self):
        corpus = TextCorpus(["the quick fox", "a quick dog"])
        longest = corpus.longest_shared_substrings(min_length=2)
        assert longest[("a quick dog", "the quick fox")] == " quick "

    def test_min_length_filters_short_overlaps(self):
        corpus = TextCorpus(["ab", "ba"])
        assert corpus.shared_substrings(min_length=2) == {}

    @settings(max_examples=12, deadline=None)
    @given(st.text(alphabet="ab", min_size=2, max_size=6), st.text(alphabet="ab", min_size=2, max_size=6))
    def test_random_pairs_match_reference(self, first, second):
        if first == second:
            return
        corpus = TextCorpus([first, second])
        shared = corpus.shared_substrings(min_length=2)
        key = (first, second) if first <= second else (second, first)
        expected = reference_shared_substrings(first, second, 2)
        assert shared.get(key, set()) == expected


# ----------------------------------------------------------------------
# Palindromes
# ----------------------------------------------------------------------
class TestPalindromes:
    def test_palindromic_substrings_match_reference(self):
        corpus = TextCorpus(["racecar", "noon"])
        palindromes = corpus.palindromic_substrings(min_length=2)
        assert palindromes["racecar"] == reference_palindromic_substrings("racecar", 2)
        assert palindromes["noon"] == reference_palindromic_substrings("noon", 2)

    def test_palindromic_documents(self):
        corpus = TextCorpus(["racecar", "noon", "banana", "a", ""])
        assert corpus.palindromic_documents() == ["", "a", "noon", "racecar"]

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="ab", max_size=7))
    def test_random_documents_match_reference(self, document):
        corpus = TextCorpus([document])
        palindromes = corpus.palindromic_substrings(min_length=2)
        assert palindromes[document] == reference_palindromic_substrings(document, 2)


# ----------------------------------------------------------------------
# Repeats
# ----------------------------------------------------------------------
class TestRepeats:
    def test_tandem_repeats_match_reference(self):
        corpus = TextCorpus(["abab", "banana", "abc"])
        repeats = corpus.tandem_repeats()
        for document in ("abab", "banana", "abc"):
            assert repeats[document] == reference_tandem_repeats(document)

    def test_repeated_documents_example_1_5(self):
        corpus = TextCorpus(["abcabcabc", "abab", "banana"])
        units = corpus.repeated_documents()
        assert units["abcabcabc"] == {"abc"}
        assert units["abab"] == {"ab"}
        assert "banana" not in units

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=6))
    def test_random_tandem_repeats_match_reference(self, document):
        corpus = TextCorpus([document])
        assert corpus.tandem_repeats()[document] == reference_tandem_repeats(document)

    def test_repr(self):
        corpus = TextCorpus(["ab", "cde"])
        assert "2 documents" in repr(corpus)
        assert "5 symbols" in repr(corpus)
