"""Tests for the incremental query-serving session layer."""

import pytest

from repro import DatalogSession, SequenceDatabase, SequenceDatalogEngine
from repro.core import paper_programs
from repro.engine import compute_least_fixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.plan import AtomScan
from repro.errors import (
    FixpointNotReached,
    UnknownPredicateError,
    ValidationError,
)
from repro.sequences import Sequence


@pytest.fixture
def intern_table_guard():
    """Snapshot and restore the process-wide intern table around a test.

    Tests exercising ``Sequence._reset_intern_table_for_tests`` would
    otherwise leave later tests joining over stale intern ids.
    """
    saved_table = dict(Sequence._intern_table)
    saved_by_id = list(Sequence._by_id)
    saved_symbols = Sequence._total_symbols
    yield
    with Sequence._lock:
        Sequence._intern_table.clear()
        Sequence._intern_table.update(saved_table)
        Sequence._by_id.clear()
        Sequence._by_id.extend(saved_by_id)
        for position, sequence in enumerate(saved_by_id):
            sequence._id = position
        Sequence._total_symbols = saved_symbols


class TestSessionBasics:
    def test_initial_fixpoint_matches_batch_evaluation(self, small_string_db):
        session = DatalogSession(paper_programs.suffixes_program(), small_string_db)
        batch = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        assert session.interpretation == batch.interpretation

    def test_empty_database_still_derives_program_facts(self):
        session = DatalogSession(paper_programs.transcribe_simulation_program())
        assert len(session.query("trans(X, Y)")) == 4

    def test_accepts_mapping_databases(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["ab"]})
        assert session.query("p(X)").texts() == [("ab",)]

    def test_facade_opens_sessions(self, small_string_db):
        engine = SequenceDatalogEngine(paper_programs.EXAMPLE_1_1_SUFFIXES)
        session = engine.session(small_string_db)
        assert session.query("suffix(X)").texts() == engine.run(
            small_string_db, "suffix(X)"
        ).texts()

    def test_repr_mentions_size(self, small_string_db):
        session = DatalogSession(paper_programs.suffixes_program(), small_string_db)
        assert "facts" in repr(session)


class TestIncrementalMaintenance:
    def test_add_facts_matches_from_scratch(self):
        program = paper_programs.suffixes_program()
        session = DatalogSession(program, {"r": ["abc"]})
        report = session.add_facts({"r": ["de", "f"]})
        assert report.base_facts_added == 2
        assert report.facts_added >= 2
        scratch = compute_least_fixpoint(
            program, SequenceDatabase.from_dict({"r": ["abc", "de", "f"]})
        )
        assert session.interpretation == scratch.interpretation

    def test_add_facts_accepts_pairs_databases_and_single_fact(self):
        session = DatalogSession("p(X, Y) :- r(X), r(Y).", {"r": ["a"]})
        session.add_facts([("r", ("b",))])
        session.add_facts(SequenceDatabase.from_dict({"r": ["c"]}))
        session.add_fact("r", "d")
        assert len(session.query("p(X, Y)")) == 16

    def test_duplicate_facts_are_not_counted(self):
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["ab"]})
        report = session.add_facts({"r": ["ab"]})
        assert report.base_facts_added == 0
        assert report.facts_added == 0

    def test_incremental_recursion_through_multiple_updates(self):
        # transcribe is recursive: each new strand must extend the
        # transcription chain from scratch *for that strand only*.
        program = paper_programs.transcribe_simulation_program()
        strands = ["acgt", "ttag", "cg"]
        session = DatalogSession(program, {"dnaseq": strands[:1]})
        for strand in strands[1:]:
            session.add_facts({"dnaseq": [strand]})
        scratch = compute_least_fixpoint(
            program, SequenceDatabase.from_dict({"dnaseq": strands})
        )
        assert session.interpretation == scratch.interpretation
        assert session.query("rnaseq(D, R)").texts() == [
            ("acgt", "ugca"), ("cg", "gc"), ("ttag", "aauc"),
        ]

    def test_new_predicate_arrives_through_add_facts(self):
        session = DatalogSession("both(X) :- r(X), s(X).", {"r": ["a", "b"]})
        assert session.query("both(X)").is_empty()
        session.add_facts({"s": ["b"]})
        assert session.query("both(X)").texts() == [("b",)]

    def test_limits_apply_per_maintenance_run(self):
        # rep2 has an infinite fixpoint: every maintenance run must trip the
        # limit rather than loop forever.
        limits = EvaluationLimits(max_iterations=10, max_sequence_length=50)
        with pytest.raises(FixpointNotReached):
            DatalogSession(paper_programs.rep2_program(), {"r": ["ab"]}, limits=limits)

    def test_malformed_fact_containers_are_rejected_before_insertion(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        with pytest.raises(ValidationError):
            session.add_facts([("r", ("b",)), 42])
        # The malformed entry aborted the call before any insertion.
        assert session.query("p(X)").texts() == [("a",)]

    def test_bare_string_rows_and_scalar_values_are_rejected(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        with pytest.raises(ValidationError):
            # Would otherwise explode into one fact per character.
            session.add_facts({"r": "abc"})
        with pytest.raises(ValidationError):
            session.add_facts({"r": [5]})
        with pytest.raises(ValidationError):
            session.add_facts([("r", 5)])
        assert session.query("r(X)").texts() == [("a",)]

    def test_failed_batch_still_restores_the_fixpoint_invariant(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        with pytest.raises(ValidationError):
            # 'b' is accepted, then the arity clash on q/2-vs-q/1 aborts.
            session.add_facts([("r", ("b",)), ("q", ("x", "y")), ("q", ("z",))])
        # Whatever was accepted must be fully derived: still a fixpoint.
        assert session.query("p(X)").texts() == [("a",), ("b",)]


class TestPreparedQueries:
    def test_constant_bound_queries_use_the_index(self):
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["abcd"]})
        prepared = session.prepare('suffix("bcd")')
        scans = [step for step in prepared.plan.steps if isinstance(step, AtomScan)]
        assert scans and scans[0].bound_columns == (0,)
        assert len(prepared.run(session.interpretation)) == 1

    def test_lru_cache_hits_and_eviction(self):
        session = DatalogSession(
            paper_programs.suffixes_program(), {"r": ["ab"]}, prepared_cache_size=2
        )
        session.query("suffix(X)")
        session.query("suffix(X)")
        stats = session.stats()["prepared_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        session.query("r(X)")
        session.query('suffix("b")')  # evicts suffix(X)
        session.query("suffix(X)")  # cold again: a fourth miss
        stats = session.stats()["prepared_cache"]
        assert stats["size"] == 2
        assert stats["misses"] == 4 and stats["hits"] == 1

    def test_query_results_track_updates(self):
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["ab"]})
        assert session.query('suffix("z")').is_empty()
        session.add_facts({"r": ["az"]})
        assert not session.query('suffix("z")').is_empty()

    def test_strict_distinguishes_empty_from_unknown(self):
        session = DatalogSession("both(X) :- r(X), s(X).", {"r": ["a"]})
        # `both` derived nothing (s is empty) but the program defines it.
        assert session.query("both(X)", strict=True).is_empty()
        # `s` has no facts yet but appears in the program body.
        assert session.query("s(X)", strict=True).is_empty()
        with pytest.raises(UnknownPredicateError):
            session.query("bothh(X)", strict=True)

    def test_stats_expose_model_and_intern_growth(self):
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["ab"]})
        stats = session.stats()
        assert stats["facts"] == session.fact_count()
        assert stats["intern_table"]["size"] >= stats["model_size"]
        before = stats["intern_table"]
        session.add_facts({"r": ["zzzz"]})
        after = session.stats()["intern_table"]
        assert after["size"] > before["size"]
        assert after["total_symbols"] > before["total_symbols"]


class TestSessionInternTableReset:
    def test_reset_hook_shrinks_the_table(self, intern_table_guard):
        Sequence("only-here-to-populate")
        previous = Sequence._reset_intern_table_for_tests()
        assert previous > 1
        assert Sequence.intern_table_size() == 1  # just EMPTY
        assert Sequence("").intern_id == 0
        # A session built entirely after the reset is self-consistent.
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["ab"]})
        assert session.query("suffix(X)").values("X") == ["", "ab", "b"]
        assert Sequence.intern_stats()["size"] == Sequence.intern_table_size()
