"""Tests for the generalized transducer machine model (Definition 7)."""

import pytest

from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.transducers import (
    CONSUME,
    END_MARKER,
    GeneralizedTransducer,
    TransducerBuilder,
    Transition,
)
from repro.transducers.machine import STAY, WILDCARD
from repro.transducers.library import append_transducer, copy_transducer, square_transducer


def _single_symbol_copier() -> GeneralizedTransducer:
    builder = TransducerBuilder("copy_ab", num_inputs=1, alphabet="ab")
    for symbol in "ab":
        builder.add("q0", (symbol,), "q0", (CONSUME,), symbol)
    return builder.build("q0")


class TestDefinitionRestrictions:
    def test_every_transition_must_consume(self):
        builder = TransducerBuilder("bad", num_inputs=1, alphabet="a")
        builder._transitions[("q0", ("a",))] = Transition("q0", (STAY,), "a")
        with pytest.raises(TransducerDefinitionError):
            builder.build("q0")

    def test_heads_cannot_consume_the_end_marker(self):
        builder = TransducerBuilder("bad", num_inputs=1, alphabet="a")
        builder.add("q0", (END_MARKER,), "q0", (CONSUME,), "a")
        with pytest.raises(TransducerDefinitionError):
            builder.build("q0")

    def test_subtransducer_arity_must_be_m_plus_one(self):
        sub = _single_symbol_copier()  # 1 input
        builder = TransducerBuilder("bad", num_inputs=1, alphabet="ab")
        builder.add("q0", ("a",), "q0", (CONSUME,), sub)
        with pytest.raises(TransducerDefinitionError):
            builder.build("q0")

    def test_output_must_be_single_symbol(self):
        builder = TransducerBuilder("bad", num_inputs=1, alphabet="a")
        builder.add("q0", ("a",), "q0", (CONSUME,), "too-long")
        with pytest.raises(TransducerDefinitionError):
            builder.build("q0")

    def test_duplicate_transitions_rejected(self):
        builder = TransducerBuilder("dup", num_inputs=1, alphabet="a")
        builder.add("q0", ("a",), "q0", (CONSUME,), "a")
        with pytest.raises(TransducerDefinitionError):
            builder.add("q0", ("a",), "q0", (CONSUME,), "a")

    def test_at_least_one_input_required(self):
        with pytest.raises(TransducerDefinitionError):
            GeneralizedTransducer("none", 0, "a", "q0", {})


class TestExecution:
    def test_copy_machine(self):
        machine = _single_symbol_copier()
        assert machine("abba").text == "abba"

    def test_empty_input_stops_immediately(self):
        machine = _single_symbol_copier()
        run = machine.run("")
        assert run.output.text == ""
        assert run.steps == 0

    def test_stuck_machine_raises(self):
        machine = _single_symbol_copier()
        with pytest.raises(TransducerRuntimeError):
            machine.run("abc")  # 'c' has no transition

    def test_wrong_number_of_inputs(self):
        machine = _single_symbol_copier()
        with pytest.raises(TransducerRuntimeError):
            machine.run("a", "b")

    def test_step_counting_includes_subcalls(self):
        square = square_transducer("ab")
        run = square.run("ab")
        assert run.steps == 2
        assert run.total_steps > run.steps

    def test_trace_records_each_step(self):
        machine = _single_symbol_copier()
        run = machine.run("ab", trace=True)
        assert [step.operation for step in run.trace] == ["emit 'a'", "emit 'b'"]
        assert run.trace[0].output_before == ""
        assert run.trace[-1].output_after == "ab"

    def test_termination_always_holds_for_library_machines(self):
        # Generalized transducers always terminate (Section 6.1).
        machine = append_transducer("ab", 2)
        run = machine.run("a" * 30, "b" * 30)
        assert run.output.text == "a" * 30 + "b" * 30


class TestOrders:
    def test_base_machines_have_order_1(self):
        assert copy_transducer("ab").order == 1
        assert append_transducer("ab", 2).order == 1

    def test_square_has_order_2(self):
        assert square_transducer("ab").order == 2

    def test_all_transducers_collects_subcalls(self):
        square = square_transducer("ab")
        names = {machine.name for machine in square.all_transducers()}
        assert names == {"square", "square_append"}

    def test_subtransducers_direct_only(self):
        square = square_transducer("ab")
        assert [m.name for m in square.subtransducers()] == ["square_append"]


class TestWildcards:
    def _wildcard_machine(self) -> GeneralizedTransducer:
        builder = TransducerBuilder("wild", num_inputs=2, alphabet="ab")
        # Copy tape 1; once exhausted, drain tape 2 silently.
        builder.add_wildcard("q0", ("a", WILDCARD), "q0", (CONSUME, STAY), "a")
        builder.add_wildcard("q0", ("b", WILDCARD), "q0", (CONSUME, STAY), "b")
        builder.add_wildcard("q0", (END_MARKER, WILDCARD), "q0", (STAY, CONSUME), "")
        return builder.build("q0")

    def test_wildcard_matching(self):
        machine = self._wildcard_machine()
        assert machine("ab", "bb").text == "ab"

    def test_wildcards_never_consume_the_end_marker(self):
        machine = self._wildcard_machine()
        # Tape 2 empty: the drain entry would consume its end marker, so it
        # is skipped and the machine still terminates correctly.
        assert machine("ab", "").text == "ab"

    def test_exact_transitions_take_precedence(self):
        builder = TransducerBuilder("mix", num_inputs=1, alphabet="ab")
        builder.add("q0", ("a",), "q0", (CONSUME,), "x")
        builder.add_wildcard("q0", (WILDCARD,), "q0", (CONSUME,), "y")
        machine = builder.build("q0")
        assert machine("ab").text == "xy"

    def test_transition_items_rejects_wildcard_machines(self):
        machine = self._wildcard_machine()
        with pytest.raises(TransducerDefinitionError):
            machine.transition_items()

    def test_explicit_machines_export_their_table(self):
        machine = _single_symbol_copier()
        items = machine.transition_items()
        assert len(items) == 2
        assert items[0][0] == "q0"
