"""The durable storage engine: WAL framing, snapshots, crash recovery.

The tests are organized bottom-up: the WAL's damage policy (torn tails
truncate, mid-log corruption refuses), snapshot serialization and its
validation errors, then whole-directory recovery with fault injection at
every interesting crash point — after intent, after commit, mid-snapshot,
mid-append — and finally the durable server/CLI/TCP surfaces.
"""

import json
import os
import struct

import pytest

from repro.api.types import ApiError
from repro.cli import main as cli_main
from repro.engine.session import DatalogSession
from repro.errors import CorruptLogError, CorruptSnapshotError, StorageError
from repro.storage import open_session
from repro.storage import snapshot as snapshot_io
from repro.storage import wal as wal_io
from repro.storage.store import DurableStore, program_fingerprint
from repro.language.parser import parse_program

PROGRAM = "suffix(X[N:end]) :- r(X)."


def open_durable(data_dir, **kwargs):
    return open_session(PROGRAM, data_dir, **kwargs)


def model_facts(session):
    """Every (predicate, row-of-strings) in the resident model."""
    interpretation = session.interpretation
    return {
        (predicate, tuple(str(value) for value in row))
        for predicate in interpretation.predicates()
        for row in interpretation.tuples(predicate)
    }


def crash(session):
    """Simulate a crash: drop file handles without flushing any state."""
    session.storage.abandon()
    session._core.close()


def flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


# ----------------------------------------------------------------------
# WAL framing and damage policy
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_roundtrip_in_order(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir)
        records = [{"t": "intent", "batch": n, "facts": []} for n in range(1, 6)]
        for record in records:
            log.append(record, sync=True)
        log.close()
        seen = []
        wal_io.scan_segments(data_dir, lambda p, o, r: seen.append(r))
        assert seen == records

    def test_rotation_and_prune(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir, segment_max_bytes=1024)
        for batch in range(1, 40):
            log.append({"t": "intent", "batch": batch, "facts": [["r", ["x" * 40]]]})
            log.append({"t": "commit", "batch": batch, "applied": 1, "generation": batch})
        assert len(log.segments()) > 1
        closed_before = len(log.closed_segments())
        removed = log.prune(up_to_batch=20)
        assert removed  # every fully-old closed segment went away
        assert len(log.closed_segments()) < closed_before
        # The surviving log still replays cleanly and retains batch 21+.
        batches = []
        wal_io.scan_segments(data_dir, lambda p, o, r: batches.append(r["batch"]))
        assert max(batches) == 39
        log.close()

    def test_torn_tail_is_truncated_with_warning(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir)
        log.append({"t": "intent", "batch": 1, "facts": []})
        log.append({"t": "commit", "batch": 1, "applied": 0, "generation": 0})
        log.close()
        path = wal_io.segment_paths(data_dir)[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)  # tear the final frame mid-payload
        warnings, seen = [], []
        wal_io.scan_segments(data_dir, lambda p, o, r: seen.append(r), warnings)
        assert [r["t"] for r in seen] == ["intent"]
        assert len(warnings) == 1 and "truncated" in warnings[0]
        # The damage is repaired physically: a rescan is clean.
        warnings2 = []
        wal_io.scan_segments(data_dir, lambda p, o, r: None, warnings2)
        assert warnings2 == []

    def test_flipped_crc_at_tail_is_truncated(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir)
        log.append({"t": "intent", "batch": 1, "facts": []})
        log.append({"t": "commit", "batch": 1, "applied": 0, "generation": 0})
        log.close()
        path = wal_io.segment_paths(data_dir)[0]
        flip_byte(path, os.path.getsize(path) - 1)  # corrupt the final payload
        warnings, seen = [], []
        wal_io.scan_segments(data_dir, lambda p, o, r: seen.append(r), warnings)
        assert [r["t"] for r in seen] == ["intent"]
        assert len(warnings) == 1 and "corrupt" in warnings[0]

    def test_mid_log_corruption_is_a_hard_error(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir)
        for batch in (1, 2, 3):
            log.append({"t": "intent", "batch": batch, "facts": []})
        log.close()
        path = wal_io.segment_paths(data_dir)[0]
        flip_byte(path, struct.calcsize(">II") + 2)  # first frame's payload
        with pytest.raises(CorruptLogError) as excinfo:
            wal_io.scan_segments(data_dir, lambda p, o, r: None, [])
        message = str(excinfo.value)
        assert os.path.basename(path) in message and "byte 0" in message

    def test_damage_in_a_non_final_segment_is_a_hard_error(self, data_dir):
        log = wal_io.WriteAheadLog(data_dir, segment_max_bytes=1024)
        for batch in range(1, 30):
            log.append({"t": "intent", "batch": batch, "facts": [["r", ["y" * 60]]]})
        log.close()
        segments = wal_io.segment_paths(data_dir)
        assert len(segments) >= 2
        # Damage the *tail* of the first segment: tail position, wrong file.
        flip_byte(segments[0], os.path.getsize(segments[0]) - 1)
        with pytest.raises(CorruptLogError):
            wal_io.scan_segments(data_dir, lambda p, o, r: None, [])


# ----------------------------------------------------------------------
# Snapshot serialization and validation
# ----------------------------------------------------------------------
class TestSnapshots:
    ROWS = {"r": [("abc",)], "suffix": [("abc",), ("bc",), ("c",), ("",)]}
    BASE = [("r", ("abc",))]

    def write(self, directory, fingerprint="f" * 64, generation=3):
        return snapshot_io.write_snapshot(
            directory,
            generation=generation,
            batch=7,
            program_fingerprint=fingerprint,
            relation_rows=self.ROWS,
            base_facts=self.BASE,
            fact_count=5,
        )

    def test_roundtrip(self, data_dir):
        path = self.write(data_dir)
        header, facts, base = snapshot_io.load_snapshot(path, "f" * 64)
        assert header["generation"] == 3 and header["batch"] == 7
        assert sorted(facts) == sorted(
            (name, list(row)) for name, rows in self.ROWS.items() for row in rows
        )
        assert base == [["r", ["abc"]]] or base == [("r", ["abc"])]

    def test_corruption_names_file_and_offset(self, data_dir):
        path = self.write(data_dir)
        flip_byte(path, os.path.getsize(path) // 2)
        with pytest.raises(CorruptSnapshotError) as excinfo:
            snapshot_io.load_snapshot(path, "f" * 64)
        message = str(excinfo.value)
        assert path in message and "byte" in message

    def test_truncation_is_detected(self, data_dir):
        path = self.write(data_dir)
        # Chop the end marker off on a frame boundary: every remaining
        # frame checks out, so only the end-marker rule can catch it.
        end_frame = wal_io.encode_record({"end": True})
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - len(end_frame))
        with pytest.raises(CorruptSnapshotError, match="missing end marker"):
            snapshot_io.load_snapshot(path, "f" * 64)

    def test_format_version_skew_is_a_typed_error(self, data_dir):
        path = snapshot_io.snapshot_path(data_dir, 1)
        os.makedirs(data_dir, exist_ok=True)
        header = {"format": 99, "generation": 1, "batch": 1,
                  "program": "f" * 64, "facts": 0, "base_facts": 0}
        with open(path, "wb") as handle:
            handle.write(wal_io.encode_record(header))
            handle.write(wal_io.encode_record({"end": True}))
        with pytest.raises(StorageError, match="format version 99"):
            snapshot_io.read_header(path)
        with pytest.raises(StorageError, match="format version 99"):
            snapshot_io.load_snapshot(path)

    def test_program_fingerprint_mismatch(self, data_dir):
        path = self.write(data_dir, fingerprint="a" * 64)
        with pytest.raises(StorageError, match="different program"):
            snapshot_io.load_snapshot(path, "b" * 64)

    def test_retention_keeps_newest(self, data_dir):
        for generation in (1, 2, 3):
            self.write(data_dir, generation=generation)
        snapshot_io.prune_snapshots(data_dir, keep=2)
        kept = [g for g, _ in snapshot_io.list_snapshots(data_dir)]
        assert kept == [3, 2]


# ----------------------------------------------------------------------
# End-to-end durability and crash recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_graceful_close_recovers_from_snapshot_alone(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",)), ("r", ("ab",))])
        expected = model_facts(session)
        assert session.generation == 1
        session.close()  # writes the final snapshot

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.snapshot_generation == 1
        assert report.replayed_batches == 0 and report.dropped_batches == 0
        assert model_facts(recovered) == expected
        assert recovered.generation == 1
        recovered.close()

    def test_crash_replays_the_wal(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        session.add_facts([("r", ("acgt",))])
        expected = model_facts(session)
        crash(session)  # nothing flushed beyond the fsynced commits

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.cold_start  # no snapshot was ever written
        assert report.replayed_batches == 2
        assert model_facts(recovered) == expected
        assert recovered.generation == 2
        recovered.close()

    def test_intent_without_commit_is_dropped(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        expected = model_facts(session)
        # Crash between the intent record and the commit record: the
        # caller of that batch was never acknowledged.
        session.storage.begin_batch([("r", ("zzzz",))])
        crash(session)

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.dropped_batches == 1
        assert any("uncommitted" in w for w in report.warnings)
        assert model_facts(recovered) == expected  # no trace of "zzzz"
        recovered.close()

    def test_torn_wal_tail_recovers_with_warning(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        expected = model_facts(session)
        session.add_facts([("r", ("ab",))])
        crash(session)
        # Tear the fsynced commit record of the second batch: its intent
        # then has no commit, so the whole batch is dropped.
        wal_dir = os.path.join(data_dir, "wal")
        path = wal_io.segment_paths(wal_dir)[-1]
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.truncated
        assert report.replayed_batches == 1 and report.dropped_batches == 1
        assert model_facts(recovered) == expected
        recovered.close()

    def test_mid_log_corruption_refuses_recovery(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        session.add_facts([("r", ("ab",))])
        crash(session)
        wal_dir = os.path.join(data_dir, "wal")
        path = wal_io.segment_paths(wal_dir)[0]
        flip_byte(path, struct.calcsize(">II") + 4)  # first record's payload
        with pytest.raises(CorruptLogError):
            open_durable(data_dir)

    def test_checkpoint_bounds_replay_to_the_tail(self, data_dir):
        session = open_durable(
            data_dir, storage_options={"background_checkpoints": False}
        )
        session.add_facts([("r", ("abc",))])
        session.add_facts([("r", ("ab",))])
        session.storage.checkpoint()
        session.add_facts([("r", ("acgt",))])
        expected = model_facts(session)
        crash(session)

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.snapshot_generation == 2
        assert report.replayed_batches == 1  # only the post-checkpoint batch
        assert model_facts(recovered) == expected
        assert recovered.generation == 3
        recovered.close()

    def test_corrupt_newest_snapshot_falls_back_one(self, data_dir):
        session = open_durable(
            data_dir, storage_options={"background_checkpoints": False}
        )
        session.add_facts([("r", ("abc",))])
        session.storage.checkpoint()
        session.add_facts([("r", ("ab",))])
        session.storage.checkpoint()
        expected = model_facts(session)
        crash(session)
        newest = snapshot_io.list_snapshots(os.path.join(data_dir, "snapshots"))[0][1]
        flip_byte(newest, os.path.getsize(newest) // 2)

        recovered = open_durable(data_dir)
        report = recovered.storage.recovery
        assert report.skipped_snapshots == 1
        assert report.snapshot_generation == 1  # the older snapshot
        # Retention kept the WAL segments the older snapshot needs.
        assert model_facts(recovered) == expected
        assert recovered.generation == 2
        recovered.close()

    def test_wal_is_pruned_after_checkpoints(self, data_dir):
        session = open_durable(
            data_dir,
            storage_options={
                "background_checkpoints": False,
                "segment_max_bytes": 1024,
                "snapshots_kept": 1,
            },
        )
        for word in ("abc", "ab", "acgt", "ttagga", "cg"):
            session.add_facts([("r", (word,))])
        session.storage.checkpoint()
        stats = session.storage.stats()
        # One snapshot retained; every closed segment it supersedes is gone.
        assert stats["snapshot"]["count"] == 1
        assert stats["wal"]["segments"] <= 1
        expected = model_facts(session)
        session.close()
        recovered = open_durable(data_dir)
        assert model_facts(recovered) == expected
        recovered.close()

    def test_restarted_batch_ids_do_not_collide(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        session.close()
        recovered = open_durable(data_dir)
        recovered.add_facts([("r", ("ab",))])
        expected = model_facts(recovered)
        crash(recovered)
        third = open_durable(data_dir)
        assert model_facts(third) == expected
        third.close()

    def test_meta_rejects_a_different_program(self, data_dir):
        session = open_durable(data_dir)
        session.close()
        with pytest.raises(StorageError, match="different program"):
            open_session("other(X) :- r(X).", data_dir)

    def test_restore_state_requires_a_pristine_session(self):
        session = DatalogSession(PROGRAM)
        session.add_facts([("r", ("abc",))])
        with pytest.raises(StorageError):
            session.restore_state([("r", ["abc"])], [("r", ["abc"])])
        session.close()

    def test_database_bootstrap_is_absorbed_on_restart(self, data_dir):
        first = open_session(PROGRAM, data_dir, database={"r": ["abc"]})
        generation = first.generation
        expected = model_facts(first)
        first.close()
        second = open_session(PROGRAM, data_dir, database={"r": ["abc"]})
        # The same bootstrap facts are already durable: absorbed, no new
        # generation published.
        assert second.generation == generation
        assert model_facts(second) == expected
        second.close()

    def test_durability_stats_shape(self, data_dir):
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        stats = session.stats()["durability"]
        assert stats["generation"] == 1
        assert stats["wal"]["intents"] == 1 and stats["wal"]["commits"] == 1
        assert stats["wal"]["syncs"] >= 1
        assert "recovery" in stats
        session.close()


# ----------------------------------------------------------------------
# The durable server and API surfaces
# ----------------------------------------------------------------------
class TestDurableServer:
    def test_generation_survives_restart(self, data_dir):
        from repro.engine.server import DatalogServer

        server = DatalogServer(PROGRAM, data_dir=data_dir)
        server.add_fact("r", "abc")
        server.add_fact("r", "acgt")
        generation = server.generation
        assert generation == 2 and server.durable
        server.close()

        reopened = DatalogServer(PROGRAM, data_dir=data_dir)
        assert reopened.generation == generation
        assert reopened.snapshot.fact_count() > 0
        # The generation keeps advancing from where it left off.
        reopened.add_fact("r", "cg")
        assert reopened.generation == generation + 1
        reopened.close()

    def test_server_checkpoint_is_exposed(self, data_dir):
        from repro.engine.server import DatalogServer

        server = DatalogServer(PROGRAM, data_dir=data_dir)
        server.add_fact("r", "abc")
        path = server.checkpoint()
        assert os.path.exists(path)
        server.close()
        memory_server = DatalogServer(PROGRAM)
        with pytest.raises(StorageError, match="data_dir"):
            memory_server.checkpoint()
        memory_server.close()

    def test_durability_travels_the_versioned_api(self, data_dir):
        from repro.api.transport import serve_tcp
        from repro.api.client import DatalogClient

        transport = serve_tcp(PROGRAM, data_dir=data_dir)
        host, port = transport.address
        try:
            with DatalogClient(host, port) as client:
                client.add_fact("r", "abc")
                stats = client.stats()
                assert stats.durability is not None
                assert stats.durability["generation"] == 1
                assert client.durability()["wal"]["commits"] == 1
        finally:
            transport.close()
        # close() flushed the WAL and wrote the final snapshot.
        assert snapshot_io.list_snapshots(os.path.join(data_dir, "snapshots"))

    def test_storage_error_codes_are_typed_on_the_wire(self):
        error = ApiError.from_exception(CorruptLogError("wal-00000001.log bad"))
        assert error.code == "corrupt_log"
        with pytest.raises(CorruptLogError):
            error.raise_()
        error = ApiError.from_exception(StorageError("boom"))
        assert error.code == "storage_error"
        with pytest.raises(StorageError):
            error.raise_()


# ----------------------------------------------------------------------
# CLI: --data-dir serving plus the snapshot/restore subcommands
# ----------------------------------------------------------------------
class TestStorageCli:
    def run_cli(self, *argv, tmp_path):
        import io

        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def write_program(self, tmp_path):
        path = tmp_path / "prog.sdl"
        path.write_text(PROGRAM, encoding="utf-8")
        return str(path)

    def test_serve_snapshot_restore_cycle(self, tmp_path, data_dir):
        program = self.write_program(tmp_path)
        script = tmp_path / "cmds.txt"
        script.write_text("add r abc\nquit\n", encoding="utf-8")
        code, output = self.run_cli(
            "serve", program, "--data-dir", data_dir,
            "--script", str(script), tmp_path=tmp_path,
        )
        assert code == 0 and "durable" in output

        code, output = self.run_cli(
            "snapshot", program, "--data-dir", data_dir, tmp_path=tmp_path
        )
        assert code == 0 and "snapshot written" in output

        dump = tmp_path / "dump.json"
        code, output = self.run_cli(
            "restore", program, "--data-dir", data_dir,
            "--out", str(dump), tmp_path=tmp_path,
        )
        assert code == 0 and "generation 1" in output
        with open(dump, encoding="utf-8") as handle:
            assert json.load(handle) == {"r": [["abc"]]}

    def test_restore_json_reports_recovery(self, tmp_path, data_dir):
        program = self.write_program(tmp_path)
        session = open_durable(data_dir)
        session.add_facts([("r", ("abc",))])
        crash(session)
        code, output = self.run_cli(
            "restore", program, "--data-dir", data_dir, "--json",
            tmp_path=tmp_path,
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["replayed_batches"] == 1
        assert payload["facts"] == 5 and payload["generation"] == 1

    def test_wrong_program_is_a_clean_cli_error(self, tmp_path, data_dir):
        session = open_durable(data_dir)
        session.close()
        other = tmp_path / "other.sdl"
        other.write_text("other(X) :- r(X).", encoding="utf-8")
        code, output = self.run_cli(
            "restore", str(other), "--data-dir", data_dir, tmp_path=tmp_path
        )
        assert code == 1 and "different program" in output


# ----------------------------------------------------------------------
# Package surface
# ----------------------------------------------------------------------
def test_public_exports():
    import repro
    import repro.engine

    assert repro.__version__ == "1.4.0"
    assert repro.open_session is open_session
    assert repro.StorageError is StorageError
    assert repro.engine.open_session is open_session
    assert repro.engine.StorageError is StorageError


def test_fingerprint_is_canonical():
    program = parse_program(PROGRAM)
    assert program_fingerprint(program) == program_fingerprint(
        parse_program("suffix(X[N:end])   :-   r(X).")
    )
    assert program_fingerprint(program) != program_fingerprint(
        parse_program("suffix(X[N:end]) :- q(X).")
    )


def test_store_refuses_use_after_close(data_dir):
    program = parse_program(PROGRAM)
    store = DurableStore(data_dir, program)
    store.close(final_snapshot=False)
    with pytest.raises(StorageError, match="closed"):
        store.begin_batch([("r", ("abc",))])
