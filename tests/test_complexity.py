"""Tests for the static complexity analysis (Theorems 3, 8, 9 as a report).

The analysis classifies a program into the paper's guarantee classes
(PTIME with fixed domain, PTIME, elementary, or no guarantee), reports the
per-stratum growth, and produces a numeric model-size envelope; the tests
check the classification of every paper program and verify that measured
minimal-model sizes stay inside the envelope on small databases.
"""

import pytest

from repro import compute_least_fixpoint
from repro.analysis.complexity import (
    DataComplexityClass,
    GROWTH_HYPEREXPONENTIAL,
    GROWTH_POLYNOMIAL,
    analyze_complexity,
    complexity_levers,
)
from repro.core import paper_programs
from repro.language.parser import parse_program
from repro.workloads import string_database


# ----------------------------------------------------------------------
# Classification of the paper's programs
# ----------------------------------------------------------------------
class TestClassification:
    def test_non_constructive_programs_get_the_theorem_3_class(self):
        for program in (
            paper_programs.suffixes_program(),
            paper_programs.anbncn_program(),
            paper_programs.rep1_program(),
        ):
            report = analyze_complexity(program)
            assert report.data_complexity is DataComplexityClass.PTIME_FIXED_DOMAIN
            assert report.non_constructive
            assert report.data_complexity.is_tractable()

    def test_stratified_construction_is_ptime(self):
        report = analyze_complexity(paper_programs.stratified_construction_program())
        assert report.data_complexity is DataComplexityClass.PTIME
        assert report.strongly_safe
        assert not report.non_constructive
        assert report.constructive_strata == 2

    def test_genome_program_is_ptime(self):
        program, catalog = paper_programs.genome_program()
        report = analyze_complexity(program, catalog.orders())
        assert report.data_complexity is DataComplexityClass.PTIME
        assert report.order == 1

    def test_unsafe_programs_have_no_guarantee(self):
        for program in (
            paper_programs.rep2_program(),
            paper_programs.echo_program(),
            paper_programs.reverse_program(),
        ):
            report = analyze_complexity(program)
            assert report.data_complexity is DataComplexityClass.NO_GUARANTEE
            assert report.model_size_envelope(5) is None
            assert report.notes

    def test_figure_3_programs(self):
        p1, p2, p3 = paper_programs.figure_3_programs()
        orders = paper_programs.figure_3_catalog().orders()
        assert analyze_complexity(p1, orders).data_complexity is DataComplexityClass.PTIME
        assert (
            analyze_complexity(p2, orders).data_complexity
            is DataComplexityClass.NO_GUARANTEE
        )
        assert (
            analyze_complexity(p3, orders).data_complexity
            is DataComplexityClass.NO_GUARANTEE
        )

    def test_order_3_program_is_elementary(self):
        program = parse_program("big(@hyper(X)) :- r(X).")
        orders = {"hyper": 3}
        report = analyze_complexity(program, orders)
        assert report.data_complexity is DataComplexityClass.ELEMENTARY
        assert not report.data_complexity.is_tractable()
        assert report.hyperexponential_level
        assert any(s.growth == GROWTH_HYPEREXPONENTIAL for s in report.strata)

    def test_order_2_program_is_ptime_with_higher_degree(self):
        program = parse_program("sq(@square(X)) :- r(X).")
        report = analyze_complexity(program, {"square": 2})
        assert report.data_complexity is DataComplexityClass.PTIME
        assert any(s.growth == GROWTH_POLYNOMIAL for s in report.strata)
        baseline = analyze_complexity(parse_program("p(X) :- r(X)."))
        assert report.envelope_degree > baseline.envelope_degree

    def test_describe_mentions_the_class_and_strata(self):
        report = analyze_complexity(paper_programs.stratified_construction_program())
        text = report.describe()
        assert "PTIME" in text
        assert "stratum" in text


# ----------------------------------------------------------------------
# Envelopes against measured model sizes
# ----------------------------------------------------------------------
class TestEnvelopes:
    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_non_constructive_model_stays_inside_the_envelope(self, size):
        program = paper_programs.anbncn_program()
        report = analyze_complexity(program)
        database = string_database(size, length=4, alphabet="abc", seed=size)
        result = compute_least_fixpoint(program, database)
        envelope = report.model_size_envelope(database.size())
        assert result.interpretation.size() <= envelope

    @pytest.mark.parametrize("size", [2, 4])
    def test_stratified_construction_model_stays_inside_the_envelope(self, size):
        program = paper_programs.stratified_construction_program()
        report = analyze_complexity(program)
        database = string_database(size, length=3, seed=size)
        result = compute_least_fixpoint(program, database)
        envelope = report.model_size_envelope(database.size())
        assert result.interpretation.size() <= envelope

    def test_elementary_envelope_is_finite_and_enormous(self):
        program = parse_program("big(@hyper(X)) :- r(X).")
        report = analyze_complexity(program, {"hyper": 3})
        envelope = report.model_size_envelope(3)
        assert envelope is not None
        assert envelope > 10**9


# ----------------------------------------------------------------------
# Levers
# ----------------------------------------------------------------------
class TestLevers:
    def test_unsafe_program_gets_a_cycle_breaking_suggestion(self):
        suggestions = complexity_levers(paper_programs.rep2_program())
        assert any("constructive cycle" in s for s in suggestions)

    def test_order_3_program_gets_an_order_lowering_suggestion(self):
        program = parse_program("big(@hyper(X)) :- r(X).")
        suggestions = complexity_levers(program, {"hyper": 3})
        assert any("order-2" in s for s in suggestions)
        assert any("hyper" in s for s in suggestions)

    def test_ptime_constructive_program_gets_the_theorem_3_note(self):
        suggestions = complexity_levers(paper_programs.stratified_construction_program())
        assert any("Theorem 3" in s for s in suggestions)

    def test_non_constructive_program_needs_no_change(self):
        suggestions = complexity_levers(paper_programs.suffixes_program())
        assert suggestions == ["no cheaper class is available without changing the query"]
