"""Tests for the sequence substrate (Section 2.1 and Section 3.2 semantics)."""

import pytest

from repro.errors import SequenceIndexError
from repro.sequences import EMPTY, Sequence, as_sequence, subsequences
from repro.sequences.sequence import max_subsequence_count


class TestSequenceBasics:
    def test_construction_from_string(self):
        assert Sequence("abc").text == "abc"

    def test_construction_from_iterable(self):
        assert Sequence(["a", "b"]).text == "ab"

    def test_construction_from_sequence(self):
        original = Sequence("xy")
        assert Sequence(original) == original

    def test_empty_sequence_is_falsy(self):
        assert not Sequence("")
        assert Sequence("a")

    def test_equality_with_string(self):
        assert Sequence("abc") == "abc"
        assert Sequence("abc") != "abd"

    def test_hashable_and_usable_in_sets(self):
        assert len({Sequence("a"), Sequence("a"), Sequence("b")}) == 2

    def test_len_and_iteration(self):
        assert len(Sequence("abcd")) == 4
        assert list(Sequence("ab")) == ["a", "b"]

    def test_concatenation_operator(self):
        assert (Sequence("ab") + Sequence("cd")).text == "abcd"
        assert (Sequence("ab") + "cd").text == "abcd"
        assert ("xy" + Sequence("z")).text == "xyz"

    def test_repetition(self):
        assert (Sequence("ab") * 3).text == "ababab"

    def test_element_is_one_based(self):
        assert Sequence("abc").element(1) == "a"
        assert Sequence("abc").element(3) == "c"

    def test_element_out_of_range_raises(self):
        with pytest.raises(SequenceIndexError):
            Sequence("abc").element(0)
        with pytest.raises(SequenceIndexError):
            Sequence("abc").element(4)

    def test_reverse(self):
        assert Sequence("110000").reverse().text == "000011"

    def test_ordering(self):
        assert Sequence("ab") < Sequence("b")


class TestSubsequenceSemantics:
    """The interpretation of indexed terms from Section 3.2 (the uvwxy table)."""

    @pytest.mark.parametrize(
        "start, stop, expected",
        [
            (3, 6, None),      # beyond the end: undefined
            (3, 5, "wxy"),
            (3, 4, "wx"),
            (3, 3, "w"),
            (3, 2, ""),        # n1 == n2 + 1: the empty sequence
            (3, 1, None),      # n1 > n2 + 1: undefined
        ],
    )
    def test_uvwxy_table(self, start, stop, expected):
        value = Sequence("uvwxy").subsequence(start, stop)
        if expected is None:
            assert value is None
        else:
            assert value is not None and value.text == expected

    def test_zero_start_is_undefined(self):
        assert Sequence("abc").subsequence(0, 2) is None

    def test_full_range(self):
        assert Sequence("abc").subsequence(1, 3) == Sequence("abc")

    def test_empty_sequence_only_has_empty_subsequence(self):
        assert Sequence("").subsequence(1, 0) == EMPTY
        assert Sequence("").subsequence(1, 1) is None

    def test_prefix_and_suffix_helpers(self):
        s = Sequence("abcde")
        assert s.prefix(2) == Sequence("ab")
        assert s.suffix(4) == Sequence("de")
        assert s.prefix(0) == EMPTY
        assert s.suffix(6) == EMPTY

    def test_is_subsequence_of_is_contiguous(self):
        assert Sequence("bc").is_subsequence_of(Sequence("abcd"))
        assert not Sequence("bd").is_subsequence_of(Sequence("abcd"))

    def test_count_occurrences_overlapping(self):
        assert Sequence("aaaa").count_occurrences("aa") == 3

    def test_occurrence_positions(self):
        assert Sequence("abab").occurrence_positions("ab") == [1, 3]


class TestSubsequencesEnumeration:
    def test_abc_example_from_section_2_1(self):
        assert [s.text for s in subsequences("abc")] == [
            "", "a", "b", "c", "ab", "bc", "abc",
        ]

    def test_count_bound_from_section_2_1(self):
        # At most k(k+1)/2 + 1 distinct contiguous subsequences.
        for word in ["", "a", "ab", "abc", "aaaa", "abab"]:
            assert len(subsequences(word)) <= max_subsequence_count(len(word))

    def test_distinct_symbols_reach_the_bound(self):
        assert len(subsequences("abcd")) == max_subsequence_count(4)

    def test_repeated_symbols_fall_below_the_bound(self):
        assert len(subsequences("aaa")) == 4  # "", a, aa, aaa

    def test_as_sequence_coercion(self):
        assert as_sequence("ab") == Sequence("ab")
        assert as_sequence(Sequence("ab")) == Sequence("ab")


class TestInternTable:
    def test_interning_is_identity(self):
        assert Sequence("intern-me") is Sequence("intern-me")

    def test_stats_grow_with_distinct_sequences(self):
        before = Sequence.intern_stats()
        Sequence("a-sequence-surely-not-seen-before")
        after = Sequence.intern_stats()
        assert after["size"] == before["size"] + 1
        assert (
            after["total_symbols"]
            == before["total_symbols"] + len("a-sequence-surely-not-seen-before")
        )
        # The creation went through the slow path exactly once.
        assert after["inserts"] == before["inserts"] + 1
        assert after["lock_acquisitions"] >= before["lock_acquisitions"] + 1
        # Re-interning the same text grows nothing and stays lock-free:
        # only the fast-path counter moves.
        Sequence("a-sequence-surely-not-seen-before")
        repeat = Sequence.intern_stats()
        assert repeat["size"] == after["size"]
        assert repeat["total_symbols"] == after["total_symbols"]
        assert repeat["inserts"] == after["inserts"]
        assert repeat["lock_acquisitions"] == after["lock_acquisitions"]
        assert repeat["fast_hits"] >= after["fast_hits"] + 1

    def test_contention_counters_present_and_consistent(self):
        stats = Sequence.intern_stats()
        for key in (
            "size", "total_symbols", "fast_hits", "lock_acquisitions",
            "contended_hits", "inserts",
        ):
            assert isinstance(stats[key], int) and stats[key] >= 0
        # Every slow-path entry either inserted or lost a race; counters are
        # unsynchronised diagnostics, so allow the small skew threads cause.
        assert stats["inserts"] + stats["contended_hits"] <= stats["lock_acquisitions"] + 1

    def test_concurrent_interning_yields_one_object_per_text(self):
        import threading

        texts = [f"threaded-{i % 25}" for i in range(200)]
        results = [[] for _ in range(8)]
        barrier = threading.Barrier(8)

        def work(bucket):
            barrier.wait()  # maximise overlap on the check-then-insert
            for text in texts:
                bucket.append(Sequence(text))

        threads = [
            threading.Thread(target=work, args=(results[i],)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        canonical = {text: Sequence(text) for text in texts}
        for bucket in results:
            for text, sequence in zip(texts, bucket):
                assert sequence is canonical[text]
                assert sequence.intern_id == canonical[text].intern_id
