"""Tests for the term language (Section 3.1, Section 7.1)."""

import pytest

from repro.errors import ValidationError
from repro.language.terms import (
    ConcatTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexVariable,
    IndexedTerm,
    SequenceVariable,
    TransducerTerm,
    constant,
    seq_var,
)


class TestIndexTerms:
    def test_constant_value(self):
        assert IndexConstant(3).value == 3

    def test_negative_constant_rejected(self):
        with pytest.raises(ValidationError):
            IndexConstant(-1)

    def test_variable_naming_convention(self):
        assert IndexVariable("N").name == "N"
        with pytest.raises(ValidationError):
            IndexVariable("n")

    def test_sum_and_difference(self):
        term = IndexSum(IndexVariable("N"), IndexConstant(1), "+")
        assert str(term) == "N+1"
        assert term.index_variables() == frozenset({"N"})

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValidationError):
            IndexSum(IndexConstant(1), IndexConstant(2), "*")

    def test_end_marker(self):
        assert End().uses_end()
        assert IndexSum(End(), IndexConstant(5), "-").uses_end()
        assert not IndexConstant(1).uses_end()

    def test_equality_and_hash(self):
        assert IndexSum(IndexVariable("N"), IndexConstant(1), "+") == IndexSum(
            IndexVariable("N"), IndexConstant(1), "+"
        )
        assert End() == End()
        assert hash(IndexConstant(2)) == hash(IndexConstant(2))


class TestSequenceTerms:
    def test_constant_term(self):
        term = constant("acgt")
        assert term.value.text == "acgt"
        assert not term.is_constructive()
        assert str(term) == '"acgt"'

    def test_sequence_variable(self):
        variable = seq_var("X")
        assert variable.sequence_variables() == frozenset({"X"})
        with pytest.raises(ValidationError):
            SequenceVariable("x")

    def test_indexed_term_collects_variables(self):
        term = IndexedTerm(seq_var("X"), IndexVariable("N"), End())
        assert term.sequence_variables() == frozenset({"X"})
        assert term.index_variables() == frozenset({"N"})
        assert not term.is_constructive()

    def test_indexed_term_single_position_shorthand(self):
        term = IndexedTerm(seq_var("X"), IndexConstant(1))
        assert term.is_single_position()
        assert str(term) == "X[1]"

    def test_nested_indexed_terms_rejected(self):
        """The paper excludes terms such as S[1:N][M:end]."""
        inner = IndexedTerm(seq_var("S"), IndexConstant(1), IndexVariable("N"))
        with pytest.raises(ValidationError):
            IndexedTerm(inner, IndexVariable("M"), End())

    def test_indexing_constructive_terms_rejected(self):
        """The paper excludes terms such as (S1 ++ S2)[1:N]."""
        concatenation = ConcatTerm([seq_var("S1"), seq_var("S2")])
        with pytest.raises(ValidationError):
            IndexedTerm(concatenation, IndexConstant(1), IndexVariable("N"))

    def test_concatenation_is_constructive_and_flattens(self):
        term = ConcatTerm([seq_var("X"), ConcatTerm([seq_var("Y"), constant("a")])])
        assert term.is_constructive()
        assert len(term.parts) == 3
        assert term.sequence_variables() == frozenset({"X", "Y"})

    def test_concatenation_associativity_via_flattening(self):
        left = ConcatTerm([ConcatTerm([seq_var("A"), seq_var("B")]), seq_var("C")])
        right = ConcatTerm([seq_var("A"), ConcatTerm([seq_var("B"), seq_var("C")])])
        assert left == right

    def test_concatenation_needs_two_parts(self):
        with pytest.raises(ValidationError):
            ConcatTerm([seq_var("X")])

    def test_transducer_term(self):
        term = TransducerTerm("append", [seq_var("X"), seq_var("Y")])
        assert term.is_constructive()
        assert term.transducer_names() == frozenset({"append"})
        assert str(term) == "@append(X, Y)"

    def test_transducer_terms_compose(self):
        inner = TransducerTerm("t2", [seq_var("Y")])
        outer = TransducerTerm("t1", [seq_var("X"), inner])
        assert outer.transducer_names() == frozenset({"t1", "t2"})
        assert outer.sequence_variables() == frozenset({"X", "Y"})

    def test_transducer_term_rejects_concatenation_arguments(self):
        with pytest.raises(ValidationError):
            TransducerTerm("t", [ConcatTerm([seq_var("X"), seq_var("Y")])])

    def test_transducer_term_needs_arguments(self):
        with pytest.raises(ValidationError):
            TransducerTerm("t", [])

    def test_string_rendering_of_ranges(self):
        term = IndexedTerm(seq_var("X"), IndexVariable("N"), End())
        assert str(term) == "X[N:end]"
