"""Tests for finiteness: Examples 1.5/1.6, Section 5, Theorem 2 machinery."""

import pytest

from repro.analysis import FinitenessVerdict, classify_finiteness
from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.limits import EvaluationLimits
from repro.errors import FixpointNotReached
from repro.turing import machines
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog


class TestFiniteExamples:
    def test_rep1_terminates(self, test_limits):
        db = SequenceDatabase.from_dict({"r": ["ababab"]})
        result = compute_least_fixpoint(
            paper_programs.rep1_program(), db, limits=test_limits
        )
        assert result.new_facts_per_iteration[-1] == 0

    def test_non_constructive_fragment_never_grows_the_domain(self, test_limits):
        db = SequenceDatabase.from_dict({"r": ["aabbcc", "abc"]})
        result = compute_least_fixpoint(
            paper_programs.anbncn_program(), db, limits=test_limits
        )
        assert result.model_size == db.size()


class TestInfiniteExamples:
    def test_rep2_hits_the_limits(self, test_limits):
        """Example 1.5: constructive recursion makes the fixpoint infinite."""
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        with pytest.raises(FixpointNotReached) as excinfo:
            compute_least_fixpoint(paper_programs.rep2_program(), db, limits=test_limits)
        assert excinfo.value.partial is not None

    def test_echo_hits_the_limits(self):
        """Example 1.6: the answer is finite but the least fixpoint is not.

        Tiny limits keep this fast: the fixpoint is infinite under any
        budget, so a bigger one only buys junk derivations before the trip.
        """
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        echo_limits = EvaluationLimits(
            max_iterations=10, max_facts=8_000, max_domain_size=8_000,
            max_sequence_length=64,
        )
        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(paper_programs.echo_program(), db, limits=echo_limits)

    def test_echo_partial_fixpoint_contains_the_intended_answer(self):
        """Even though evaluation is cut off, the echo of the stored sequence
        is derived before the limits trigger (the answer itself is finite)."""
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        limits = EvaluationLimits(
            max_iterations=6, max_facts=100_000, max_domain_size=100_000,
            max_sequence_length=64,
        )
        try:
            result = compute_least_fixpoint(
                paper_programs.echo_program(), db, limits=limits
            )
            interpretation = result.interpretation
        except FixpointNotReached as error:
            interpretation = error.partial
        answers = evaluate_query(interpretation, "answer(X, Y)").texts()
        assert ("ab", "aabb") in answers


class TestStaticClassifier:
    def test_rep1_is_classified_finite(self):
        report = classify_finiteness(paper_programs.rep1_program())
        assert report.verdict is FinitenessVerdict.FINITE_NON_CONSTRUCTIVE
        assert report.verdict.is_finite()

    def test_rep2_is_classified_possibly_infinite(self):
        report = classify_finiteness(paper_programs.rep2_program())
        assert report.verdict is FinitenessVerdict.POSSIBLY_INFINITE
        assert not report.verdict.is_finite()

    def test_echo_is_classified_possibly_infinite(self):
        report = classify_finiteness(paper_programs.echo_program())
        assert report.verdict is FinitenessVerdict.POSSIBLY_INFINITE

    def test_stratified_construction_is_classified_finite(self):
        report = classify_finiteness(paper_programs.stratified_construction_program())
        assert report.verdict is FinitenessVerdict.FINITE_STRONGLY_SAFE

    def test_genome_program_is_classified_finite(self):
        program, catalog = paper_programs.genome_program()
        report = classify_finiteness(program, catalog.orders())
        assert report.verdict is FinitenessVerdict.FINITE_STRONGLY_SAFE


class TestTheorem2Machinery:
    """Theorem 2 reduces halting to finiteness via the Theorem 1 compiler:
    the compiled program has a finite fixpoint iff the machine halts."""

    def test_halting_machine_gives_finite_fixpoint(self, test_limits):
        program = compile_tm_to_sequence_datalog(machines.increment_machine())
        db = SequenceDatabase.single_input("101")
        result = compute_least_fixpoint(program, db, limits=test_limits)
        assert result.new_facts_per_iteration[-1] == 0

    def test_looping_machine_gives_infinite_fixpoint(self):
        program = compile_tm_to_sequence_datalog(machines.looping_machine())
        db = SequenceDatabase.single_input("10")
        limits = EvaluationLimits(
            max_iterations=40, max_facts=20_000, max_domain_size=20_000,
            max_sequence_length=60,
        )
        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(program, db, limits=limits)

    def test_looping_machine_generates_ever_longer_sequences(self):
        """The proof of Theorem 2: a diverging machine moves its head right
        forever, so the compiled program derives longer and longer tapes."""
        program = compile_tm_to_sequence_datalog(machines.looping_machine())
        db = SequenceDatabase.single_input("1")
        limits = EvaluationLimits(
            max_iterations=15, max_facts=50_000, max_domain_size=50_000,
            max_sequence_length=None,
        )
        with pytest.raises(FixpointNotReached) as excinfo:
            compute_least_fixpoint(program, db, limits=limits)
        partial = excinfo.value.partial
        longest = max(len(s) for s in partial.domain.sequences())
        assert longest > len("1") + 2


class TestLimitsBehaviour:
    def test_iteration_limit(self):
        limits = EvaluationLimits(max_iterations=1)
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(paper_programs.reverse_program(), db, limits=limits)

    def test_sequence_length_limit(self):
        limits = EvaluationLimits(max_sequence_length=3, max_iterations=100)
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(paper_programs.rep2_program(), db, limits=limits)

    def test_exception_reports_iterations(self, test_limits):
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        with pytest.raises(FixpointNotReached) as excinfo:
            compute_least_fixpoint(paper_programs.rep2_program(), db, limits=test_limits)
        assert excinfo.value.iterations >= 1
