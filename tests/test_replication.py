"""Tests for leader/follower replication (:mod:`repro.replication`).

Covers the stack bottom-up: the hub's generation window (offsets, floor,
trimming), the follower's bootstrap/catch-up/divergence behaviour over a
live TCP leader, fault injection (connections cut mid-bootstrap, leader
restarts), the ``not_leader`` write redirect at both the server and wire
level, lag-bounded read-your-writes, the fleet-aware ``RoutingClient``,
and the CLI surface (``serve --follow``, ``repro route``, the ``listening``
envelope that fixes port-0 reporting in ``--json`` mode).
"""

import io
import json
import socket
import threading
import time

import pytest

from repro.api.client import DatalogClient
from repro.api.protocol import recv_json, send_json
from repro.api.service import DatalogService
from repro.api.transport import serve_tcp
from repro.api.types import SubscribeRequest, encode_request
from repro.cli import main
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import (
    LagTimeoutError,
    NotLeaderError,
    RemoteApiError,
    ReplicationError,
)
from repro.replication import FollowerServer, ReplicationHub, RoutingClient
from repro.storage.snapshot import SnapshotAssembler

PROGRAM = "pair(X, Y) :- base(X), base(Y).\n"
SUFFIX_PROGRAM = "suffix(X[N:end]) :- r(X).\n"


def wait_until(predicate, timeout=10.0, message="condition never became true"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(message)
        time.sleep(0.005)


def model_rows(backend, patterns):
    """Canonical sorted rows per pattern (fact-for-fact comparisons)."""
    return {
        pattern: sorted(tuple(row) for row in backend.query(pattern).rows)
        for pattern in patterns
    }


@pytest.fixture
def leader():
    """A live TCP leader over PROGRAM with two base facts."""
    transport = serve_tcp(PROGRAM, {"base": ["a", "b"]}, port=0)
    yield transport
    transport.close()


@pytest.fixture
def follower_of():
    """Factory for followers, all closed at teardown."""
    followers = []

    def start(transport, program=PROGRAM, **options):
        options.setdefault("reconnect_min_seconds", 0.01)
        options.setdefault("reconnect_max_seconds", 0.1)
        follower = FollowerServer(program, transport.address, **options)
        followers.append(follower)
        return follower

    yield start
    for follower in followers:
        follower.close()


class FlakyProxy:
    """A TCP proxy that cuts the first connection after N upstream bytes.

    Deterministic fault injection for mid-bootstrap kills: the follower
    dials the proxy, the proxy pipes to the real leader, and the first
    connection dies once ``cut_after_bytes`` of leader->follower data
    have flowed.  Later connections pass through untouched.
    """

    def __init__(self, upstream, cut_after_bytes):
        self._upstream = upstream
        self._cut_after = cut_after_bytes
        self._cut_done = threading.Event()
        self.connections = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]
        self._closed = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self):
        while True:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(
                target=self._pipe_connection, args=(downstream,), daemon=True
            ).start()

    def _pipe_connection(self, downstream):
        limit = None if self._cut_done.is_set() else self._cut_after
        self._cut_done.set()
        try:
            upstream = socket.create_connection(self._upstream, timeout=5)
        except OSError:
            downstream.close()
            return

        def pump(source, sink, budget):
            moved = 0
            try:
                while True:
                    chunk = source.recv(65536)
                    if not chunk:
                        break
                    if budget is not None and moved + len(chunk) > budget:
                        chunk = chunk[: budget - moved]
                        sink.sendall(chunk)
                        break
                    sink.sendall(chunk)
                    moved += len(chunk)
            except OSError:
                pass
            finally:
                for sock in (source, sink):
                    # shutdown() pushes the FIN out even while the twin
                    # pump thread still blocks in recv() on the same fd
                    # (a bare close() defers it until that recv returns).
                    for closer in (
                        lambda s=sock: s.shutdown(socket.SHUT_RDWR),
                        lambda s=sock: s.close(),
                    ):
                        try:
                            closer()
                        except OSError:
                            pass

        threading.Thread(
            target=pump, args=(downstream, upstream, None), daemon=True
        ).start()
        pump(upstream, downstream, limit)

    def close(self):
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# The hub's generation window
# ----------------------------------------------------------------------
class TestReplicationHub:
    def test_floor_anchors_at_attach_and_window_grows(self):
        server = DatalogServer(PROGRAM, {"base": ["a"]})
        try:
            hub = ReplicationHub(server)
            anchor = server.generation
            assert hub.latest == anchor
            assert hub.covers(anchor)
            assert hub.frames_since(anchor) == []
            server.add_facts([("base", ("b",))])
            server.add_facts([("base", ("c",))])
            frames = hub.frames_since(anchor)
            assert [frame.generation for frame in frames] == [
                anchor + 1,
                anchor + 2,
            ]
            # Each frame carries exactly its publish's base batch and the
            # leader's total fact count at that generation.
            assert frames[0].facts == (("base", ("b",)),)
            assert frames[1].facts == (("base", ("c",)),)
            assert frames[1].fact_count == server.snapshot.fact_count()
            assert hub.frames_since(anchor + 2) == []
        finally:
            server.close()

    def test_window_trims_and_floor_advances(self):
        server = DatalogServer(PROGRAM, {"base": ["a"]})
        try:
            hub = ReplicationHub(server, max_entries=2)
            anchor = server.generation
            for value in ("b", "c", "d", "e"):
                server.add_facts([("base", (value,))])
            assert hub.latest == anchor + 4
            # Only the last two publishes are retained.
            assert hub.frames_since(anchor) is None, "below the floor"
            assert not hub.covers(anchor + 1)
            frames = hub.frames_since(anchor + 2)
            assert [frame.generation for frame in frames] == [
                anchor + 3,
                anchor + 4,
            ]
        finally:
            server.close()

    def test_bootstrap_records_assemble_into_the_leader_model(self):
        server = DatalogServer(PROGRAM, {"base": ["a", "b"]})
        try:
            server.add_facts([("base", ("c",))])
            hub = ReplicationHub(server)
            capture = hub.capture_bootstrap()
            assembler = SnapshotAssembler("test capture", hub.fingerprint)
            for index, record in enumerate(capture.records):
                assembler.feed(record, where=f"record {index}")
            header, facts, base_facts = assembler.finish()
            assert header["generation"] == server.generation
            assert len(facts) == server.snapshot.fact_count()
            _, _, leader_base, _ = server.capture_model()
            assert len(base_facts) == len(leader_base)
        finally:
            server.close()

    def test_fingerprint_mismatch_refused_during_assembly(self):
        server = DatalogServer(PROGRAM, {"base": ["a"]})
        try:
            hub = ReplicationHub(server)
            capture = hub.capture_bootstrap()
            assembler = SnapshotAssembler("test capture", "0" * 64)
            with pytest.raises(Exception, match="fingerprint"):
                for record in capture.records:
                    assembler.feed(record)
        finally:
            server.close()


# ----------------------------------------------------------------------
# Follower: bootstrap, catch-up, identity
# ----------------------------------------------------------------------
class TestFollowerReplication:
    def test_fresh_follower_bootstraps_once_then_streams(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        wait_until(lambda: follower.generation >= leader.backend.generation)
        with DatalogClient(*leader.address) as client:
            for value in ("c", "d", "e"):
                generation = client.add_facts([("base", (value,))]).generation
                wait_until(lambda: follower.generation >= generation)
        stats = follower.stats()["replication"]
        assert stats["bootstraps"] == 1
        assert stats["frames_applied"] == 3
        assert stats["connects"] == 1
        assert stats["lag"] == 0

    def test_identical_fact_for_fact_at_equal_generations(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        with DatalogClient(*leader.address) as client:
            generation = client.add_facts(
                [("base", ("c",)), ("base", ("d",))]
            ).generation
        wait_until(lambda: follower.generation >= generation)
        assert follower.generation == leader.backend.generation
        patterns = ["base(X)", "pair(X, Y)"]
        assert model_rows(follower, patterns) == model_rows(
            leader.backend, patterns
        )
        assert (
            follower.snapshot.fact_count()
            == leader.backend.snapshot.fact_count()
        )

    def test_late_joiner_bootstraps_to_current_state(self, leader, follower_of):
        with DatalogClient(*leader.address) as client:
            client.add_facts([("base", ("c",))])
            generation = client.add_facts([("base", ("d",))]).generation
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        wait_until(lambda: follower.generation >= generation)
        stats = follower.stats()["replication"]
        assert stats["bootstraps"] == 1
        assert stats["frames_applied"] == 0, "the bootstrap carried everything"
        assert model_rows(follower, ["pair(X, Y)"]) == model_rows(
            leader.backend, ["pair(X, Y)"]
        )

    def test_follower_refuses_writes_with_redirect(self, leader, follower_of):
        follower = follower_of(leader)
        with pytest.raises(NotLeaderError) as excinfo:
            follower.add_facts([("base", ("x",))])
        assert excinfo.value.leader == "%s:%d" % leader.address
        with pytest.raises(NotLeaderError):
            follower.add_facts_published([("base", ("x",))])

    def test_program_fingerprint_mismatch_is_fatal_not_applied(
        self, leader, follower_of
    ):
        follower = follower_of(leader, program=SUFFIX_PROGRAM)
        # The subscription is refused before any state ships; the
        # follower keeps retrying (the operator may fix the leader), but
        # never reports connected and never applies anything.
        time.sleep(0.3)
        stats = follower.stats()["replication"]
        assert not stats["connected"]
        assert stats["bootstraps"] == 0
        assert "fingerprint" in (stats["last_error"] or "")

    def test_divergence_detection_forces_rebootstrap(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        wait_until(
            lambda: follower.stats()["replication"]["bootstraps"] == 1
            and follower.generation >= leader.backend.generation
        )
        # Corrupt the replica out-of-band: inject a fact the leader never
        # shipped, bypassing the read-only guard.
        DatalogServer.add_facts_published(follower, [("base", ("rogue",))])
        with DatalogClient(*leader.address) as client:
            generation = client.add_facts([("base", ("c",))]).generation
        # The next frame's fact-count check trips, the follower wipes and
        # re-bootstraps, and the rogue fact is gone.
        wait_until(
            lambda: follower.stats()["replication"]["bootstraps"] >= 2
            and follower.generation >= generation
        )
        assert model_rows(follower, ["base(X)"]) == model_rows(
            leader.backend, ["base(X)"]
        )


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_connection_cut_mid_bootstrap_resumes_cleanly(
        self, leader, follower_of
    ):
        with DatalogClient(*leader.address) as client:
            # Enough state that the bootstrap stream is well past 400
            # bytes, so the proxy cuts inside the snapshot transfer.
            client.add_facts([("base", (f"s{i}",)) for i in range(20)])
        proxy = FlakyProxy(leader.address, cut_after_bytes=400)
        try:

            class _Proxy:
                address = proxy.address

            follower = follower_of(_Proxy)
            wait_until(
                lambda: follower.generation >= leader.backend.generation
                and follower.lag == 0,
                message=str(follower.stats()["replication"]),
            )
            stats = follower.stats()["replication"]
            assert proxy.connections >= 2, "first bootstrap attempt was cut"
            assert stats["bootstraps"] == 1, "only the complete transfer applied"
            assert model_rows(follower, ["pair(X, Y)"]) == model_rows(
                leader.backend, ["pair(X, Y)"]
            )
        finally:
            proxy.close()

    def test_leader_restart_preserves_generation_continuity(
        self, tmp_path, follower_of
    ):
        data_dir = str(tmp_path / "state")
        first = serve_tcp(
            PROGRAM, {"base": ["a", "b"]}, port=0, data_dir=data_dir
        )
        host, port = first.address
        follower = follower_of(first)
        assert follower.wait_connected(10)
        with DatalogClient(host, port) as client:
            generation = client.add_facts([("base", ("c",))]).generation
        wait_until(lambda: follower.generation >= generation)
        first.close()  # durable shutdown: final snapshot at `generation`
        wait_until(lambda: not follower.connected)

        second = serve_tcp(PROGRAM, port=port, data_dir=data_dir)
        try:
            assert second.backend.generation == generation, "recovered in place"
            with DatalogClient(host, port) as client:
                next_generation = client.add_facts(
                    [("base", ("d",))]
                ).generation
            wait_until(
                lambda: follower.generation >= next_generation,
                message=str(follower.stats()["replication"]),
            )
            stats = follower.stats()["replication"]
            # The recovered hub covers the follower's generation, so the
            # reconnect resumed incrementally: one bootstrap ever.
            assert stats["bootstraps"] == 1
            assert stats["connects"] >= 2
            assert model_rows(follower, ["pair(X, Y)"]) == model_rows(
                second.backend, ["pair(X, Y)"]
            )
        finally:
            second.close()

    def test_in_memory_leader_restart_forces_rebootstrap(
        self, leader, follower_of
    ):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        host, port = leader.address
        with DatalogClient(host, port) as client:
            generation = client.add_facts([("base", ("c",))]).generation
        wait_until(lambda: follower.generation >= generation)
        leader.close()
        wait_until(lambda: not follower.connected)
        # The replacement leader lost everything and serves other data at
        # low generations: the follower must converge to it, not keep the
        # old model.
        replacement = serve_tcp(PROGRAM, {"base": ["z"]}, port=port)
        try:
            wait_until(
                lambda: follower.stats()["replication"]["bootstraps"] >= 2,
                message=str(follower.stats()["replication"]),
            )
            wait_until(lambda: follower.lag == 0)
            assert model_rows(follower, ["base(X)"]) == model_rows(
                replacement.backend, ["base(X)"]
            )
        finally:
            replacement.close()


# ----------------------------------------------------------------------
# not_leader over the wire, read-your-writes
# ----------------------------------------------------------------------
class TestWriteRedirectAndBoundedReads:
    def test_not_leader_surfaces_through_the_wire(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        try:
            client = DatalogClient(*transport.address, follow_redirects=False)
            with pytest.raises(NotLeaderError) as excinfo:
                client.add_facts([("base", ("x",))])
            assert excinfo.value.leader == "%s:%d" % leader.address
            client.close()
        finally:
            transport.close()

    def test_client_follows_redirect_to_the_leader(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        try:
            with DatalogClient(*transport.address) as client:
                response = client.add_facts([("base", ("via-redirect",))])
                assert response.generation is not None
            wait_until(lambda: follower.generation >= response.generation)
            assert ("via-redirect",) in {
                tuple(row) for row in follower.query("base(X)").rows
            }
        finally:
            transport.close()

    def test_read_your_writes_waits_for_the_generation(
        self, leader, follower_of
    ):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        try:
            with DatalogClient(*leader.address) as writer:
                generation = writer.add_facts([("base", ("w",))]).generation
            with DatalogClient(*transport.address) as reader:
                page = reader.query(
                    'pair("w", X)', min_generation=generation,
                    min_generation_timeout=10.0,
                )
            assert page.generation >= generation
            assert len(page.rows) >= 3
        finally:
            transport.close()

    def test_lag_timeout_raises_typed_error(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        try:
            with DatalogClient(*transport.address) as reader:
                with pytest.raises(LagTimeoutError, match="not reached"):
                    reader.query(
                        "base(X)",
                        min_generation=follower.generation + 1000,
                        min_generation_timeout=0.05,
                    )
        finally:
            transport.close()

    def test_min_generation_rejected_on_session_backends(self):
        session = DatalogSession(PROGRAM, {"base": ["a"]})
        try:
            service = DatalogService(session)
            reply = service.handle_raw(
                {
                    "v": 1,
                    "op": "query",
                    "pattern": "base(X)",
                    "min_generation": 1,
                }
            )
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
        finally:
            session.close()

    def test_subscribe_rejected_without_streaming_transport(self):
        server = DatalogServer(PROGRAM, {"base": ["a"]})
        try:
            service = DatalogService(server)
            reply = service.handle_raw({"v": 1, "op": "subscribe"})
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
            assert "streaming" in reply["error"]["message"]
        finally:
            server.close()


# ----------------------------------------------------------------------
# Raw wire shapes of the subscription stream
# ----------------------------------------------------------------------
class TestSubscriptionWire:
    def _subscribe_raw(self, address, **fields):
        sock = socket.create_connection(address, timeout=10)
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")
        send_json(writer, encode_request(SubscribeRequest(**fields)))
        return sock, reader

    def test_bootstrap_stream_shape(self, leader):
        sock, reader = self._subscribe_raw(leader.address)
        try:
            hello = recv_json(reader)
            assert hello["v"] == 1 and hello["ok"] is True
            assert hello["kind"] == "hello"
            assert hello["bootstrap"] is True
            assert hello["generation"] == leader.backend.generation
            kinds = []
            record_kinds = []
            while True:
                frame = recv_json(reader)
                kinds.append(frame["kind"])
                if frame["kind"] != "snapshot_frame":
                    break
                record = frame["record"]
                for marker in ("generation", "relation", "base", "end"):
                    if marker in record:
                        record_kinds.append(marker)
                        break
                if "end" in record:
                    # After the end marker the stream idles; the next
                    # frame is a heartbeat or a generation frame.
                    frame = recv_json(reader)
                    kinds.append(frame["kind"])
                    break
            assert record_kinds[0] == "generation", "header first"
            assert record_kinds[-1] == "end"
            assert kinds[-1] in ("heartbeat", "generation_frame")
        finally:
            sock.close()

    def test_stale_subscriber_told_to_rebootstrap(self):
        transport = serve_tcp(PROGRAM, {"base": ["a"]}, port=0)
        try:
            # Shrink the window so generation 1 falls off immediately.
            transport.hub._max_entries = 1
            with DatalogClient(*transport.address) as client:
                for value in ("b", "c", "d"):
                    client.add_facts([("base", (value,))])
            sock, reader = self._subscribe_raw(transport.address)
            try:
                hello = recv_json(reader)
                assert hello["kind"] == "hello"
                assert hello["bootstrap"] is True, "below the floor: bootstrap"
            finally:
                sock.close()
        finally:
            transport.close()

    def test_incremental_resume_skips_bootstrap(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        wait_until(lambda: follower.lag == 0)
        # A subscriber that already holds the leader's current generation
        # (and fact count) resumes without snapshot frames.
        sock, reader = self._subscribe_raw(
            leader.address, from_generation=leader.backend.generation
        )
        try:
            hello = recv_json(reader)
            assert hello["kind"] == "hello"
            assert hello["bootstrap"] is False
        finally:
            sock.close()


# ----------------------------------------------------------------------
# RoutingClient
# ----------------------------------------------------------------------
class TestRoutingClient:
    @pytest.fixture
    def fleet(self, leader, follower_of):
        """Leader + two TCP-served followers; yields all three addresses."""
        transports = []
        for _ in range(2):
            follower = follower_of(leader)
            assert follower.wait_connected(10)
            transports.append(serve_tcp(follower))
        wait_until(
            lambda: all(
                t.backend.generation >= leader.backend.generation
                for t in transports
            )
        )
        yield [leader.address] + [t.address for t in transports]
        for transport in transports:
            transport.close()

    def test_discovers_roles_and_routes_reads_to_followers(self, fleet):
        with RoutingClient(fleet) as router:
            topology = router.refresh()
            roles = sorted(info["role"] for info in topology.values())
            assert roles == ["follower", "follower", "leader"]
            assert router.leader == "%s:%d" % tuple(fleet[0])
            assert len(router.followers) == 2
            before = [
                DatalogClient(*address).stats().extra["server"]["queries_served"]
                for address in fleet
            ]
            for _ in range(4):
                router.query("base(X)")
            after = [
                DatalogClient(*address).stats().extra["server"]["queries_served"]
                for address in fleet
            ]
            assert after[0] == before[0], "leader served no routed reads"
            assert after[1] > before[1] and after[2] > before[2], (
                "reads rotated across both followers"
            )

    def test_leader_discovered_from_followers_only(self, fleet):
        with RoutingClient(fleet[1:]) as router:
            router.refresh()
            assert router.leader == "%s:%d" % tuple(fleet[0])
            response = router.add_facts([("base", ("routed",))])
            assert response.generation is not None

    def test_writes_update_last_write_generation(self, fleet):
        with RoutingClient(fleet, read_your_writes=True) as router:
            response = router.add_facts([("base", ("ryw",))])
            assert router.last_write_generation == response.generation
            page = router.query('pair("ryw", X)')
            assert page.generation >= response.generation
            assert len(page.rows) >= 1

    def test_failover_skips_dead_follower(self, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        router = RoutingClient([leader.address, transport.address])
        try:
            router.refresh()
            assert len(router.followers) == 1
            transport.close()
            # The dead follower is skipped and the leader answers.
            page = router.query("base(X)")
            assert len(page.rows) >= 2
        finally:
            router.close()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestReplicationCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_follow_requires_tcp(self, tmp_path):
        program = tmp_path / "p.sdl"
        program.write_text(PROGRAM, encoding="utf-8")
        code, output = self.run_cli(
            "serve", str(program), "--follow", "127.0.0.1:1"
        )
        assert code == 1 and "--tcp" in output

    def test_follow_rejects_local_data_sources(self, tmp_path):
        program = tmp_path / "p.sdl"
        program.write_text(PROGRAM, encoding="utf-8")
        for extra in (
            ["--db", "x.json"],
            ["--data-dir", str(tmp_path)],
            ["--demand"],
        ):
            code, output = self.run_cli(
                "serve", str(program), "--tcp", ":0",
                "--follow", "127.0.0.1:1", *extra,
            )
            assert code == 1 and "leader" in output

    def test_script_mode_banner_reports_bound_port(self, tmp_path, leader):
        program = tmp_path / "p.sdl"
        program.write_text(PROGRAM, encoding="utf-8")
        script = tmp_path / "cmds.txt"
        script.write_text("stats\n", encoding="utf-8")
        code, output = self.run_cli(
            "serve", str(program), "--tcp", ":0", "--script", str(script),
        )
        assert code == 0
        banner = output.splitlines()[0]
        assert banner.startswith("% serving 0 facts on 127.0.0.1:")
        port = int(banner.split(":")[1].split(" ")[0])
        assert port != 0, "the banner reports the actually-bound port"

    def test_follow_script_round_trip(self, tmp_path, leader):
        program = tmp_path / "p.sdl"
        program.write_text(PROGRAM, encoding="utf-8")
        script = tmp_path / "cmds.txt"
        script.write_text("query base(X)\nstats\n", encoding="utf-8")
        code, output = self.run_cli(
            "serve", str(program), "--tcp", ":0",
            "--follow", "%s:%d" % leader.address,
            "--script", str(script), "--json",
        )
        assert code == 0
        replies = [json.loads(line) for line in output.splitlines()]
        assert replies[0]["kind"] == "query_result"
        assert sorted(row[0] for row in replies[0]["rows"]) == ["a", "b"]
        assert replies[1]["kind"] == "stats"
        assert replies[1]["replication"]["role"] == "follower"

    def test_route_command_loop(self, tmp_path, leader, follower_of):
        follower = follower_of(leader)
        assert follower.wait_connected(10)
        transport = serve_tcp(follower)
        try:
            script = tmp_path / "cmds.txt"
            script.write_text(
                "topology\nadd base zz\nquery base(X)\nquit\n",
                encoding="utf-8",
            )
            code, output = self.run_cli(
                "route", "%s:%d" % leader.address,
                "%s:%d" % transport.address,
                "--read-your-writes", "--script", str(script), "--json",
            )
            assert code == 0
            replies = [json.loads(line) for line in output.splitlines()]
            assert replies[0]["kind"] == "topology"
            roles = sorted(
                info["role"] for info in replies[0]["topology"].values()
            )
            assert roles == ["follower", "leader"]
            assert replies[1]["kind"] == "add_facts"
            assert replies[2]["kind"] == "query_result"
            assert ["zz"] in replies[2]["rows"]
        finally:
            transport.close()

    def test_route_text_mode_reports_topology(self, tmp_path, leader):
        script = tmp_path / "cmds.txt"
        script.write_text("topology\n", encoding="utf-8")
        code, output = self.run_cli(
            "route", "%s:%d" % leader.address, "--script", str(script),
        )
        assert code == 0
        assert "leader" in output
