"""Tests for the fixpoint engine on the paper's Section 1 examples."""

import pytest

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.fixpoint import clause_is_delta_safe, compute_both_strategies
from repro.errors import EvaluationError
from repro.language.parser import parse_clause, parse_program


class TestExample11Suffixes:
    def test_all_suffixes_are_derived(self, small_string_db):
        result = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        suffixes = evaluate_query(result.interpretation, "suffix(X)").values("X")
        assert set(suffixes) == {"", "abc", "bc", "c", "ab", "b"}

    def test_non_suffixes_are_not_derived(self, small_string_db):
        result = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        assert not result.interpretation.contains("suffix", ["a"])


class TestExample12Concatenations:
    def test_pairwise_concatenations(self):
        db = SequenceDatabase.from_dict({"r": ["a", "bc"]})
        result = compute_least_fixpoint(paper_programs.concatenations_program(), db)
        answers = evaluate_query(result.interpretation, "answer(X)").values("X")
        assert set(answers) == {"aa", "abc", "bca", "bcbc"}

    def test_new_sequences_enter_the_extended_domain(self):
        db = SequenceDatabase.from_dict({"r": ["a", "bc"]})
        result = compute_least_fixpoint(paper_programs.concatenations_program(), db)
        assert "bcbc" in {s.text for s in result.interpretation.domain.sequences()}


class TestExample13AnBnCn:
    def test_accepts_exactly_the_language(self):
        db = SequenceDatabase.from_dict(
            {"r": ["", "abc", "aabbcc", "aabbc", "abcabc", "cba", "aaabbbccc"]}
        )
        result = compute_least_fixpoint(paper_programs.anbncn_program(), db)
        answers = set(evaluate_query(result.interpretation, "answer(X)").values("X"))
        assert answers == {"", "abc", "aabbcc", "aaabbbccc"}


class TestExample14Reverse:
    def test_reverses_every_sequence(self, binary_db):
        result = compute_least_fixpoint(paper_programs.reverse_program(), binary_db)
        answers = set(evaluate_query(result.interpretation, "answer(Y)").values("Y"))
        assert answers == {"011", "10", "1"}

    def test_paper_example_110000(self):
        db = SequenceDatabase.from_dict({"r": ["110000"]})
        result = compute_least_fixpoint(paper_programs.reverse_program(), db)
        assert set(evaluate_query(result.interpretation, "answer(Y)").values("Y")) == {
            "000011"
        }


class TestExample15Repeats:
    def test_rep1_recognises_repeats_structurally(self):
        db = SequenceDatabase.from_dict({"r": ["abcabcabc"]})
        result = compute_least_fixpoint(paper_programs.rep1_program(), db)
        pairs = evaluate_query(result.interpretation, "rep1(X, Y)")
        repeats_of_target = {
            y for x, y in pairs.texts() if x == "abcabcabc"
        }
        assert repeats_of_target == {"abc", "abcabcabc"}

    def test_rep1_does_not_create_new_sequences(self):
        db = SequenceDatabase.from_dict({"r": ["abab"]})
        result = compute_least_fixpoint(paper_programs.rep1_program(), db)
        assert result.interpretation.domain.sequences() == db.extended_active_domain().sequences()


class TestStrategies:
    @pytest.mark.parametrize(
        "program_source, data",
        [
            (paper_programs.EXAMPLE_1_1_SUFFIXES, {"r": ["abc", "ab"]}),
            (paper_programs.EXAMPLE_1_2_CONCATENATIONS, {"r": ["a", "bc"]}),
            (paper_programs.EXAMPLE_1_3_ANBNCN, {"r": ["abc", "ab", "aabbcc"]}),
            (paper_programs.EXAMPLE_1_4_REVERSE, {"r": ["101", "11"]}),
            (paper_programs.EXAMPLE_1_5_REP1, {"r": ["abab"]}),
            (paper_programs.EXAMPLE_7_2_TRANSCRIBE_SIMULATION, {"dnaseq": ["acgt"]}),
        ],
    )
    def test_naive_and_semi_naive_agree(self, program_source, data):
        program = parse_program(program_source)
        db = SequenceDatabase.from_dict(data)
        naive, semi = compute_both_strategies(program, db)
        assert naive.interpretation == semi.interpretation

    def test_unknown_strategy_rejected(self, small_string_db):
        with pytest.raises(EvaluationError):
            compute_least_fixpoint(
                paper_programs.suffixes_program(), small_string_db, strategy="magic"
            )

    def test_delta_safety_classification(self):
        assert clause_is_delta_safe(parse_clause("p(X) :- q(X), r(X)."))
        # Unguarded variable (X only occurs inside an indexed term).
        assert not clause_is_delta_safe(parse_clause("p(X) :- q(X[1:2])."))
        # Head-only index variable ranges over the growing integer domain.
        assert not clause_is_delta_safe(parse_clause("p(X[1:N]) :- q(X)."))
        # Empty body.
        assert not clause_is_delta_safe(parse_clause("p(X, X) :- true."))


class TestFixpointResultMetadata:
    def test_iteration_counts_and_history(self, small_string_db):
        result = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        assert result.iterations >= 2
        assert result.new_facts_per_iteration[-1] == 0
        assert result.fact_count == len(list(result.interpretation.facts()))

    def test_model_size_matches_domain(self, small_string_db):
        result = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        assert result.model_size == len(result.interpretation.domain)

    def test_database_facts_are_in_the_fixpoint(self, small_string_db):
        result = compute_least_fixpoint(paper_programs.suffixes_program(), small_string_db)
        assert result.interpretation.contains("r", ["abc"])
