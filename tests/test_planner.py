"""Tests for the compiled-plan layer: clause plans, scheduling, execution."""

import pytest

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine.fixpoint import (
    COMPILED,
    DEFAULT_STRATEGY,
    NAIVE,
    compute_least_fixpoint,
)
from repro.engine.plan import AtomScan, BindEquality, CompareFilter, EnumerateComparison
from repro.engine.planner import PlanExecutor, compile_clause, compile_program
from repro.language.parser import parse_clause, parse_program


class TestClauseCompilation:
    def test_join_order_puts_bound_scans_after_binders(self):
        plan = compile_clause(parse_clause("p(X, Y) :- q(X), r(X, Y)."))
        kinds = [type(step) for step in plan.steps]
        assert kinds == [AtomScan, AtomScan]
        first, second = plan.steps
        # q(X) binds X, so the r scan can use an index on column 0.
        assert first.atom.predicate == "q"
        assert second.atom.predicate == "r"
        assert second.bound_columns == (0,)

    def test_most_bound_atom_is_scanned_first(self):
        plan = compile_clause(parse_clause('p(X) :- q(X, Y), r("a", X).'))
        # r has one constant argument (score 1) versus q's zero bound args.
        assert plan.steps[0].atom.predicate == "r"
        assert plan.steps[0].bound_columns == (0,)
        assert plan.steps[1].atom.predicate == "q"
        # X is bound by the r scan, so the q scan indexes on column 0.
        assert plan.steps[1].bound_columns == (0,)

    def test_equality_binder_is_compiled_to_bind_step(self):
        plan = compile_clause(parse_clause("p(Y) :- q(X), Y = X[1:2]."))
        kinds = [type(step) for step in plan.steps]
        assert kinds == [AtomScan, BindEquality]
        bind = plan.steps[1]
        assert bind.variable == "Y"

    def test_bound_comparison_is_a_filter(self):
        plan = compile_clause(parse_clause("p(X) :- q(X), X != \"aa\"."))
        kinds = [type(step) for step in plan.steps]
        assert kinds == [AtomScan, CompareFilter]

    def test_unbindable_comparison_falls_back_to_enumeration(self):
        plan = compile_clause(parse_clause('p(X) :- X = X, q("a").'))
        kinds = {type(step) for step in plan.steps}
        assert EnumerateComparison in kinds

    def test_head_enumeration_is_detected(self):
        plan = compile_clause(parse_clause("p(X, Y) :- q(X)."))
        assert plan.head_plan.unbound_sequence_vars == ("Y",)
        plan = compile_clause(parse_clause("p(X[1:N]) :- q(X)."))
        assert plan.head_plan.unbound_index_vars == ("N",)
        plan = compile_clause(parse_clause("p(X) :- q(X)."))
        assert not plan.head_plan.needs_enumeration

    def test_delta_safety_matches_the_clause_classification(self):
        assert compile_clause(parse_clause("p(X) :- q(X), r(X).")).delta_safe
        assert not compile_clause(parse_clause("p(X) :- q(X[1:2]).")).delta_safe
        assert not compile_clause(parse_clause("p(X[1:N]) :- q(X).")).delta_safe
        assert not compile_clause(parse_clause("p(X, X) :- true.")).delta_safe

    def test_explain_mentions_every_step(self):
        plan = compile_clause(parse_clause("p(X, Y) :- q(X), r(X, Y)."))
        report = plan.explain()
        assert "scan q(X)" in report
        assert "index scan on columns [0]" in report
        assert "emit p(X, Y)" in report


class TestProgramCompilation:
    def test_strata_are_bottom_up(self):
        program = parse_program(
            """
            a(X) :- base(X).
            b(X) :- a(X).
            c(X) :- b(X), c(X).
            """
        )
        program_plan = compile_program(program)
        order = [stratum for stratum in program_plan.strata]
        assert order.index(("base",)) < order.index(("a",))
        assert order.index(("a",)) < order.index(("b",))
        assert order.index(("b",)) < order.index(("c",))

    def test_recursive_strata_are_flagged(self):
        program = parse_program(
            """
            a(X) :- base(X).
            c(X) :- base(X).
            c(X[2:end]) :- c(X).
            """
        )
        program_plan = compile_program(program)
        flags = dict(zip(program_plan.strata, program_plan.recursive))
        assert flags[("c",)] is True
        assert flags[("a",)] is False
        assert flags[("base",)] is False

    def test_program_explain_lists_strata_and_clauses(self):
        program_plan = compile_program(paper_programs.suffixes_program())
        report = program_plan.explain()
        assert "stratum 1" in report
        assert "clause:" in report


class TestPlanExecution:
    def test_executor_matches_naive_reference_per_clause(self, small_string_db):
        program = paper_programs.suffixes_program()
        naive = compute_least_fixpoint(
            program, small_string_db, strategy=NAIVE
        ).interpretation
        plan = compile_clause(program.clauses[0])
        executor = PlanExecutor(plan)
        derived = set(executor.derive(naive))
        # Every derived fact must already be in the fixpoint (closure).
        for predicate, values in derived:
            assert naive.contains(predicate, values)

    @pytest.mark.parametrize(
        "source, data",
        [
            (paper_programs.EXAMPLE_1_1_SUFFIXES, {"r": ["abc", "ab"]}),
            (paper_programs.EXAMPLE_1_2_CONCATENATIONS, {"r": ["a", "bc"]}),
            (paper_programs.EXAMPLE_1_3_ANBNCN, {"r": ["abc", "ab", "aabbcc"]}),
            (paper_programs.EXAMPLE_1_4_REVERSE, {"r": ["101", "11"]}),
            (paper_programs.EXAMPLE_1_5_REP1, {"r": ["abab"]}),
            (paper_programs.EXAMPLE_5_1_STRATIFIED, {"r": ["ab"]}),
            (paper_programs.EXAMPLE_7_2_TRANSCRIBE_SIMULATION, {"dnaseq": ["acgt"]}),
        ],
    )
    def test_compiled_fixpoint_equals_naive_on_paper_programs(self, source, data):
        program = parse_program(source)
        database = SequenceDatabase.from_dict(data)
        naive = compute_least_fixpoint(program, database, strategy=NAIVE)
        compiled = compute_least_fixpoint(program, database, strategy=COMPILED)
        assert naive.interpretation == compiled.interpretation

    def test_compiled_fixpoint_equals_naive_on_transducer_programs(self):
        """Example 7.1 and Figure 3's P1: the paper programs with transducer
        terms whose fixpoints are finite (P2/P3 have infinite fixpoints by
        construction, so there is no fixpoint to compare)."""
        genome_program, genome_catalog = paper_programs.genome_program()
        p1, _, _ = paper_programs.figure_3_programs()
        cases = [
            (genome_program, genome_catalog, {"dnaseq": ["acgt", "tt"]}),
            (p1, paper_programs.figure_3_catalog(), {"a": [("ab", "b")]}),
        ]
        for program, catalog, data in cases:
            database = SequenceDatabase.from_dict(data)
            transducers = catalog.callables()
            naive = compute_least_fixpoint(
                program, database, strategy=NAIVE, transducers=transducers
            )
            compiled = compute_least_fixpoint(
                program, database, strategy=COMPILED, transducers=transducers
            )
            assert naive.interpretation == compiled.interpretation

    def test_compiled_is_the_default_strategy(self, small_string_db):
        assert DEFAULT_STRATEGY == COMPILED
        result = compute_least_fixpoint(
            paper_programs.suffixes_program(), small_string_db
        )
        assert result.strategy == COMPILED
        assert result.iterations >= 2
        assert result.new_facts_per_iteration[-1] == 0
