"""Tests for interpretations, evaluation limits and the error hierarchy."""

import pytest

from repro import errors
from repro.database import SequenceDatabase
from repro.engine import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits, STRICT_LIMITS
from repro.errors import FixpointNotReached, ValidationError
from repro.language.atoms import ground_atom
from repro.language.parser import parse_atom
from repro.sequences import Sequence


class TestInterpretation:
    def test_add_and_contains(self):
        interpretation = Interpretation()
        assert interpretation.add("p", ["ab", "c"]) is True
        assert interpretation.add("p", ["ab", "c"]) is False
        assert interpretation.contains("p", ["ab", "c"])
        assert not interpretation.contains("p", ["ab", "d"])

    def test_domain_tracks_added_sequences(self):
        interpretation = Interpretation()
        interpretation.add("p", ["abc"])
        assert Sequence("bc") in interpretation.domain
        assert interpretation.size() == 7

    def test_arity_conflicts_rejected(self):
        interpretation = Interpretation()
        interpretation.add("p", ["a"])
        with pytest.raises(ValidationError):
            interpretation.add("p", ["a", "b"])

    def test_from_database_round_trip(self):
        database = SequenceDatabase.from_dict({"r": ["ab"], "p": [("a", "b")]})
        interpretation = Interpretation.from_database(database)
        assert interpretation.to_database() == database

    def test_add_atom_and_atom_membership(self):
        interpretation = Interpretation()
        interpretation.add_atom(ground_atom("p", "ab"))
        assert parse_atom('p("ab")') in interpretation
        assert parse_atom('p("xy")') not in interpretation
        with pytest.raises(ValidationError):
            interpretation.add_atom(parse_atom("p(X)"))

    def test_merge_and_restrict(self):
        first = Interpretation([("p", (Sequence("a"),))])
        second = Interpretation([("q", (Sequence("b"),)), ("p", (Sequence("a"),))])
        added = first.merge(second)
        assert added == 1
        restricted = first.restrict(["q"])
        assert restricted.predicates() == ("q",)

    def test_copy_is_independent(self):
        original = Interpretation([("p", (Sequence("a"),))])
        clone = original.copy()
        clone.add("p", ["b"])
        assert not original.contains("p", ["b"])

    def test_equality_is_fact_based(self):
        a = Interpretation([("p", (Sequence("a"),))])
        b = Interpretation([("p", (Sequence("a"),))])
        assert a == b
        b.add("p", ["c"])
        assert a != b

    def test_facts_iteration_is_sorted(self):
        interpretation = Interpretation()
        interpretation.add("q", ["b"])
        interpretation.add("p", ["a"])
        assert [predicate for predicate, _ in interpretation.facts()] == ["p", "q"]


class TestEvaluationLimits:
    def test_iteration_check(self):
        limits = EvaluationLimits(max_iterations=5)
        limits.check_iteration(5)
        with pytest.raises(FixpointNotReached):
            limits.check_iteration(6)

    def test_fact_and_domain_checks(self):
        limits = EvaluationLimits(max_facts=1, max_domain_size=10_000)
        interpretation = Interpretation([("p", (Sequence("a"),)), ("q", (Sequence("b"),))])
        with pytest.raises(FixpointNotReached):
            limits.check_interpretation(interpretation, iteration=1)

    def test_sequence_length_check_can_be_disabled(self):
        limits = EvaluationLimits(max_sequence_length=None)
        limits.check_sequence_length(10**6)
        strict = EvaluationLimits(max_sequence_length=5)
        with pytest.raises(FixpointNotReached):
            strict.check_sequence_length(6)

    def test_preset_limit_objects(self):
        assert STRICT_LIMITS.max_iterations < DEFAULT_LIMITS.max_iterations
        assert STRICT_LIMITS.max_sequence_length is not None


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) and issubclass(attribute, Exception):
                if attribute is not errors.ReproError:
                    assert issubclass(attribute, errors.ReproError)

    def test_parse_error_carries_location(self):
        error = errors.ParseError("boom", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_fixpoint_not_reached_carries_partial_state(self):
        partial = Interpretation()
        error = errors.FixpointNotReached("stopped", partial=partial, iterations=4)
        assert error.partial is partial
        assert error.iterations == 4
