"""Tests for live queries (:mod:`repro.live`).

Covers the continuous-query subsystem bottom-up: the
:class:`SubscriptionManager` delta contract (windowed evaluation,
domain-sensitive full-diff fallback, coalescing, the slow-consumer
policy), the asyncio front-end end-to-end (duplex watches plus ordinary
requests on one connection, both clients), and fault injection
(mid-stream disconnects, slow consumers disconnected with a typed
error).

The crown jewel is the randomized delta-exactness property: the union of
every delta pushed on a subscription over a random ``add_facts`` sequence
must equal a from-scratch query of the final model, fact for fact, with
no duplicates along the way.
"""

import asyncio
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import ApiError, DatalogClient, ErrorCode, SubscriptionDelta
from repro.api.transport import DatalogTCPServer, serve_tcp
from repro.api.types import HeartbeatFrame
from repro.engine.query import canonical_pattern
from repro.engine.server import DatalogServer
from repro.errors import ReproError, SlowConsumerError, UnknownPredicateError
from repro.live import (
    AsyncDatalogClient,
    AsyncDatalogServer,
    SubscriptionManager,
    serve_tcp_async,
)

SUFFIX_PROGRAM = "suffix(X[N:end]) :- r(X)."

#: A pattern whose plan the planner marks domain-sensitive (the indexed
#: term's matching observes the ambient domain), forcing the manager's
#: full-query-and-diff fallback instead of the windowed delta path.
FULL_DIFF_PATTERN = "suffix(X[1:N])"

LIVE_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

TRANSPORTS = pytest.mark.parametrize(
    "factory", [serve_tcp, serve_tcp_async], ids=["threaded", "async"]
)


def wire_rows(result):
    """In-process QueryResult -> the sorted wire rows a delta would ship."""
    return sorted(tuple(value.text for value in row) for row in result.rows)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture
def live():
    """Factory for (DatalogServer, SubscriptionManager) pairs, closed at teardown."""
    created = []

    def build(program=SUFFIX_PROGRAM, database=None, **options):
        server = DatalogServer(program, database)
        manager = SubscriptionManager(server, **options)
        created.append((manager, server))
        return server, manager

    yield build
    for manager, server in created:
        manager.close()
        server.close()


# ----------------------------------------------------------------------
# SubscriptionManager: the delta contract
# ----------------------------------------------------------------------
class TestSubscriptionManager:
    def test_initial_frame_then_windowed_deltas(self, live):
        server, manager = live(database={"r": ["ab"]})
        subscription = manager.subscribe("suffix(X)")
        assert not subscription.full_diff

        first = subscription.pop(5)
        assert isinstance(first, SubscriptionDelta)
        assert first.initial
        assert first.generation == server.generation
        assert sorted(first.rows) == [("",), ("ab",), ("b",)]

        server.add_facts({"r": ["xy"]})
        delta = subscription.pop(5)
        assert isinstance(delta, SubscriptionDelta)
        assert not delta.initial
        assert delta.generation == server.generation
        # Only the newly-derived suffixes; "" is already in the result set.
        assert sorted(delta.rows) == [("xy",), ("y",)]

        atom, _ = canonical_pattern("suffix(X)")
        assert sorted(set(first.rows) | set(delta.rows)) == wire_rows(
            server.query(atom)
        )

    def test_initial_false_skips_the_anchor_frame(self, live):
        server, manager = live(database={"r": ["ab"]})
        subscription = manager.subscribe("suffix(X)", initial=False)
        server.add_facts({"r": ["xy"]})
        delta = subscription.pop(5)
        assert isinstance(delta, SubscriptionDelta)
        assert not delta.initial
        assert sorted(delta.rows) == [("xy",), ("y",)]

    def test_unchanged_answers_produce_no_frames(self, live):
        server, manager = live(database={"r": ["ab"], "s": ["zz"]})
        subscription = manager.subscribe("suffix(X)")
        subscription.pop(5)  # initial

        # A generation that changes an unrelated predicate ...
        server.add_facts({"s": ["qq"]})
        # ... and one that adds only already-derived suffixes.
        server.add_facts({"r": ["b"]})
        assert wait_until(lambda: manager.stats()["generations_seen"] == 2)
        assert subscription.pop(0.3) is None
        assert manager.stats()["deltas_pushed"] == 1  # just the initial

    def test_full_diff_path_for_domain_sensitive_patterns(self, live):
        server, manager = live(database={"r": ["ab"]})
        subscription = manager.subscribe(FULL_DIFF_PATTERN)
        assert subscription.full_diff

        first = subscription.pop(5)
        atom, _ = canonical_pattern(FULL_DIFF_PATTERN)
        assert sorted(first.rows) == wire_rows(server.query(atom))

        server.add_facts({"r": ["xy"]})
        delta = subscription.pop(5)
        assert not set(delta.rows) & set(first.rows)
        assert sorted(set(first.rows) | set(delta.rows)) == wire_rows(
            server.query(atom)
        )
        assert manager.stats()["full_diff_evaluations"] >= 1

    def test_coalescing_keeps_the_union_exact(self, live):
        server, manager = live(database={"r": ["ab"]}, max_queue_frames=1)
        subscription = manager.subscribe("suffix(X)")
        # Do not pop: with a one-frame queue every subsequent generation
        # must coalesce into the newest queued frame.
        for text in ("cd", "ef", "gh"):
            server.add_facts({"r": [text]})
        assert wait_until(
            lambda: manager.stats()["coalesced_generations"] == 3
        ), manager.stats()

        frame = subscription.pop(5)
        assert isinstance(frame, SubscriptionDelta)
        assert frame.initial  # coalesced into the initial frame
        assert frame.coalesced == 3
        assert frame.generation == server.generation
        atom, _ = canonical_pattern("suffix(X)")
        assert sorted(frame.rows) == wire_rows(server.query(atom))
        assert subscription.pop(0.2) is None

    def test_slow_consumer_gets_a_typed_disconnect(self, live):
        server, manager = live(
            database={"r": ["ab"]}, max_queue_frames=1, max_pending_rows=4
        )
        subscription = manager.subscribe("suffix(X)")
        server.add_facts({"r": ["cdefg"]})  # five fresh rows > the bound
        assert wait_until(
            lambda: manager.stats()["slow_consumer_disconnects"] == 1
        )

        frame = subscription.pop(5)
        assert isinstance(frame, ApiError)
        assert frame.code == ErrorCode.SLOW_CONSUMER
        assert frame.details == {"subscription": subscription.id}
        with pytest.raises(SlowConsumerError):
            frame.raise_()
        assert subscription.closed
        assert manager.get(subscription.id) is None
        assert manager.stats()["active_subscriptions"] == 0

    def test_unsubscribe_and_close_semantics(self, live):
        server, manager = live(database={"r": ["ab"]})
        subscription = manager.subscribe("suffix(X)")
        assert manager.stats()["subscriptions_total"] == 1
        assert manager.unsubscribe(subscription.id)
        assert subscription.closed
        assert not manager.unsubscribe(subscription.id)

        # Closed subscriptions never see later generations.
        server.add_facts({"r": ["xy"]})
        frame = subscription.pop(5)
        assert frame is None or frame.initial

        manager.close()
        with pytest.raises(ReproError):
            manager.subscribe("suffix(X)")

    def test_strict_watch_refuses_unknown_predicates(self, live):
        server, manager = live(database={"r": ["ab"]})
        with pytest.raises(UnknownPredicateError):
            manager.subscribe("nosuch(X)", strict=True)
        assert manager.stats()["active_subscriptions"] == 0
        # Non-strict mirrors query semantics: empty result, deltas later.
        subscription = manager.subscribe("nosuch(X)")
        assert subscription.pop(5).rows == ()


# ----------------------------------------------------------------------
# The randomized delta-exactness property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pattern", ["suffix(X)", FULL_DIFF_PATTERN])
@LIVE_SETTINGS
@given(
    initial=st.lists(st.text(alphabet="ab", max_size=3), max_size=3),
    batches=st.lists(
        st.lists(st.text(alphabet="ab", min_size=1, max_size=4), max_size=3),
        max_size=4,
    ),
)
def test_delta_union_matches_a_from_scratch_query(pattern, initial, batches):
    """Union of pushed deltas == from-scratch query of the final model.

    Both delta paths (windowed and full-diff) must deliver every row the
    final model answers exactly once: frames are pairwise disjoint and
    their union equals the from-scratch result, fact for fact.
    """
    server = DatalogServer(SUFFIX_PROGRAM, {"r": initial})
    manager = SubscriptionManager(server)
    try:
        subscription = manager.subscribe(pattern)
        first = subscription.pop(5)
        union = set(first.rows)
        assert len(first.rows) == len(union)  # no duplicates within a frame

        for batch in batches:
            server.add_facts({"r": batch})
        atom, _ = canonical_pattern(pattern)
        expected = set(
            tuple(value.text for value in row) for row in server.query(atom).rows
        )
        assert union <= expected

        deadline = time.monotonic() + 10
        while union != expected:
            frame = subscription.pop(0.2)
            if frame is None:
                assert time.monotonic() < deadline, (union, expected)
                continue
            assert isinstance(frame, SubscriptionDelta)
            assert len(frame.rows) == len(set(frame.rows))
            assert not set(frame.rows) & union, "duplicate rows across deltas"
            union |= set(frame.rows)
        assert union == expected
        assert subscription.pop(0.1) is None  # and then the stream is quiet
    finally:
        manager.close()
        server.close()


# ----------------------------------------------------------------------
# The asyncio front-end, end to end
# ----------------------------------------------------------------------
class TestAsyncServing:
    def test_duplex_watches_and_requests_share_a_connection(self):
        with serve_tcp_async(SUFFIX_PROGRAM, {"r": ["ab"]}) as server:
            asyncio.run(self._duplex_scenario(server.address))

    @staticmethod
    async def _duplex_scenario(address):
        async with AsyncDatalogClient(*address) as client:
            watch_all = await client.watch("suffix(X)")
            watch_diff = await client.watch(FULL_DIFF_PATTERN)
            first = await asyncio.wait_for(watch_all.__anext__(), 5)
            assert first.initial
            assert sorted(first.rows) == [("",), ("ab",), ("b",)]
            await asyncio.wait_for(watch_diff.__anext__(), 5)

            # Ordinary requests interleave with live watches on the same
            # connection.
            page = await client.query("suffix(X)")
            assert sorted(tuple(row) for row in page.rows) == sorted(first.rows)

            await client.add_fact("r", "xyz")
            delta = await asyncio.wait_for(watch_all.__anext__(), 5)
            assert not delta.initial
            assert sorted(delta.rows) == [("xyz",), ("yz",), ("z",)]
            delta_diff = await asyncio.wait_for(watch_diff.__anext__(), 5)
            assert delta_diff.subscription == watch_diff.subscription

            # Unwatch one stream; the other keeps flowing.
            await watch_diff.unwatch()
            await client.add_fact("r", "q")
            delta = await asyncio.wait_for(watch_all.__anext__(), 5)
            assert ("q",) in delta.rows
            with pytest.raises(StopAsyncIteration):
                await watch_diff.__anext__()

            stats = await client.stats()
            assert stats.live["active_subscriptions"] == 1

    def test_watch_heartbeats_keep_idle_streams_alive(self):
        backend = DatalogServer(SUFFIX_PROGRAM, {"r": ["ab"]})
        with AsyncDatalogServer(
            ("127.0.0.1", 0), backend, owns_backend=True, heartbeat_seconds=0.1
        ) as server:
            server.start()
            asyncio.run(self._heartbeat_scenario(server.address))

    @staticmethod
    async def _heartbeat_scenario(address):
        async with AsyncDatalogClient(*address) as client:
            watch = await client.watch("suffix(X)", heartbeats=True)
            first = await asyncio.wait_for(watch.__anext__(), 5)
            assert isinstance(first, SubscriptionDelta)
            beat = await asyncio.wait_for(watch.__anext__(), 5)
            assert isinstance(beat, HeartbeatFrame)
            assert beat.subscription == watch.subscription

    def test_async_client_initial_false(self):
        with serve_tcp_async(SUFFIX_PROGRAM, {"r": ["ab"]}) as server:
            asyncio.run(self._initial_false_scenario(server.address))

    @staticmethod
    async def _initial_false_scenario(address):
        async with AsyncDatalogClient(*address) as client:
            watch = await client.watch("suffix(X)", initial=False)
            await client.add_fact("r", "xy")
            delta = await asyncio.wait_for(watch.__anext__(), 5)
            assert not delta.initial
            assert sorted(delta.rows) == [("xy",), ("y",)]


# ----------------------------------------------------------------------
# The sync client against both transports
# ----------------------------------------------------------------------
@TRANSPORTS
def test_sync_client_watch_streams_deltas(factory):
    with factory(SUFFIX_PROGRAM, {"r": ["ab"]}, port=0) as server:
        with DatalogClient(*server.address) as client:
            with client.watch("suffix(X)") as watch:
                stream = iter(watch)
                first = next(stream)
                assert first.initial
                assert sorted(first.rows) == [("",), ("ab",), ("b",)]
                assert watch.subscription == first.subscription
                client.add_facts({"r": ["xyz"]})
                delta = next(stream)
                assert sorted(delta.rows) == [("xyz",), ("yz",), ("z",)]
            # The watch rides its own socket: the client still works.
            assert client.ping().generation == server.backend.generation


@TRANSPORTS
def test_stats_surface_the_versioned_live_section(factory):
    with factory(SUFFIX_PROGRAM, {"r": ["ab"]}, port=0) as server:
        with DatalogClient(*server.address) as client:
            stats = client.stats()
            assert stats.live["v"] == 1
            assert stats.live["open_connections"] >= 1
            assert stats.live["active_subscriptions"] == 0
            with client.watch("suffix(X)"):
                assert wait_until(
                    lambda: client.stats().live["active_subscriptions"] == 1
                )
            assert wait_until(
                lambda: client.stats().live["active_subscriptions"] == 0
            )
            assert client.stats().live["subscriptions_total"] == 1


# ----------------------------------------------------------------------
# Fault injection: disconnects and slow consumers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "transport_cls", [DatalogTCPServer, AsyncDatalogServer], ids=["threaded", "async"]
)
def test_midstream_disconnect_cleans_up_the_subscription(transport_cls):
    backend = DatalogServer(SUFFIX_PROGRAM, {"r": ["ab"]})
    server = transport_cls(
        ("127.0.0.1", 0), backend, owns_backend=True, heartbeat_seconds=0.2
    )
    server.start()
    try:
        with DatalogClient(*server.address) as client:
            watch = client.watch("suffix(X)")
            next(iter(watch))
            assert server.live.stats()["active_subscriptions"] == 1
            # Kill the socket without an unwatch; the server must notice
            # (EOF on the async transport, a failed heartbeat write on
            # the threaded one) and release the subscription.
            watch.close()
            assert wait_until(
                lambda: server.live.stats()["active_subscriptions"] == 0
            ), server.live.stats()
    finally:
        server.close()


@TRANSPORTS
def test_slow_consumer_disconnect_reaches_the_client(factory):
    with factory(SUFFIX_PROGRAM, {"r": ["ab"]}, port=0) as server:
        with DatalogClient(*server.address) as client:
            watch = client.watch("suffix(X)")
            stream = iter(watch)
            next(stream)  # initial
            # Shrink the bound server-side so the very next delta trips
            # the slow-consumer policy before any pump can drain it.
            server.live.get(watch.subscription)._max_pending_rows = 1
            client.add_facts({"r": ["wxyz"]})
            with pytest.raises(SlowConsumerError):
                for _ in stream:
                    pass
            assert server.live.stats()["slow_consumer_disconnects"] == 1
            assert wait_until(
                lambda: server.live.stats()["active_subscriptions"] == 0
            )


def test_async_client_abrupt_close_cleans_up():
    with serve_tcp_async(SUFFIX_PROGRAM, {"r": ["ab"]}) as server:

        async def scenario():
            client = AsyncDatalogClient(*server.address)
            await client.connect()
            watch = await client.watch("suffix(X)")
            await asyncio.wait_for(watch.__anext__(), 5)
            await client.close()  # no unwatch: the connection just drops

        asyncio.run(scenario())
        assert wait_until(
            lambda: server.live.stats()["active_subscriptions"] == 0
        ), server.live.stats()
        assert wait_until(lambda: server.live.stats()["open_connections"] == 0)
