"""Tests for the program diagnostics engine (repro.analysis.diagnostics).

Every stable code gets at least one firing test (the rule reports, with
the exact code and 1-based span asserted) and one non-firing test (a
nearby legal program stays silent).  The report container, the payload
round-trip, the human renderer and the rule registry are covered
separately.
"""

import pytest

from repro import SequenceDatalogEngine
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    PARSE_ERROR_CODE,
    SEVERITIES,
    lint_program,
    severity_rank,
)
from repro.analysis.rules import RULES, LintContext, all_rules, run_rules
from repro.database.database import SequenceDatabase
from repro.language.parser import parse_atom, parse_clause, parse_program
from repro.language.spans import SourceSpan, span_of


def db(mapping):
    return SequenceDatabase.from_json_dict(mapping)


def codes_of(report):
    return {d.code for d in report}


def only(report, code):
    found = report.by_code(code)
    assert len(found) == 1, f"expected exactly one {code}, got {report.describe()}"
    return found[0]


# ----------------------------------------------------------------------
# Source spans
# ----------------------------------------------------------------------
class TestSourceSpans:
    def test_parser_stamps_clause_and_atom_spans(self):
        program = parse_program("p(X) :- q(X).\n\nr(Y) :- s(Y).\n")
        first, second = program
        assert span_of(first) == SourceSpan(1, 1, 1, 13)
        assert span_of(first.head) == SourceSpan(1, 1, 1, 4)
        assert span_of(first.body[0]) == SourceSpan(1, 9, 1, 12)
        assert span_of(second).line == 3

    def test_spans_are_one_based_and_inclusive(self):
        clause = parse_clause("p(X) :- q(X).")
        body_span = span_of(clause.body[0])
        assert (body_span.line, body_span.column) == (1, 9)
        assert (body_span.end_line, body_span.end_column) == (1, 12)

    def test_spans_do_not_affect_ast_identity(self):
        here = parse_atom("p(X)")
        there = list(parse_program("q(Y) :- true.\np(X) :- true."))[1].head
        assert span_of(here) != span_of(there)
        assert here == there
        assert hash(here) == hash(there)

    def test_programmatic_nodes_have_no_span(self):
        from repro.language.atoms import Atom
        from repro.language.terms import SequenceVariable

        assert span_of(Atom("p", (SequenceVariable("X"),))) is None

    def test_str_and_payload_round_trip(self):
        span = SourceSpan(3, 1, 3, 9)
        assert str(span) == "3:1-9"
        assert str(SourceSpan(1, 2, 4, 5)) == "1:2-4:5"
        assert SourceSpan.from_payload(span.to_payload()) == span


# ----------------------------------------------------------------------
# Diagnostic and report containers
# ----------------------------------------------------------------------
class TestDiagnostic:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Diagnostic(code="SDL-E999", severity="fatal", message="boom")

    def test_str_includes_location_code_and_severity(self):
        diagnostic = Diagnostic(
            code="SDL-E103",
            severity="error",
            message="unbound head variable",
            span=SourceSpan(2, 5, 2, 9),
        )
        assert str(diagnostic) == "2:5: SDL-E103 error: unbound head variable"

    def test_payload_round_trip_preserves_everything(self):
        diagnostic = Diagnostic(
            code="SDL-W202",
            severity="warning",
            message="constructive cycle",
            predicate="rep2",
            clause="rep2(X ++ Y, Y) :- rep2(X, Y).",
            span=SourceSpan(2, 1, 2, 30),
            hint="bound it",
        )
        assert Diagnostic.from_payload(diagnostic.to_payload()) == diagnostic

    def test_payload_of_spanless_diagnostic_round_trips(self):
        diagnostic = Diagnostic(code="SDL-E100", severity="error", message="nope")
        payload = diagnostic.to_payload()
        assert payload["span"] is None
        assert Diagnostic.from_payload(payload) == diagnostic

    def test_severity_rank_orders_most_severe_first(self):
        assert [severity_rank(s) for s in SEVERITIES] == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            severity_rank("mild")


class TestDiagnosticReport:
    def test_orders_by_severity_then_position(self):
        report = DiagnosticReport(
            diagnostics=(
                Diagnostic(code="SDL-H301", severity="hint", message="late",
                           span=SourceSpan(1, 1, 1, 2)),
                Diagnostic(code="SDL-E103", severity="error", message="first",
                           span=SourceSpan(9, 1, 9, 2)),
                Diagnostic(code="SDL-W204", severity="warning", message="mid",
                           span=SourceSpan(2, 1, 2, 2)),
            )
        )
        assert [d.code for d in report] == ["SDL-E103", "SDL-W204", "SDL-H301"]

    def test_spanless_diagnostics_sort_after_spanned_ones(self):
        report = DiagnosticReport(
            diagnostics=(
                Diagnostic(code="SDL-W203", severity="warning", message="global"),
                Diagnostic(code="SDL-W204", severity="warning", message="local",
                           span=SourceSpan(7, 1, 7, 2)),
            )
        )
        assert [d.code for d in report] == ["SDL-W204", "SDL-W203"]

    def test_counts_cover_every_severity(self):
        report = lint_program("bad(X) :- r(Y).")
        assert report.counts() == {"error": 1, "warning": 1, "perf": 1, "hint": 1}
        assert len(report) == 4

    def test_exit_codes(self):
        erroring = lint_program("bad(X) :- r(Y).")
        assert erroring.exit_code() == 2
        assert erroring.exit_code(strict=True) == 2
        warning_only = lint_program("suffix(X[N:end]) :- r(X).")
        assert warning_only.errors() == ()
        assert warning_only.exit_code() == 0
        assert warning_only.exit_code(strict=True) == 1
        hint_only = lint_program("p(X) :- r(X).\np(X) :- r(X).")
        assert hint_only.codes() == ("SDL-H302",)
        assert hint_only.exit_code() == 0
        assert hint_only.exit_code(strict=True) == 0  # hints never gate
        clean = lint_program("p(X) :- r(X).")
        assert clean.clean and clean.exit_code(strict=True) == 0

    def test_summary_wording(self):
        assert lint_program("p(X) :- r(X).").summary() == "clean: no diagnostics"
        assert (
            lint_program("p(X) :- r(X).\np(X) :- r(X).").summary()
            == "1 diagnostic: 1 hint"
        )
        assert (
            lint_program("bad(X) :- r(Y).").summary()
            == "4 diagnostics: 1 error, 1 warning, 1 perf, 1 hint"
        )

    def test_report_payload_round_trip(self):
        report = lint_program("bad(X) :- r(Y).")
        payload = report.to_payload()
        assert payload["counts"]["error"] == 1
        restored = DiagnosticReport.from_payload(payload)
        assert restored == report
        assert [d.span for d in restored] == [d.span for d in report]


# ----------------------------------------------------------------------
# SDL-E100: parse errors
# ----------------------------------------------------------------------
class TestParseError:
    def test_fires_with_the_error_location(self):
        report = lint_program("p(X :- q(X).")
        diagnostic = only(report, PARSE_ERROR_CODE)
        assert report.codes() == (PARSE_ERROR_CODE,)
        assert diagnostic.severity == "error"
        assert diagnostic.span is not None and diagnostic.span.line == 1
        assert report.exit_code() == 2

    def test_fires_for_an_unparsable_query_pattern(self):
        report = lint_program("p(X) :- r(X).", patterns=["p(X"])
        diagnostic = only(report, PARSE_ERROR_CODE)
        assert "query pattern" in diagnostic.message

    def test_silent_on_a_parsable_program(self):
        assert PARSE_ERROR_CODE not in codes_of(lint_program("p(X) :- r(X)."))


# ----------------------------------------------------------------------
# SDL-E101: undefined predicates
# ----------------------------------------------------------------------
class TestUndefinedPredicate:
    def test_fires_with_the_atom_span(self):
        report = lint_program("p(X) :- q(X).", database=db({"r": ["a"]}))
        diagnostic = only(report, "SDL-E101")
        assert diagnostic.predicate == "q"
        assert diagnostic.span == SourceSpan(1, 9, 1, 12)
        assert "never defined" in diagnostic.message

    def test_suggests_a_close_match(self):
        report = lint_program(
            "p(X) :- suffixes(X).", database=db({"suffixes_of": ["a"]})
        )
        diagnostic = only(report, "SDL-E101")
        assert "did you mean 'suffixes_of'" in diagnostic.hint

    def test_fires_for_query_patterns_without_a_span(self):
        report = lint_program(
            "p(X) :- r(X).", database=db({"r": ["a"]}), patterns=["missing(X)"]
        )
        diagnostic = only(report, "SDL-E101")
        assert diagnostic.predicate == "missing"
        assert diagnostic.span is None  # patterns are not program text

    def test_silent_without_a_database(self):
        # Any unknown predicate may be an EDB relation supplied later.
        assert "SDL-E101" not in codes_of(lint_program("p(X) :- q(X)."))

    def test_silent_when_the_relation_exists(self):
        report = lint_program("p(X) :- q(X).", database=db({"q": ["a"]}))
        assert "SDL-E101" not in codes_of(report)


# ----------------------------------------------------------------------
# SDL-E102: arity conflicts
# ----------------------------------------------------------------------
class TestArityConflict:
    def test_fires_on_conflicting_uses(self):
        report = lint_program("p(X) :- r(X).\np(X, Y) :- r(X), r(Y).")
        diagnostic = only(report, "SDL-E102")
        assert diagnostic.predicate == "p"
        assert diagnostic.span == SourceSpan(2, 1, 2, 7)
        assert "p/2" in diagnostic.message and "p/1" in diagnostic.message
        assert "first used at line 1" in diagnostic.message

    def test_fires_against_the_database_relation(self):
        report = lint_program("p(X) :- r(X, Y).", database=db({"r": ["a"]}))
        diagnostic = only(report, "SDL-E102")
        assert diagnostic.predicate == "r"
        assert "database relation" in diagnostic.message

    def test_silent_on_consistent_arities(self):
        report = lint_program(
            "p(X, Y) :- r(X, Y).", database=db({"r": [["a", "b"]]})
        )
        assert "SDL-E102" not in codes_of(report)


# ----------------------------------------------------------------------
# SDL-E103: range restriction
# ----------------------------------------------------------------------
class TestRangeRestriction:
    def test_fires_with_the_head_span(self):
        report = lint_program("bad(X) :- r(Y).")
        diagnostic = only(report, "SDL-E103")
        assert diagnostic.predicate == "bad"
        assert diagnostic.span == SourceSpan(1, 1, 1, 6)
        assert "entire extended domain" in diagnostic.message
        assert "dom(X)" in diagnostic.hint

    def test_fires_on_the_paper_rep1_head(self):
        # Example 1.5's rep1(X, X) :- true. deliberately enumerates X.
        from repro.core.paper_programs import EXAMPLE_1_5_REP1

        report = lint_program(EXAMPLE_1_5_REP1)
        assert any(d.predicate == "rep1" for d in report.by_code("SDL-E103"))

    def test_silent_when_every_head_variable_is_bound(self):
        assert "SDL-E103" not in codes_of(lint_program("p(X) :- r(X)."))


# ----------------------------------------------------------------------
# SDL-W201 / W202 / W203: finiteness and strong safety
# ----------------------------------------------------------------------
REP2 = "rep2(X, X) :- true.\nrep2(X ++ Y, Y) :- rep2(X, Y).\n"


class TestPaperTheoryWarnings:
    def test_w201_fires_on_constructive_recursion(self):
        diagnostic = only(lint_program(REP2), "SDL-W201")
        assert diagnostic.severity == "warning"
        assert "Theorem 2" in diagnostic.message
        assert diagnostic.span is not None and diagnostic.span.line == 2

    def test_w202_names_the_cycle(self):
        diagnostic = only(lint_program(REP2), "SDL-W202")
        assert "rep2 -> rep2" in diagnostic.message
        assert "not strongly safe" in diagnostic.message
        assert diagnostic.span is not None and diagnostic.span.line == 2

    def test_w203_reports_unstratifiable_construction(self):
        diagnostic = only(lint_program(REP2), "SDL-W203")
        assert "cannot be stratified" in diagnostic.message

    def test_silent_on_stratified_construction(self):
        # Example 5.1: construction, but no constructive cycle.
        report = lint_program("double(X ++ X) :- r(X).\nquadruple(X ++ X) :- double(X).")
        assert codes_of(report) & {"SDL-W201", "SDL-W202", "SDL-W203"} == set()

    def test_silent_on_structural_recursion(self):
        # rep1 recurses by *inspection* (indexing), not construction.
        report = lint_program("rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).")
        assert codes_of(report) & {"SDL-W201", "SDL-W202", "SDL-W203"} == set()


# ----------------------------------------------------------------------
# SDL-W204: guardedness
# ----------------------------------------------------------------------
class TestUnguardedClause:
    def test_fires_when_a_variable_only_occurs_indexed(self):
        report = lint_program("p(X[1:N]) :- q(X[2:end]).")
        diagnostic = only(report, "SDL-W204")
        assert diagnostic.predicate == "p"
        assert "X" in diagnostic.message
        assert diagnostic.span == SourceSpan(1, 1, 1, 25)

    def test_silent_when_every_variable_is_guarded(self):
        report = lint_program("p(X[1:N]) :- q(X).")
        assert "SDL-W204" not in codes_of(report)


# ----------------------------------------------------------------------
# SDL-H301 / H302 / H303: hygiene
# ----------------------------------------------------------------------
class TestHygieneHints:
    def test_h301_fires_on_a_singleton_body_variable(self):
        report = lint_program("p(X) :- r(X), s(Y).")
        diagnostic = only(report, "SDL-H301")
        assert "singleton variable Y" in diagnostic.message
        assert "_Y" in diagnostic.hint

    def test_h301_silent_on_underscore_and_used_variables(self):
        assert "SDL-H301" not in codes_of(lint_program("p(X) :- r(X), s(_Y)."))
        assert "SDL-H301" not in codes_of(lint_program("p(X, Y) :- r(X), s(Y)."))

    def test_h302_fires_on_a_verbatim_duplicate(self):
        report = lint_program("p(X) :- r(X).\np(X) :- r(X).")
        diagnostic = only(report, "SDL-H302")
        assert diagnostic.span == SourceSpan(2, 1, 2, 13)
        assert "at line 1" in diagnostic.message

    def test_h302_silent_on_distinct_clauses(self):
        report = lint_program("p(X) :- r(X).\np(X) :- s(X).")
        assert "SDL-H302" not in codes_of(report)

    def test_h303_fires_on_an_unreachable_body_predicate(self):
        report = lint_program("p(X) :- p(X).")
        diagnostic = only(report, "SDL-H303")
        assert "can never fire" in diagnostic.message
        assert diagnostic.span == SourceSpan(1, 9, 1, 12)  # the body atom

    def test_h303_emptiness_propagates_through_idb_chains(self):
        # q is defined (a head predicate), but can never hold a fact
        # because its own body predicate has no relation — the clause
        # depending on q is dead, and the span points at the q atom.
        report = lint_program(
            "p(X) :- q(X).\nq(X) :- r(X).", database=db({"t": ["a"]})
        )
        diagnostic = only(report, "SDL-H303")
        assert diagnostic.predicate == "p"
        assert diagnostic.span == SourceSpan(1, 9, 1, 12)

    def test_h303_does_not_double_report_undefined_predicates(self):
        report = lint_program("p(X) :- q(X).", database=db({"r": ["a"]}))
        assert "SDL-E101" in codes_of(report)
        assert "SDL-H303" not in codes_of(report)


# ----------------------------------------------------------------------
# SDL-P401 / P402 / P403: planner-aware performance lints
# ----------------------------------------------------------------------
class TestPerformanceLints:
    def test_p401_fires_on_a_per_tuple_clause(self):
        report = lint_program("suffix(X[N:end]) :- r(X).")
        diagnostic = only(report, "SDL-P401")
        assert diagnostic.predicate == "suffix"
        assert "per-tuple path" in diagnostic.message

    def test_p401_silent_on_a_batchable_clause(self):
        assert "SDL-P401" not in codes_of(lint_program("p(X) :- r(X)."))

    def test_p402_fires_on_a_cartesian_join_with_the_atom_span(self):
        report = lint_program("p(X, Y) :- r(X), s(Y).")
        diagnostic = only(report, "SDL-P402")
        assert "cartesian product" in diagnostic.message
        assert diagnostic.span == SourceSpan(1, 18, 1, 21)  # the s(Y) atom

    def test_p402_silent_when_the_join_shares_a_variable(self):
        report = lint_program("p(X, Y) :- r(X), s(X, Y).")
        assert "SDL-P402" not in codes_of(report)

    def test_p403_fires_on_an_unusable_index(self):
        report = lint_program("p(X) :- r(X), s(X[N:end]).")
        diagnostic = only(report, "SDL-P403")
        assert "composite index" in diagnostic.message
        assert diagnostic.span == SourceSpan(1, 15, 1, 25)  # the s(...) atom

    def test_p403_silent_when_the_scan_is_keyed(self):
        report = lint_program("p(X) :- r(X), s(X).")
        assert "SDL-P403" not in codes_of(report)

    def test_plan_lints_do_not_fire_on_uncompilable_programs(self):
        # Arity conflicts null the plan; the plan-reading rules stay
        # silent instead of crashing.
        report = lint_program(
            "suffix(X[N:end]) :- r(X).\nsuffix(X, Y) :- r(X), r(Y)."
        )
        assert "SDL-E102" in codes_of(report)
        assert codes_of(report) & {"SDL-P401", "SDL-P402", "SDL-P403"} == set()


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class TestRuleRegistry:
    def test_codes_are_unique_and_well_formed(self):
        codes = [rule.code for rule in all_rules()]
        assert len(codes) == len(set(codes))
        for code in codes:
            assert code.startswith("SDL-")
            assert code[4] in "EWHP" and code[5:].isdigit()

    def test_tier_prefixes_match_severities(self):
        tiers = {"E": "error", "W": "warning", "H": "hint", "P": "perf"}
        for rule in all_rules():
            assert rule.severity == tiers[rule.code[4]], rule.code

    def test_run_rules_can_select_a_subset(self):
        context = LintContext(program=parse_program("bad(X) :- r(Y)."))
        selected = run_rules(context, codes=["SDL-E103"])
        assert [d.code for d in selected] == ["SDL-E103"]

    def test_every_rule_is_documented(self):
        from pathlib import Path

        table = Path(__file__).parent.parent / "docs" / "DIAGNOSTICS.md"
        text = table.read_text(encoding="utf-8")
        for rule in all_rules():
            assert rule.code in text, f"{rule.code} missing from docs/DIAGNOSTICS.md"
        assert PARSE_ERROR_CODE in text

    def test_registry_is_importable_by_code(self):
        assert RULES["SDL-E103"].name == "range-restriction"
        assert RULES["SDL-W202"].paper is not None


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_engine_facade_lint_matches_lint_program(self):
        engine = SequenceDatalogEngine("bad(X) :- r(Y).")
        assert engine.lint() == lint_program(engine.program)

    def test_engine_lint_accepts_mapping_databases(self):
        engine = SequenceDatalogEngine("p(X) :- q(X).")
        report = engine.lint(database={"r": ["a"]})
        assert "SDL-E101" in codes_of(report)

    def test_patterns_are_checked_against_signatures(self):
        report = lint_program("p(X) :- r(X).", patterns=["p(X, Y)"])
        diagnostic = only(report, "SDL-E102")
        assert diagnostic.predicate == "p"
        assert diagnostic.span is None

    def test_parsed_programs_keep_their_source_for_rendering(self):
        program = parse_program("bad(X) :- r(Y).")
        report = lint_program(program)
        assert "SDL-E103" in codes_of(report)

    def test_explain_with_diagnostics_appends_the_findings(self):
        engine = SequenceDatalogEngine("bad(X) :- r(Y).")
        text = engine.explain()
        assert "diagnostics:" in text
        assert "SDL-E103" in text
        clean = SequenceDatalogEngine("p(X) :- r(X).").explain()
        assert clean.rstrip().endswith("none")

    def test_lint_accepts_parsed_pattern_atoms(self):
        report = lint_program("p(X) :- r(X).", patterns=[parse_atom("p(X)")])
        assert "SDL-E102" not in codes_of(report)


# ----------------------------------------------------------------------
# The human renderer
# ----------------------------------------------------------------------
class TestRendering:
    def test_render_golden_output(self):
        source = "bad(X) :- r(Y).\n"
        report = lint_program(source)
        expected = (
            "demo.sdl:1:1: SDL-E103 error: head sequence variable X of 'bad' "
            "occurs in no body literal: the head is enumerated over the entire "
            "extended domain\n"
            "    1 | bad(X) :- r(Y).\n"
            "      | ^^^^^^\n"
            "      = hint: add a body atom that binds X (a guard such as dom(X))\n"
            "demo.sdl:1:1: SDL-W204 warning: clause is not guarded: sequence "
            "variable(s) X never occur as a bare argument of a body atom, so "
            "derivations are sensitive to the extended active domain\n"
            "    1 | bad(X) :- r(Y).\n"
            "      | ^^^^^^^^^^^^^^^\n"
            "      = hint: guard_program() adds dom(...) guards mechanically "
            "(Theorem 10)\n"
            "demo.sdl:1:1: SDL-P401 perf: clause runs on the per-tuple path, "
            "not the batch kernels: head enumerates unbound variables\n"
            "    1 | bad(X) :- r(Y).\n"
            "      | ^^^^^^^^^^^^^^^\n"
            "      = hint: bind every head variable in the body to avoid "
            "domain enumeration\n"
            "demo.sdl:1:1: SDL-H301 hint: singleton variable Y: each occurs "
            "exactly once in the clause\n"
            "    1 | bad(X) :- r(Y).\n"
            "      | ^^^^^^^^^^^^^^^\n"
            "      = hint: rename to _Y if the value is intentionally unused\n"
            "4 diagnostics: 1 error, 1 warning, 1 perf, 1 hint"
        )
        assert report.render(source, filename="demo.sdl") == expected

    def test_render_survives_missing_source(self):
        report = lint_program(parse_program("bad(X) :- r(Y)."))
        rendered = report.render(None)
        assert "SDL-E103" in rendered and "^" not in rendered.split("\n")[1]

    def test_caret_width_matches_the_span(self):
        source = "bad(X) :- r(Y).\n"
        rendered = lint_program(source).render(source)
        caret_lines = [line for line in rendered.splitlines() if "^" in line]
        assert caret_lines[0].count("^") == 6  # bad(X) is six characters

    def test_describe_is_excerpt_free(self):
        described = lint_program("bad(X) :- r(Y).").describe()
        assert "^" not in described
        assert described.splitlines()[0].startswith("1:1: SDL-E103 error:")


# ----------------------------------------------------------------------
# The CI corpus gate
# ----------------------------------------------------------------------
class TestLintCorpusGate:
    @pytest.fixture(autouse=True)
    def _scripts_on_path(self, monkeypatch):
        from pathlib import Path
        import sys

        scripts = str(Path(__file__).parent.parent / "scripts")
        monkeypatch.syspath_prepend(scripts)
        yield
        sys.modules.pop("lint_corpus", None)

    def test_every_shipped_workload_passes_the_gate(self, capsys):
        import lint_corpus

        assert lint_corpus.main([]) == 0
        assert "lint corpus clean" in capsys.readouterr().out

    def test_the_gate_fails_on_unexpected_errors(self):
        import lint_corpus

        program = parse_program("bad(X) :- r(Y).")
        _report, failures = lint_corpus.check_program("synthetic/bad", program)
        assert failures and "SDL-E103" in failures[0]

    def test_the_gate_fails_when_an_allowlisted_code_stops_firing(self):
        import lint_corpus

        clean = parse_program("p(X) :- r(X).")
        name = sorted(lint_corpus.EXPECTED_ERRORS)[0]
        _report, failures = lint_corpus.check_program(name, clean)
        assert failures and "no longer fires" in failures[0]
