"""Tests for the temporal-logic list query baseline (Section 1.1, [27]).

The evaluator implements finite-trace LTL over sequences.  The tests check
the connective semantics, the ready-made formulas, and the comparison the
paper makes: the temporal baseline captures the *regular shape* of
Example 1.3 (a-block then b-block then c-block) but not the equal-length
requirement, and it cannot express the "every even position" property --
whereas Sequence Datalog expresses both.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.temporal import (
    Always,
    And,
    AtEnd,
    Eventually,
    Next,
    Not,
    Or,
    Proposition,
    Until,
    contains_symbol_formula,
    ends_with_formula,
    evaluate,
    every_even_position_reference,
    holds,
    satisfying_positions,
    sorted_blocks_formula,
    symbol,
)
from repro.errors import ValidationError
from repro.workloads import anbncn


# ----------------------------------------------------------------------
# Connectives
# ----------------------------------------------------------------------
class TestConnectives:
    def test_proposition_requires_single_symbols(self):
        with pytest.raises(ValidationError):
            Proposition(["ab"])
        with pytest.raises(ValidationError):
            Proposition([])

    def test_proposition_tests_current_symbol(self):
        assert holds(symbol("a"), "abc")
        assert not holds(symbol("b"), "abc")
        assert not holds(symbol("a"), "")

    def test_boolean_connectives(self):
        a, b = symbol("a"), symbol("b")
        assert holds(Or(a, b), "b")
        assert not holds(And(a, b), "a")
        assert holds(Not(b), "a")
        # Operator sugar.
        assert holds(a | b, "b")
        assert holds(~b, "a")
        assert not holds(a & b, "a")

    def test_next_is_strong(self):
        assert holds(Next(symbol("b")), "ab")
        assert not holds(Next(symbol("b")), "a")
        assert not holds(Next(symbol("b")), "")

    def test_eventually_and_always(self):
        assert holds(Eventually(symbol("c")), "abc")
        assert not holds(Eventually(symbol("z")), "abc")
        assert holds(Always(symbol("a")), "aaa")
        assert not holds(Always(symbol("a")), "aba")
        # Vacuous truth on the empty list, and Eventually needs a witness.
        assert holds(Always(symbol("a")), "")
        assert not holds(Eventually(symbol("a")), "")

    def test_until(self):
        formula = Until(symbol("a"), symbol("b"))
        assert holds(formula, "aaab")
        assert holds(formula, "b")
        assert not holds(formula, "aaac")
        assert not holds(formula, "aaa")

    def test_at_end_marks_the_position_past_the_list(self):
        assert AtEnd().holds_at("ab", 2)
        assert not AtEnd().holds_at("ab", 1)
        assert holds(AtEnd(), "")

    def test_str_forms_are_readable(self):
        formula = Until(symbol("a"), And(symbol("b"), Next(AtEnd())))
        assert "U" in str(formula) and "X" in str(formula)

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ab", max_size=8))
    def test_eventually_equals_not_always_not(self, word):
        phi = symbol("a")
        assert holds(Eventually(phi), word) == (not holds(Always(Not(phi)), word)) or (
            # The two differ only past the end of the list: Eventually also
            # inspects the empty suffix, where no proposition holds.
            holds(Always(Not(phi)), word)
        )

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ab", max_size=8))
    def test_always_distributes_over_and(self, word):
        a, b = symbol("a"), symbol("b")
        left = holds(Always(And(a, b)), word)
        right = holds(And(Always(a), Always(b)), word)
        assert left == right


# ----------------------------------------------------------------------
# Ready-made formulas
# ----------------------------------------------------------------------
class TestReadyMadeFormulas:
    def test_contains_symbol(self):
        formula = contains_symbol_formula("g")
        assert holds(formula, "acgt")
        assert not holds(formula, "acat")

    def test_ends_with(self):
        formula = ends_with_formula("ba")
        assert holds(formula, "aba")
        assert holds(formula, "ba")
        assert not holds(formula, "ab")
        assert not holds(formula, "")

    def test_sorted_blocks_accepts_the_regular_shape(self):
        formula = sorted_blocks_formula(("a", "b", "c"))
        for word in ("", "abc", "aabbcc", "ac", "aaabc", "bbc", "c"):
            assert holds(formula, word), word

    def test_sorted_blocks_rejects_out_of_order_symbols(self):
        formula = sorted_blocks_formula(("a", "b", "c"))
        for word in ("ba", "cb", "abca", "cab", "bca"):
            assert not holds(formula, word), word

    def test_sorted_blocks_needs_at_least_two_symbols(self):
        with pytest.raises(ValidationError):
            sorted_blocks_formula(("a",))

    def test_evaluate_selects_from_a_relation(self):
        formula = contains_symbol_formula("b")
        assert evaluate(formula, ["ab", "aa", "ba", "ccc"]) == ["ab", "ba"]

    def test_satisfying_positions_are_one_based(self):
        assert satisfying_positions(symbol("a"), "aba") == [1, 3]

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc", max_size=8))
    def test_sorted_blocks_equals_sortedness(self, word):
        formula = sorted_blocks_formula(("a", "b", "c"))
        assert holds(formula, word) == (list(word) == sorted(word))


# ----------------------------------------------------------------------
# The Section 1.1 comparison
# ----------------------------------------------------------------------
class TestComparisonWithSequenceDatalog:
    def test_shape_formula_overapproximates_example_1_3(self):
        """The temporal formula accepts every a^n b^n c^n word but also
        unequal-block words; Sequence Datalog accepts exactly the language."""
        formula = sorted_blocks_formula(("a", "b", "c"))
        members = [anbncn(n) for n in range(4)]
        non_members_with_shape = ["aab", "abcc", "aabbccc"]
        for word in members:
            assert holds(formula, word)
        for word in non_members_with_shape:
            assert holds(formula, word)  # temporal logic cannot tell them apart

        from repro import SequenceDatalogEngine
        from repro.core import paper_programs

        engine = SequenceDatalogEngine(paper_programs.anbncn_program())
        answers = {
            t[0]
            for t in engine.run(
                {"r": members + non_members_with_shape}, "answer(X)"
            ).texts()
        }
        assert answers == set(members)

    def test_even_position_property_expressed_in_sequence_datalog(self):
        """The property temporal logic cannot express (every even position
        carries 'a') is a two-line structural-recursion program in Sequence
        Datalog; both are compared against the plain-Python reference."""
        from repro import SequenceDatalogEngine

        program = """
        even_ok(X) :- r(X), check(X).
        check("") :- true.
        check(X) :- X[2:end] = "".
        check(X) :- X[2] = "a", check(X[3:end]).
        """
        words = ["", "b", "ba", "bab", "baba", "bb", "babb", "ab", "aa", "abab"]
        engine = SequenceDatalogEngine(program)
        answers = {t[0] for t in engine.run({"r": words}, "even_ok(X)").texts()}
        expected = {w for w in words if every_even_position_reference(w, "a")}
        assert answers == expected
