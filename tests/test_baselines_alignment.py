"""Tests for the alignment-logic baseline: multi-tape two-way NFA acceptors.

Section 1.1 of the paper describes the computational counterpart of
alignment logic [20] as multi-tape, nondeterministic, two-way finite-state
automata that accept or reject tuples of sequences.  These tests check the
machine model (end-marker discipline, configuration-graph acceptance) and
the standard acceptors, including the two-head acceptor for the
non-context-free language a^n b^n c^n of Example 1.3.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.alignment import (
    LEFT,
    LEFT_MARKER,
    RIGHT,
    RIGHT_MARKER,
    AlignmentAutomaton,
    AlignmentBuilder,
    AlignmentTransition,
    accepts_anbncn,
    anbncn_acceptor,
    equal_sequences_acceptor,
    subsequence_acceptor,
    suffix_acceptor,
)
from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.workloads import anbncn


def is_scattered_subsequence(needle: str, haystack: str) -> bool:
    iterator = iter(haystack)
    return all(symbol in iterator for symbol in needle)


# ----------------------------------------------------------------------
# Machine model
# ----------------------------------------------------------------------
class TestMachineModel:
    def test_needs_at_least_one_tape(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentAutomaton("bad", 0, "ab", "q0", ["q0"], {})

    def test_invalid_move_symbol_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentTransition("q0", ("x",))

    def test_cannot_walk_left_of_left_marker(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentAutomaton(
                "bad", 1, "ab", "q0", [],
                {("q0", (LEFT_MARKER,)): [AlignmentTransition("q0", (LEFT,))]},
            )

    def test_cannot_walk_right_of_right_marker(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentAutomaton(
                "bad", 1, "ab", "q0", [],
                {("q0", (RIGHT_MARKER,)): [AlignmentTransition("q0", (RIGHT,))]},
            )

    def test_key_arity_must_match_tapes(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentAutomaton(
                "bad", 2, "ab", "q0", [],
                {("q0", ("a",)): [AlignmentTransition("q0", (RIGHT, RIGHT))]},
            )

    def test_moves_arity_must_match_tapes(self):
        with pytest.raises(TransducerDefinitionError):
            AlignmentAutomaton(
                "bad", 2, "ab", "q0", [],
                {("q0", ("a", "a")): [AlignmentTransition("q0", (RIGHT,))]},
            )

    def test_wrong_input_arity_raises_at_runtime(self):
        acceptor = equal_sequences_acceptor("ab")
        with pytest.raises(TransducerRuntimeError):
            acceptor.accepts("ab")

    def test_initial_accepting_state_accepts_everything(self):
        trivial = AlignmentAutomaton("trivial", 1, "ab", "q0", ["q0"], {})
        assert trivial.accepts("abba")
        assert trivial.accepts("")

    def test_two_way_loop_terminates(self):
        """A machine that bounces forever between two cells still yields a
        decision because acceptance explores the finite configuration graph."""
        builder = AlignmentBuilder("bounce", num_tapes=1, alphabet="a")
        builder.add("q0", (LEFT_MARKER,), "q0", (RIGHT,))
        builder.add("q0", ("a",), "q1", (RIGHT,))
        builder.add("q1", ("a",), "q0", (LEFT,))
        builder.add("q1", (RIGHT_MARKER,), "q1", (LEFT,))
        machine = builder.build(initial_state="q0")
        assert machine.accepts("aaa") is False


# ----------------------------------------------------------------------
# Standard acceptors
# ----------------------------------------------------------------------
class TestEqualityAcceptor:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", max_size=6), st.text(alphabet="ab", max_size=6))
    def test_accepts_iff_equal(self, first, second):
        acceptor = equal_sequences_acceptor("ab")
        assert acceptor.accepts(first, second) == (first == second)

    def test_accepted_tuples_filters_a_relation(self):
        acceptor = equal_sequences_acceptor("ab")
        pairs = acceptor.accepted_tuples(["a", "ab", "b"], ["ab", "b", "ba"])
        assert pairs == {("ab", "ab"), ("b", "b")}


class TestSuffixAcceptor:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", max_size=6), st.text(alphabet="ab", max_size=6))
    def test_accepts_iff_suffix(self, word, candidate):
        acceptor = suffix_acceptor("ab")
        assert acceptor.accepts(word, candidate) == word.endswith(candidate)

    def test_empty_suffix_always_accepted(self):
        acceptor = suffix_acceptor("ab")
        assert acceptor.accepts("abab", "")
        assert acceptor.accepts("", "")


class TestSubsequenceAcceptor:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", max_size=6), st.text(alphabet="ab", max_size=4))
    def test_accepts_iff_scattered_subsequence(self, haystack, needle):
        acceptor = subsequence_acceptor("ab")
        assert acceptor.accepts(haystack, needle) == is_scattered_subsequence(
            needle, haystack
        )


class TestAnbncnAcceptor:
    def test_accepts_members_of_the_language(self):
        for n in range(0, 6):
            assert accepts_anbncn(anbncn(n))

    @pytest.mark.parametrize(
        "word",
        ["a", "b", "c", "ab", "abcc", "aabbc", "aabbbcc", "abcabc", "cba", "ba"],
    )
    def test_rejects_non_members(self, word):
        assert not accepts_anbncn(word)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abc", max_size=9))
    def test_agreement_with_reference_predicate(self, word):
        n, remainder = divmod(len(word), 3)
        reference = remainder == 0 and word == "a" * n + "b" * n + "c" * n
        assert accepts_anbncn(word) == reference

    def test_acceptor_properties(self):
        acceptor = anbncn_acceptor()
        assert acceptor.num_tapes == 2
        assert "anbncn" in repr(acceptor)


# ----------------------------------------------------------------------
# Comparison with Sequence Datalog (the Section 1.1 point)
# ----------------------------------------------------------------------
class TestComparisonWithSequenceDatalog:
    def test_alignment_acceptor_and_datalog_agree_on_example_1_3(self):
        from repro import SequenceDatalogEngine
        from repro.core import paper_programs

        words = ["", "abc", "aabbcc", "aabbc", "abcabc", "ab"]
        engine = SequenceDatalogEngine(paper_programs.anbncn_program())
        accepted_by_datalog = {
            t[0] for t in engine.run({"r": words}, "answer(X)").texts()
        }
        accepted_by_automaton = {word for word in words if accepts_anbncn(word)}
        assert accepted_by_datalog == accepted_by_automaton == {"", "abc", "aabbcc"}

    def test_acceptors_select_but_never_construct(self):
        """accepted_tuples only ever returns stored sequences -- the
        limitation Section 1.1 contrasts with Sequence Datalog's
        constructive terms."""
        acceptor = suffix_acceptor("ab")
        stored = ["ab", "b", "ba"]
        tuples = acceptor.accepted_tuples(stored, stored)
        flattened = {element for pair in tuples for element in pair}
        assert flattened <= set(stored)
