"""Shared fixtures for the test suite.

All databases used in tests are tiny: the engine implements active-domain
semantics faithfully, which is polynomial but not fast, and the point of the
tests is semantic correctness, not throughput (throughput is measured by the
benchmark harness).
"""

from __future__ import annotations

import pytest

from repro.database import SequenceDatabase
from repro.engine.limits import EvaluationLimits
from repro.transducers import TransducerCatalog, library


@pytest.fixture
def small_string_db() -> SequenceDatabase:
    """A unary relation ``r`` with a handful of short strings."""
    return SequenceDatabase.from_dict({"r": ["abc", "ab", ""]})


@pytest.fixture
def binary_db() -> SequenceDatabase:
    """A unary relation ``r`` of short binary strings (Example 1.4 workload)."""
    return SequenceDatabase.from_dict({"r": ["110", "01", "1"]})


@pytest.fixture
def dna_db() -> SequenceDatabase:
    """A ``dnaseq`` relation with two short DNA strings (Example 7.1)."""
    return SequenceDatabase.from_dict({"dnaseq": ["acgtac", "ttagga"]})


@pytest.fixture
def data_dir(tmp_path) -> str:
    """A fresh durable-storage data directory (tmp-dir hygiene: pytest
    removes it with the test's tmp_path, so crash-simulation leftovers —
    abandoned WAL handles, half-written snapshots — never escape)."""
    return str(tmp_path / "data")


@pytest.fixture
def test_limits() -> EvaluationLimits:
    """Limits small enough to terminate quickly on infinite programs."""
    return EvaluationLimits(
        max_iterations=60,
        max_facts=60_000,
        max_domain_size=60_000,
        max_sequence_length=400,
    )


@pytest.fixture
def genome_catalog() -> TransducerCatalog:
    """The catalog used by the Example 7.1 program."""
    return TransducerCatalog(
        [library.transcribe_transducer(), library.translate_transducer()]
    )
