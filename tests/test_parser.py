"""Tests for the concrete syntax parser."""

import pytest

from repro.core import paper_programs
from repro.errors import ParseError, ValidationError
from repro.language.atoms import Atom
from repro.language.parser import parse_atom, parse_clause, parse_program, parse_term
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexVariable,
    IndexedTerm,
    SequenceVariable,
    TransducerTerm,
)


class TestTermParsing:
    def test_constant(self):
        assert parse_term('"acgt"') == ConstantTerm("acgt")

    def test_empty_sequence_and_eps(self):
        assert parse_term('""') == ConstantTerm("")
        assert parse_term("eps") == ConstantTerm("")

    def test_variable(self):
        assert parse_term("X") == SequenceVariable("X")

    def test_indexed_range(self):
        term = parse_term("X[N:end]")
        assert term == IndexedTerm(SequenceVariable("X"), IndexVariable("N"), End())

    def test_indexed_single_position(self):
        term = parse_term("X[3]")
        assert term == IndexedTerm(SequenceVariable("X"), IndexConstant(3), IndexConstant(3))

    def test_index_arithmetic(self):
        term = parse_term("X[N+1:end-2]")
        assert isinstance(term, IndexedTerm)
        assert term.lo == IndexSum(IndexVariable("N"), IndexConstant(1), "+")
        assert term.hi == IndexSum(End(), IndexConstant(2), "-")

    def test_left_associative_index_arithmetic(self):
        term = parse_term("X[end-5+M]")
        assert isinstance(term, IndexedTerm)
        assert term.lo == IndexSum(
            IndexSum(End(), IndexConstant(5), "-"), IndexVariable("M"), "+"
        )

    def test_concatenation(self):
        term = parse_term('X ++ "a" ++ Y[1]')
        assert isinstance(term, ConcatTerm)
        assert len(term.parts) == 3

    def test_indexed_constant(self):
        term = parse_term('"ccgt"[1:2]')
        assert term == IndexedTerm(ConstantTerm("ccgt"), IndexConstant(1), IndexConstant(2))

    def test_transducer_term(self):
        term = parse_term("@append(X, Y)")
        assert term == TransducerTerm("append", [SequenceVariable("X"), SequenceVariable("Y")])

    def test_nested_transducer_terms(self):
        term = parse_term("@t1(X, @t2(Y, Z))")
        assert isinstance(term, TransducerTerm)
        assert isinstance(term.args[1], TransducerTerm)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_term("X Y")


class TestAtomAndClauseParsing:
    def test_atom(self):
        atom = parse_atom("p(X, Y)")
        assert atom == Atom("p", [SequenceVariable("X"), SequenceVariable("Y")])

    def test_zero_arity_atom(self):
        assert parse_atom("p") == Atom("p", [])

    def test_fact_clause(self):
        clause = parse_clause('r("abc").')
        assert clause.is_fact()

    def test_rule_with_true_body(self):
        clause = parse_clause('abcn("", "", "") :- true.')
        assert clause.is_fact()

    def test_rule_with_comparisons(self):
        clause = parse_clause('p(X) :- q(X), X[1] = "a", X != "".')
        comparisons = clause.body_comparisons()
        assert len(comparisons) == 2
        assert comparisons[0].is_equality()
        assert not comparisons[1].is_equality()

    def test_alternative_arrow(self):
        assert parse_clause("p(X) <- q(X).") == parse_clause("p(X) :- q(X).")

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("p(X) :- q(X)")

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            parse_clause('p("ab) :- q(X).')

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("p(X) :- q(X) & r(X).")

    def test_error_location_is_reported(self):
        try:
            parse_program("p(X) :- q(X).\np(Y) :- ??.")
        except ParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a ParseError")


class TestProgramParsing:
    def test_comments_and_blank_lines(self):
        program = parse_program(
            """
            % a comment
            p(X) :- q(X).   # another comment
            """
        )
        assert len(program) == 1

    @pytest.mark.parametrize(
        "source",
        [
            paper_programs.EXAMPLE_1_1_SUFFIXES,
            paper_programs.EXAMPLE_1_2_CONCATENATIONS,
            paper_programs.EXAMPLE_1_3_ANBNCN,
            paper_programs.EXAMPLE_1_4_REVERSE,
            paper_programs.EXAMPLE_1_5_REP1,
            paper_programs.EXAMPLE_1_5_REP2,
            paper_programs.EXAMPLE_1_6_ECHO,
            paper_programs.EXAMPLE_5_1_STRATIFIED,
            paper_programs.EXAMPLE_7_1_GENOME,
            paper_programs.EXAMPLE_7_2_TRANSCRIBE_SIMULATION,
            paper_programs.EXAMPLE_8_1_P1,
            paper_programs.EXAMPLE_8_1_P2,
            paper_programs.EXAMPLE_8_1_P3,
        ],
    )
    def test_every_paper_program_parses(self, source):
        program = parse_program(source)
        assert len(program) >= 1
        program.validate()

    @pytest.mark.parametrize(
        "source",
        [
            paper_programs.EXAMPLE_1_3_ANBNCN,
            paper_programs.EXAMPLE_1_4_REVERSE,
            paper_programs.EXAMPLE_7_1_GENOME,
            paper_programs.EXAMPLE_8_1_P1,
        ],
    )
    def test_pretty_print_round_trip(self, source):
        program = parse_program(source)
        assert parse_program(str(program)) == program

    def test_constructive_terms_rejected_in_bodies_by_parser_pipeline(self):
        with pytest.raises(ValidationError):
            parse_program("p(X) :- q(X ++ Y).")
