"""Tests for demand-driven (magic-set-style) query evaluation, plus
regression tests for the serving-path bugfixes that shipped with it:

* ``add_facts(["xy"])`` must raise instead of inserting the bogus ``x("y")``;
* a session whose maintenance run failed is poisoned and refuses queries
  (both at the API and through ``cli serve``);
* ``max_iterations = N`` permits exactly N evaluation rounds (the database
  load is round 1), consistently across all strategies;
* prepared-query cache keys are canonical (parse-then-canonical-str).
"""

import io

import pytest

from repro import DatalogSession, SequenceDatabase, SequenceDatalogEngine
from repro.cli import main
from repro.core import paper_programs
from repro.engine import compute_least_fixpoint, evaluate_query
from repro.engine.demand import adornment_of, compile_demand, demand_query
from repro.engine.fixpoint import COMPILED, NAIVE, SEMI_NAIVE
from repro.engine.limits import EvaluationLimits
from repro.engine.plan import AtomScan
from repro.errors import (
    FixpointNotReached,
    SessionPoisonedError,
    ValidationError,
)
from repro.language.parser import parse_atom, parse_program

#: Two independent subsystems over disjoint base relations plus a shared
#: transcription pipeline: the natural shape for relevance restriction.
COMPOSED_PROGRAM = """
rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
transcribe("", "") :- true.
transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R), trans(D[N+1], T).
trans("a", "u") :- true.
trans("t", "a") :- true.
trans("c", "g") :- true.
trans("g", "c") :- true.
suffix(X[N:end]) :- other(X).
doubled(X ++ X) :- other(X).
"""

COMPOSED_DB = {"dnaseq": ["acgt", "ttag", "cg"], "other": ["abcdef", "xyz"]}


def composed_full():
    return compute_least_fixpoint(
        parse_program(COMPOSED_PROGRAM), SequenceDatabase.from_dict(COMPOSED_DB)
    )


class TestAdornment:
    def test_bound_and_free_positions(self):
        assert adornment_of('rnaseq("acgt", R)') == "bf"
        assert adornment_of("rnaseq(D, R)") == "ff"
        assert adornment_of('p("a", X, "b")') == "bfb"
        assert adornment_of(parse_atom("p")) == ""

    def test_ground_indexed_terms_are_bound(self):
        assert adornment_of('p("abc"[1:2], X)') == "bf"
        # An index variable makes the position free.
        assert adornment_of('p("abc"[N], X)') == "ff"


class TestRelevanceRestriction:
    def test_relevant_predicates_follow_the_dependency_graph(self):
        compiled = compile_demand(COMPOSED_PROGRAM, "rnaseq(D, R)")
        assert compiled.profile.restricted
        assert compiled.profile.relevant == frozenset(
            {"rnaseq", "dnaseq", "transcribe", "trans"}
        )

    def test_slice_is_strictly_smaller_and_answers_identical(self):
        full = composed_full()
        for pattern in ("rnaseq(D, R)", "suffix(S)", "trans(X, Y)"):
            compiled = compile_demand(COMPOSED_PROGRAM, pattern)
            result = compiled.materialize(SequenceDatabase.from_dict(COMPOSED_DB))
            assert result.fact_count < full.fact_count
            assert sorted(compiled.query(result).texts()) == sorted(
                evaluate_query(full.interpretation, pattern).texts()
            )

    def test_irrelevant_base_facts_are_not_loaded(self):
        compiled = compile_demand(COMPOSED_PROGRAM, "suffix(S)")
        result = compiled.materialize(SequenceDatabase.from_dict(COMPOSED_DB))
        assert result.interpretation.relation("dnaseq") is None
        assert result.interpretation.relation("other") is not None

    def test_dependency_graph_relevance_helpers(self):
        from repro.analysis.dependency_graph import build_dependency_graph

        graph = build_dependency_graph(parse_program(COMPOSED_PROGRAM))
        assert graph.dependencies_of("rnaseq") == frozenset(
            {"rnaseq", "dnaseq", "transcribe", "trans"}
        )
        assert graph.dependencies_of("nosuch") == frozenset({"nosuch"})
        assert not graph.is_self_reachable("rnaseq")
        assert graph.is_self_reachable("transcribe")
        # A direct self-loop counts (nx.descendants alone would miss it).
        loop = build_dependency_graph(parse_program("q(X[2:end]) :- q(X)."))
        assert loop.is_self_reachable("q")

    def test_unknown_predicate_pattern_is_empty(self):
        answers = demand_query(
            COMPOSED_PROGRAM, SequenceDatabase.from_dict(COMPOSED_DB), "nosuch(X)"
        )
        assert answers.is_empty()


class TestConstantSeeding:
    def test_constants_are_pushed_into_defining_clauses(self):
        compiled = compile_demand(COMPOSED_PROGRAM, 'rnaseq("acgt", R)')
        assert compiled.profile.restricted
        assert compiled.profile.seeds == (("D", "acgt"),)
        # The seeded clause's scans use the pre-bound variable as an index
        # lookup column.
        seeded_plans = [
            plan
            for plan in compiled._program_plan.program_plans
            if plan.seed_sequences
        ]
        assert len(seeded_plans) == 1
        scans = [
            step for step in seeded_plans[0].steps if isinstance(step, AtomScan)
        ]
        assert scans and scans[0].bound_columns == (0,)

    def test_seeded_slice_restricts_the_queried_predicate(self):
        full = composed_full()
        compiled = compile_demand(COMPOSED_PROGRAM, 'rnaseq("acgt", R)')
        result = compiled.materialize(SequenceDatabase.from_dict(COMPOSED_DB))
        # Only the matching strand's rnaseq fact is derived.
        assert len(result.interpretation.tuples("rnaseq")) == 1
        assert result.fact_count < full.fact_count
        assert compiled.query(result).texts() == [("acgt", "ugca")]

    def test_contradicted_constant_heads_are_pruned(self):
        program = 'colour("red") :- true. colour("blue") :- true. colour(X) :- extra(X).'
        compiled = compile_demand(program, 'colour("red")')
        assert compiled.profile.pruned_clauses == 1
        answers = compiled.run(SequenceDatabase.from_dict({"extra": ["green"]}))
        assert answers.texts() == [("red",)]
        assert compiled.run(SequenceDatabase.from_dict({})).texts() == [("red",)]

    def test_recursive_query_predicate_is_not_seeded(self):
        program = "q(X) :- s(X). q(X[2:end]) :- q(X), r(X)."
        compiled = compile_demand(program, 'q("cd")')
        assert compiled.profile.restricted
        assert compiled.profile.seeds == ()
        db = SequenceDatabase.from_dict({"s": ["abcd"], "r": ["abcd", "bcd"]})
        full = compute_least_fixpoint(parse_program(program), db)
        assert sorted(compiled.run(db).texts()) == sorted(
            evaluate_query(full.interpretation, 'q("cd")').texts()
        )

    def test_unsatisfiable_ground_argument_short_circuits(self):
        compiled = compile_demand(COMPOSED_PROGRAM, 'suffix("abc"[9])')
        assert compiled.profile.unsatisfiable
        result = compiled.materialize(SequenceDatabase.from_dict(COMPOSED_DB))
        assert result.fact_count == 0
        assert compiled.query(result).is_empty()


class TestDomainSensitivityFallback:
    def test_head_enumeration_falls_back(self):
        # `pair(X, Y) :- r(X).` enumerates Y over the whole extended domain,
        # which a restricted model would shrink.
        program = "pair(X, Y) :- r(X). unrelated(Z) :- s(Z)."
        compiled = compile_demand(program, "pair(A, B)")
        assert not compiled.profile.restricted
        assert "extended domain" in compiled.profile.fallback_reason
        db = SequenceDatabase.from_dict({"r": ["ab"], "s": ["xy"]})
        full = compute_least_fixpoint(parse_program(program), db)
        # The fallback still answers exactly (here: Y ranges over domain
        # sequences contributed by the "irrelevant" relation s too).
        assert sorted(compiled.run(db).texts()) == sorted(
            evaluate_query(full.interpretation, "pair(A, B)").texts()
        )

    def test_domain_sensitive_pattern_falls_back(self):
        compiled = compile_demand(COMPOSED_PROGRAM, "suffix(X[N:end])")
        assert not compiled.profile.restricted
        full = composed_full()
        assert sorted(
            compiled.run(SequenceDatabase.from_dict(COMPOSED_DB)).texts()
        ) == sorted(
            evaluate_query(full.interpretation, "suffix(X[N:end])").texts()
        )

    def test_guarded_recursion_stays_restricted(self):
        compiled = compile_demand(COMPOSED_PROGRAM, "rnaseq(D, R)")
        assert compiled.profile.restricted

    def test_seeding_must_not_mask_head_enumeration_sensitivity(self):
        # X is enumerated over the whole domain; seeding X="zz" would make
        # the plan look insensitive and derive p("zz") although the full
        # fixpoint never contains it ("zz" is not a domain sequence).
        program = "p(X) :- q(Y)."
        compiled = compile_demand(program, 'p("zz")')
        assert not compiled.profile.restricted
        db = SequenceDatabase.from_dict({"q": ["a"]})
        assert compiled.run(db).is_empty()
        full = compute_least_fixpoint(parse_program(program), db)
        assert evaluate_query(full.interpretation, 'p("zz")').is_empty()

    def test_seeding_must_not_mask_constant_equality_sensitivity(self):
        # Unseeded, Y = "zz" binds Y under a domain-membership check that
        # fails; seeding Y would turn it into an always-true filter.
        program = 'p(Y) :- r(X), Y = "zz".'
        compiled = compile_demand(program, 'p("zz")')
        assert not compiled.profile.restricted
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        full = compute_least_fixpoint(parse_program(program), db)
        assert sorted(compiled.run(db).texts()) == sorted(
            evaluate_query(full.interpretation, 'p("zz")').texts()
        )

    def test_strict_demand_query_knows_program_predicates_by_default(self):
        from repro.errors import UnknownPredicateError

        program = "p(X) :- q(X), r(X)."
        db = SequenceDatabase.from_dict({"q": ["a"]})
        # p is defined but derived nothing (r is empty): empty, not an error.
        assert demand_query(program, db, "p(X)", strict=True).is_empty()
        # r never appears as a fact but the program names it.
        assert demand_query(program, db, "r(X)", strict=True).is_empty()
        with pytest.raises(UnknownPredicateError):
            demand_query(program, db, "pp(X)", strict=True)


class TestEngineApiSurface:
    def test_query_demand_takes_the_database(self):
        engine = SequenceDatalogEngine(COMPOSED_PROGRAM)
        answers = engine.query(COMPOSED_DB, 'rnaseq("acgt", R)', demand=True)
        assert answers.texts() == [("acgt", "ugca")]

    def test_query_demand_rejects_computed_fixpoints(self):
        engine = SequenceDatalogEngine(COMPOSED_PROGRAM)
        result = engine.evaluate(COMPOSED_DB)
        with pytest.raises(ValidationError):
            engine.query(result, "rnaseq(D, R)", demand=True)

    def test_run_demand_matches_run(self):
        engine = SequenceDatalogEngine(COMPOSED_PROGRAM)
        assert sorted(engine.run(COMPOSED_DB, "suffix(S)", demand=True).texts()) == sorted(
            engine.run(COMPOSED_DB, "suffix(S)").texts()
        )

    def test_strict_demand_distinguishes_unknown_predicates(self):
        from repro.errors import UnknownPredicateError

        engine = SequenceDatalogEngine(COMPOSED_PROGRAM)
        # Known but empty: the program defines it, the slice derived nothing.
        assert engine.query(
            {"other": []}, "suffix(S)", strict=True, demand=True
        ).is_empty()
        with pytest.raises(UnknownPredicateError):
            engine.query(COMPOSED_DB, "sufix(S)", strict=True, demand=True)


class TestSessionDemandMode:
    def test_lazy_session_never_materializes_for_demand_queries(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB, lazy=True)
        assert session.query('rnaseq("acgt", R)', demand=True).texts() == [
            ("acgt", "ugca")
        ]
        assert not session.stats()["materialized"]

    def test_slices_are_cached_and_invalidated_by_add_facts(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB, lazy=True)
        session.query("rnaseq(D, R)", demand=True)
        session.query("rnaseq(D, R)", demand=True)
        stats = session.stats()["demand_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        session.add_facts({"dnaseq": ["gg"]})
        assert session.stats()["demand_cache"]["live_slices"] == 0
        answers = session.query("rnaseq(D, R)", demand=True)
        assert ("gg", "cc") in [pair for pair in answers.texts()]
        assert session.stats()["demand_cache"]["misses"] == 2

    def test_irrelevant_additions_keep_cached_slices_alive(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB, lazy=True)
        session.query("rnaseq(D, R)", demand=True)
        assert session.stats()["demand_cache"]["live_slices"] == 1
        # "other" feeds only the suffix/doubled subsystem: the rnaseq slice
        # cannot observe it and must survive.
        session.add_facts({"other": ["zz"]})
        assert session.stats()["demand_cache"]["live_slices"] == 1
        session.query("rnaseq(D, R)", demand=True)
        assert session.stats()["demand_cache"]["hits"] == 1
        # A relevant addition still invalidates.
        session.add_facts({"dnaseq": ["gg"]})
        assert session.stats()["demand_cache"]["live_slices"] == 0

    def test_demand_answers_equal_resident_answers(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB)
        for pattern in ("rnaseq(D, R)", 'suffix("yz")', "doubled(X)"):
            assert sorted(session.query(pattern, demand=True).texts()) == sorted(
                session.query(pattern).texts()
            )

    def test_demand_cache_keys_are_canonical(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB, lazy=True)
        session.query("rnaseq( D , R )", demand=True)
        session.query("rnaseq(D, R)", demand=True)
        stats = session.stats()["demand_cache"]
        assert stats["size"] == 1 and stats["hits"] == 1

    def test_non_demand_query_on_lazy_session_materializes(self):
        session = DatalogSession(COMPOSED_PROGRAM, COMPOSED_DB, lazy=True)
        assert not session.stats()["materialized"]
        session.query("doubled(X)")
        assert session.stats()["materialized"]


# ----------------------------------------------------------------------
# Bugfix regressions
# ----------------------------------------------------------------------
class TestFactIngestionValidation:
    def test_string_entries_are_rejected_not_unpacked(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        with pytest.raises(ValidationError):
            # Length-2 strings used to unpack as ('x', 'y') -> fact x("y").
            session.add_facts(["xy"])
        assert session.query("x(V)").is_empty()
        assert session.query("p(X)").texts() == [("a",)]

    def test_non_pair_tuples_and_bad_predicates_are_rejected(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        with pytest.raises(ValidationError):
            session.add_facts([("r",)])
        with pytest.raises(ValidationError):
            session.add_facts([("r", "b", "extra")])
        with pytest.raises(ValidationError):
            session.add_facts([(5, ("b",))])
        assert session.fact_count() == 2  # r("a"), p("a") — nothing slipped in

    def test_generator_pairs_are_still_accepted(self):
        session = DatalogSession("p(X) :- r(X).", {"r": ["a"]})
        session.add_facts(("r", (value,)) for value in ["b", "c"])
        assert session.query("p(X)").values("X") == ["a", "b", "c"]


class TestSessionPoisoning:
    LIMITS = EvaluationLimits(max_iterations=5, max_sequence_length=16)

    def _poisoned_session(self):
        # rep2 over an empty database converges; the first added fact makes
        # the fixpoint infinite, so maintenance trips the limit.
        session = DatalogSession(
            paper_programs.rep2_program(), limits=self.LIMITS
        )
        with pytest.raises(FixpointNotReached):
            session.add_facts({"r": ["ab"]})
        return session

    def test_failed_maintenance_poisons_the_session(self):
        session = self._poisoned_session()
        assert session.poisoned
        with pytest.raises(SessionPoisonedError):
            session.query("rep2(X, Y)")
        with pytest.raises(SessionPoisonedError):
            session.query("rep2(X, Y)", demand=True)
        with pytest.raises(SessionPoisonedError):
            session.add_facts({"r": ["cd"]})
        with pytest.raises(SessionPoisonedError):
            session.output()
        assert session.stats()["poisoned"]  # stats still work

    def test_cli_serve_refuses_queries_after_failed_add(self, tmp_path):
        program = tmp_path / "rep2.sdl"
        program.write_text('rep2(X, X) :- true.\nrep2(X ++ Y, Y) :- rep2(X, Y).\n')
        script = tmp_path / "cmds.txt"
        script.write_text("add r ab\nquery rep2(X, Y)\nquery rep2(X, Y)\n")
        out = io.StringIO()
        code = main(
            [
                "serve",
                str(program),
                "--script",
                str(script),
                "--max-iterations",
                "4",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        # The failed add is reported (whichever resource limit tripped) ...
        assert text.count("error:") == 3
        # ... and both queries after it are refused, with the reason.
        assert text.count("partial fixpoint") >= 2
        assert "discard the session" in text
        assert "answers" not in text  # no query was ever answered


class TestIterationLimitOffByOne:
    @pytest.mark.parametrize("strategy", [NAIVE, SEMI_NAIVE, COMPILED])
    def test_max_iterations_permits_exactly_that_many_rounds(self, strategy):
        program = paper_programs.suffixes_program()
        database = SequenceDatabase.from_dict({"r": ["abcd"]})
        free = compute_least_fixpoint(program, database, strategy=strategy)
        rounds = free.iterations
        assert rounds >= 2
        exact = compute_least_fixpoint(
            program,
            database,
            limits=EvaluationLimits(max_iterations=rounds),
            strategy=strategy,
        )
        assert exact.iterations == rounds
        assert exact.interpretation == free.interpretation
        with pytest.raises(FixpointNotReached):
            compute_least_fixpoint(
                program,
                database,
                limits=EvaluationLimits(max_iterations=rounds - 1),
                strategy=strategy,
            )

    def test_reported_iterations_never_exceed_the_limit(self):
        # An infinite-fixpoint program aborted by the iteration limit must
        # report at most max_iterations rounds.
        limits = EvaluationLimits(max_iterations=6, max_sequence_length=200)
        with pytest.raises(FixpointNotReached) as excinfo:
            compute_least_fixpoint(
                paper_programs.rep2_program(),
                SequenceDatabase.from_dict({"r": ["ab"]}),
                limits=limits,
            )
        assert excinfo.value.iterations <= limits.max_iterations + 1


class TestPreparedCacheNormalization:
    def test_equivalent_patterns_share_one_plan(self):
        session = DatalogSession(paper_programs.suffixes_program(), {"r": ["ab"]})
        first = session.prepare("suffix(X)")
        assert session.prepare("suffix( X )") is first
        assert session.prepare(parse_atom("suffix(X)")) is first
        stats = session.stats()["prepared_cache"]
        assert stats["size"] == 1
        assert stats["misses"] == 1 and stats["hits"] == 2
