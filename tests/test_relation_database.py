"""Tests for the extended relational model (Section 2.2)."""

import pytest

from repro.database import DatabaseSchema, RelationSchema, SequenceDatabase, SequenceRelation
from repro.errors import ValidationError
from repro.sequences import Sequence


class TestSequenceRelation:
    def test_add_and_contains(self):
        relation = SequenceRelation("r", 2)
        assert relation.add(("ab", "cd")) is True
        assert relation.add(("ab", "cd")) is False
        assert ("ab", "cd") in relation
        assert ("ab", "xx") not in relation

    def test_arity_enforced(self):
        relation = SequenceRelation("r", 2)
        with pytest.raises(ValidationError):
            relation.add(("ab",))

    def test_lookup_by_column(self):
        relation = SequenceRelation("r", 2, [("a", "x"), ("a", "y"), ("b", "x")])
        rows = list(relation.lookup({0: Sequence("a")}))
        assert len(rows) == 2
        rows = list(relation.lookup({0: Sequence("a"), 1: Sequence("y")}))
        assert rows == [(Sequence("a"), Sequence("y"))]

    def test_lookup_unbound_iterates_everything(self):
        relation = SequenceRelation("r", 1, [("a",), ("b",)])
        assert len(list(relation.lookup({}))) == 2

    def test_lookup_out_of_range_column(self):
        relation = SequenceRelation("r", 1, [("a",)])
        with pytest.raises(ValidationError):
            list(relation.lookup({3: Sequence("a")}))

    def test_discard(self):
        relation = SequenceRelation("r", 1, [("a",), ("b",)])
        assert relation.discard(("a",)) is True
        assert relation.discard(("a",)) is False
        assert len(relation) == 1
        assert list(relation.lookup({0: Sequence("a")})) == []

    def test_column_values_and_all_sequences(self):
        relation = SequenceRelation("r", 2, [("a", "x"), ("b", "x")])
        assert relation.column_values(1) == {Sequence("x")}
        assert relation.all_sequences() == {Sequence("a"), Sequence("b"), Sequence("x")}

    def test_sorted_tuples_is_deterministic(self):
        relation = SequenceRelation("r", 1, [("b",), ("a",)])
        assert [row[0].text for row in relation.sorted_tuples()] == ["a", "b"]

    def test_copy_is_independent(self):
        relation = SequenceRelation("r", 1, [("a",)])
        clone = relation.copy()
        clone.add(("b",))
        assert len(relation) == 1

    def test_version_is_monotonic_across_discard(self):
        relation = SequenceRelation("r", 1, [("a",), ("b",)])
        version = relation.version
        relation.discard(("a",))
        assert relation.version > version
        relation.add(("c",))
        # A consumer that recorded the pre-discard version must still see
        # the post-discard insert as a change.
        assert relation.version > version + 1

    def test_delta_view_after_discard_never_misses_new_rows(self):
        relation = SequenceRelation("r", 1, [("a",), ("b",)])
        seen = relation.version
        relation.discard(("a",))
        relation.add(("c",))
        window = {row[0].text for row in relation.delta_view(seen)}
        assert "c" in window  # may over-approximate, must not miss

    def test_delta_view_windows_and_indexed_lookup(self):
        relation = SequenceRelation("r", 2, [("a", "x")])
        mark = relation.version
        relation.add(("b", "y"))
        relation.add(("b", "z"))
        view = relation.delta_view(mark)
        assert len(view) == 2
        assert {row[1].text for row in view.lookup({0: Sequence("b")})} == {"y", "z"}
        assert list(view.lookup({0: Sequence("a")})) == []

    def test_sorted_tuples_returns_a_safe_copy(self):
        relation = SequenceRelation("r", 1, [("b",), ("a",)])
        rows = relation.sorted_tuples()
        rows.reverse()
        assert [row[0].text for row in relation.sorted_tuples()] == ["a", "b"]


class TestSchemas:
    def test_relation_schema_validation(self):
        with pytest.raises(ValidationError):
            RelationSchema("R", 1)
        with pytest.raises(ValidationError):
            RelationSchema("r", 0)

    def test_database_schema_conflicts(self):
        schema = DatabaseSchema()
        schema.declare("r", 2)
        schema.declare("r", 2)
        with pytest.raises(ValidationError):
            schema.declare("r", 3)

    def test_arity_lookup(self):
        schema = DatabaseSchema([RelationSchema("r", 2)])
        assert schema.arity_of("r") == 2
        with pytest.raises(ValidationError):
            schema.arity_of("unknown")


class TestSequenceDatabase:
    def test_from_dict_accepts_strings_and_tuples(self):
        db = SequenceDatabase.from_dict({"r": ["ab"], "p": [("a", "b")]})
        assert len(db.relation("r")) == 1
        assert db.relation("p").arity == 2

    def test_single_input_database(self):
        db = SequenceDatabase.single_input("acgt")
        assert ("acgt",) in db.relation("input")

    def test_facts_round_trip(self):
        db = SequenceDatabase.from_dict({"r": ["ab", "cd"], "p": [("a", "b")]})
        rebuilt = SequenceDatabase.from_facts(db.facts())
        assert rebuilt == db

    def test_active_domain(self):
        db = SequenceDatabase.from_dict({"r": ["ab"], "p": [("c", "d")]})
        assert db.active_domain() == {Sequence("ab"), Sequence("c"), Sequence("d")}

    def test_extended_active_domain_and_size(self):
        db = SequenceDatabase.from_dict({"r": ["abc"]})
        # "abc" has 7 distinct contiguous subsequences (Definition 11 size).
        assert db.size() == 7

    def test_schema_extraction(self):
        db = SequenceDatabase.from_dict({"r": ["ab"], "p": [("a", "b")]})
        schema = db.schema()
        assert schema.arity_of("p") == 2

    def test_duplicate_relation_rejected(self):
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        with pytest.raises(ValidationError):
            db.add_relation(SequenceRelation("r", 1))

    def test_copy_is_independent(self):
        db = SequenceDatabase.from_dict({"r": ["ab"]})
        clone = db.copy()
        clone.add_fact("r", "xy")
        assert len(db.relation("r")) == 1

    def test_len_counts_all_facts(self):
        db = SequenceDatabase.from_dict({"r": ["ab", "cd"], "p": [("a", "b")]})
        assert len(db) == 3
