"""Tests for acyclic transducer networks (Section 6.2)."""

import pytest

from repro.errors import NetworkError
from repro.transducers import NetworkNode, TransducerNetwork, library
from repro.transducers.network import chain


class TestNetworkConstruction:
    def test_wire_arity_is_checked(self):
        with pytest.raises(NetworkError):
            NetworkNode("n", library.append_transducer("ab", 2), inputs=["x"])

    def test_unknown_input_rejected(self):
        node = NetworkNode("n", library.copy_transducer("ab"), inputs=["y"])
        with pytest.raises(NetworkError):
            TransducerNetwork(["x"], [node], node)

    def test_duplicate_node_names_rejected(self):
        a = NetworkNode("n", library.copy_transducer("ab"), inputs=["x"])
        b = NetworkNode("n", library.copy_transducer("ab", name="copy2"), inputs=["x"])
        with pytest.raises(NetworkError):
            TransducerNetwork(["x"], [a, b], a)

    def test_cycles_rejected(self):
        first = NetworkNode("first", library.copy_transducer("ab"), inputs=["x"])
        second = NetworkNode("second", library.copy_transducer("ab", name="c2"), inputs=[first])
        # Introduce a cycle by rewiring the first node to read the second.
        first.inputs[0] = second
        with pytest.raises(NetworkError):
            TransducerNetwork(["x"], [first, second], second)

    def test_missing_input_value_at_compute_time(self):
        node = NetworkNode("n", library.copy_transducer("ab"), inputs=["x"])
        network = TransducerNetwork(["x"], [node], node)
        with pytest.raises(NetworkError):
            network.compute(y="ab")


class TestNetworkExecution:
    def test_serial_genome_pipeline(self):
        """Example 7.1 as a network: DNA -> RNA -> protein."""
        transcribe = NetworkNode("transcribe", library.transcribe_transducer(), ["dna"])
        translate = NetworkNode("translate", library.translate_transducer(), [transcribe])
        network = TransducerNetwork(["dna"], [transcribe, translate], translate)
        assert network.compute(dna="gatgattta").text == "LLN"
        assert network.diameter == 2
        assert network.order == 1

    def test_fan_in_network(self):
        """Two copies of the input concatenated by an append node."""
        append = NetworkNode("append", library.append_transducer("ab", 2), ["x", "x"])
        network = TransducerNetwork(["x"], [append], append)
        assert network.compute(x="ab").text == "abab"

    def test_same_input_to_echo(self):
        echo = NetworkNode("echo", library.echo_transducer("ab"), ["x", "x"])
        network = TransducerNetwork(["x"], [echo], echo)
        assert network.compute_function("abab").text == "aabbaabb"

    def test_compute_function_requires_single_input(self):
        append = NetworkNode("append", library.append_transducer("ab", 2), ["x", "y"])
        network = TransducerNetwork(["x", "y"], [append], append)
        with pytest.raises(NetworkError):
            network.compute_function("ab")

    def test_chain_helper(self):
        network = chain(
            [library.complement_transducer("01", name="c1"),
             library.complement_transducer("01", name="c2")]
        )
        assert network.compute_function("0110").text == "0110"
        assert network.diameter == 2

    def test_chain_rejects_multi_input_machines(self):
        with pytest.raises(NetworkError):
            chain([library.append_transducer("ab", 2)])


class TestNetworkComplexityParameters:
    def test_order_is_max_over_nodes(self):
        square = NetworkNode("square", library.square_transducer("ab"), ["x"])
        network = TransducerNetwork(["x"], [square], square)
        assert network.order == 2

    def test_diameter_counts_longest_path(self):
        s1 = NetworkNode("s1", library.square_transducer("ab", name="sq1"), ["x"])
        s2 = NetworkNode("s2", library.square_transducer("ab", name="sq2"), [s1])
        s3 = NetworkNode("s3", library.copy_transducer("ab"), [s2])
        network = TransducerNetwork(["x"], [s1, s2, s3], s3)
        assert network.diameter == 3

    def test_order_2_chain_grows_polynomially(self):
        """Theorem 4 (order-2 networks): output length n^(2^d) for a chain of
        d squaring nodes -- polynomial for fixed diameter."""
        s1 = NetworkNode("s1", library.square_transducer("ab", name="sq1"), ["x"])
        s2 = NetworkNode("s2", library.square_transducer("ab", name="sq2"), [s1])
        network = TransducerNetwork(["x"], [s1, s2], s2)
        for n in (1, 2, 3):
            assert len(network.compute_function("a" * n)) == n ** 4
