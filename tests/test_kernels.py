"""Unit tests for the batch kernel layer (:mod:`repro.engine.kernels`).

The randomized equivalence properties in ``tests/test_properties.py`` prove
the kernel path and the per-tuple path compute identical models; the tests
here pin down the edges those properties sweep past quickly: static
classification (every fallback reason), empty and mid-store delta windows,
repeated variables inside one atom, constants in atoms and heads, the
dedup contract of the head kernel, the execution counters and the
``explain`` annotation.
"""

import pytest

from repro.database import SequenceDatabase
from repro.database.relation import RelationDelta, SequenceRelation
from repro.engine import (
    CompiledFixpoint,
    Interpretation,
    PlanExecutor,
    batch_classification,
    batch_enabled,
    compile_clause,
    compute_least_fixpoint,
    kernel_stats,
    reset_kernel_stats,
    set_batch_enabled,
)
from repro.engine import kernels
from repro.engine.bindings import Substitution
from repro.engine.kernels import (
    REASON_ATOM_TERM,
    REASON_BIND_EQUALITY,
    REASON_COMPARE_TERM,
    REASON_DISABLED,
    REASON_ENUMERATION,
    REASON_HEAD_ENUMERATION,
    REASON_HEAD_TERM,
    REASON_NO_SCAN,
    REASON_SEED_MISMATCH,
)
from repro.language.parser import parse_clause, parse_program
from repro.sequences import Sequence


def plan_of(source: str, **kwargs):
    return compile_clause(parse_clause(source), **kwargs)


def interpretation_of(**relations) -> Interpretation:
    interpretation = Interpretation()
    for predicate, rows in relations.items():
        for row in rows:
            interpretation.add(predicate, row)
    return interpretation


def derived(executor, interpretation) -> set:
    return {
        (predicate, tuple(value.text for value in values))
        for predicate, values in executor.derive(interpretation)
    }


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
class TestBatchClassification:
    @pytest.mark.parametrize(
        "source",
        [
            "p(X) :- r(X).",
            "p(X, Z) :- p(X, Y), e(Y, Z).",
            'p(Y) :- e("a", Y).',
            "s(X) :- e(X, X).",
            'q(X) :- p(X), X != "a".',
            'h("z", X) :- p(X).',
        ],
    )
    def test_join_pure_clauses_are_batchable(self, source):
        batchable, reason = batch_classification(plan_of(source))
        assert batchable and reason is None

    @pytest.mark.parametrize(
        "source, reason",
        [
            ("p(X) :- r(X[1:N]).", REASON_ATOM_TERM),
            ("p(X[1:2]) :- r(X).", REASON_HEAD_TERM),
            ("p(Y) :- r(X), Y = X[1:2].", REASON_BIND_EQUALITY),
            ("p(X) :- r(X), X[1:2] != X.", REASON_COMPARE_TERM),
            ('p("a") :- "b" = "b".', REASON_NO_SCAN),
            ("p(X, Y) :- r(X).", REASON_HEAD_ENUMERATION),
        ],
    )
    def test_fallback_reasons(self, source, reason):
        batchable, actual = batch_classification(plan_of(source))
        assert not batchable and actual == reason

    def test_enumerated_comparison_falls_back(self):
        plan = plan_of("p(X) :- r(X), X[N:N] = X[M:M].")
        batchable, reason = batch_classification(plan)
        assert not batchable
        assert reason in (REASON_ENUMERATION, REASON_COMPARE_TERM)

    def test_adornment_seeds_stay_batchable(self):
        plan = plan_of("p(X, Y) :- e(X, Y).", bound_sequences=["X"])
        assert plan.seed_sequences == ("X",)
        assert batch_classification(plan) == (True, None)


# ----------------------------------------------------------------------
# Executor routing
# ----------------------------------------------------------------------
class TestExecutorRouting:
    def test_batchable_plan_routes_to_kernels(self):
        executor = PlanExecutor(plan_of("p(X, Z) :- e(X, Y), e(Y, Z)."))
        assert executor.execution_mode == "batch"
        assert executor.fallback_reason is None

    def test_use_kernels_false_forces_tuple_path(self):
        executor = PlanExecutor(
            plan_of("p(X, Z) :- e(X, Y), e(Y, Z)."), use_kernels=False
        )
        assert executor.execution_mode == "tuple"
        assert executor.fallback_reason == REASON_DISABLED

    def test_process_default_toggle(self):
        plan = plan_of("p(X) :- r(X).")
        previous = set_batch_enabled(False)
        try:
            assert not batch_enabled()
            assert PlanExecutor(plan).execution_mode == "tuple"
            assert PlanExecutor(plan, use_kernels=True).execution_mode == "batch"
        finally:
            set_batch_enabled(previous)
        assert PlanExecutor(plan).execution_mode == "batch"

    def test_unbatchable_plan_reports_reason(self):
        executor = PlanExecutor(plan_of("p(X[1:2]) :- r(X)."), use_kernels=True)
        assert executor.execution_mode == "tuple"
        assert executor.fallback_reason == REASON_HEAD_TERM

    def test_foreign_seed_falls_back(self):
        # A seed binding a variable the plan's adornment does not name:
        # the batch compilation cannot honour it, the tuple matcher can.
        plan = plan_of("p(X, Y) :- e(X, Y).")
        seed = Substitution().bind_sequence("X", Sequence("a"))
        executor = PlanExecutor(plan, seed=seed, use_kernels=True)
        assert executor.execution_mode == "tuple"
        assert executor.fallback_reason == REASON_SEED_MISMATCH

    def test_matching_adornment_seed_runs_batched(self):
        plan = plan_of("p(X, Y) :- e(X, Y).", bound_sequences=["X"])
        seed = Substitution().bind_sequence("X", Sequence("a"))
        executor = PlanExecutor(plan, seed=seed, use_kernels=True)
        assert executor.execution_mode == "batch"
        interpretation = interpretation_of(e=[("a", "b"), ("c", "d")])
        assert derived(executor, interpretation) == {("p", ("a", "b"))}


# ----------------------------------------------------------------------
# Kernel execution edges
# ----------------------------------------------------------------------
class TestKernelExecution:
    def test_full_firing_matches_tuple_path(self):
        plan = plan_of("p(X, Z) :- e(X, Y), e(Y, Z).")
        interpretation = interpretation_of(
            e=[("a", "b"), ("b", "c"), ("c", "a"), ("b", "b")]
        )
        batch = derived(PlanExecutor(plan, use_kernels=True), interpretation)
        tuple_ = derived(PlanExecutor(plan, use_kernels=False), interpretation)
        assert batch == tuple_

    def test_repeated_variable_in_one_atom(self):
        plan = plan_of("s(X) :- e(X, X).")
        interpretation = interpretation_of(
            e=[("a", "a"), ("a", "b"), ("b", "b"), ("c", "a")]
        )
        assert derived(PlanExecutor(plan, use_kernels=True), interpretation) == {
            ("s", ("a",)),
            ("s", ("b",)),
        }

    def test_triple_repeated_variable(self):
        plan = plan_of("s(X) :- t(X, X, X).")
        interpretation = interpretation_of(
            t=[("a", "a", "a"), ("a", "a", "b"), ("b", "a", "b")]
        )
        assert derived(PlanExecutor(plan, use_kernels=True), interpretation) == {
            ("s", ("a",))
        }

    def test_constant_probe_and_constant_head(self):
        plan = plan_of('h("z", Y) :- e("a", Y).')
        interpretation = interpretation_of(e=[("a", "b"), ("b", "c"), ("a", "c")])
        assert derived(PlanExecutor(plan, use_kernels=True), interpretation) == {
            ("h", ("z", "b")),
            ("h", ("z", "c")),
        }

    def test_fully_bound_constant_probe(self):
        plan = plan_of('p("y") :- e("a", "b").')
        holds = interpretation_of(e=[("a", "b")])
        misses = interpretation_of(e=[("b", "a")])
        executor = PlanExecutor(plan, use_kernels=True)
        assert executor.execution_mode == "batch"
        assert derived(executor, holds) == {("p", ("y",))}
        assert derived(executor, misses) == set()

    def test_filter_kernel_equality_and_inequality(self):
        interpretation = interpretation_of(e=[("a", "a"), ("a", "b"), ("b", "a")])
        eq = plan_of("p(X) :- e(X, Y), X = Y.")
        ne = plan_of("p(X, Y) :- e(X, Y), X != Y.")
        assert derived(PlanExecutor(eq, use_kernels=True), interpretation) == {
            ("p", ("a",))
        }
        assert derived(PlanExecutor(ne, use_kernels=True), interpretation) == {
            ("p", ("a", "b")),
            ("p", ("b", "a")),
        }

    def test_missing_relation_and_arity_mismatch_derive_nothing(self):
        plan = plan_of("p(X) :- r(X).")
        executor = PlanExecutor(plan, use_kernels=True)
        assert derived(executor, Interpretation()) == set()
        wrong_arity = interpretation_of(r=[("a", "b")])
        assert derived(executor, wrong_arity) == set()

    def test_head_kernel_dedups_against_target_and_within_batch(self):
        # Both e-rows derive p("a"); it is already in the target relation,
        # so the kernel must emit nothing (the engine counts emitted facts).
        plan = plan_of("p(X) :- e(X, Y).")
        interpretation = interpretation_of(e=[("a", "b"), ("a", "c")], p=[("a",)])
        executor = PlanExecutor(plan, use_kernels=True)
        assert list(executor.derive(interpretation)) == []
        # Without the pre-existing fact, the two duplicate derivations
        # collapse to one emitted fact.
        fresh = interpretation_of(e=[("a", "b"), ("a", "c")])
        assert list(PlanExecutor(plan, use_kernels=True).derive(fresh)) == [
            ("p", (Sequence("a"),))
        ]


# ----------------------------------------------------------------------
# Delta windows
# ----------------------------------------------------------------------
class TestDeltaWindows:
    def _relation(self, rows) -> SequenceRelation:
        relation = SequenceRelation("e", 2)
        for row in rows:
            relation.add(row)
        return relation

    def test_empty_delta_fires_to_nothing(self):
        plan = plan_of("p(X, Z) :- e(X, Y), e(Y, Z).")
        interpretation = interpretation_of(e=[("a", "b"), ("b", "c")])
        relation = interpretation.relation("e")
        empty = RelationDelta(relation, len(relation), len(relation))
        executor = PlanExecutor(plan, use_kernels=True)
        assert list(executor.derive_delta(interpretation, 0, empty)) == []
        assert list(executor.derive_delta(interpretation, 1, empty)) == []

    def test_delta_position_not_in_plan_fires_to_nothing(self):
        plan = plan_of("p(X, Y) :- e(X, Y).")
        interpretation = interpretation_of(e=[("a", "b")])
        view = RelationDelta(interpretation.relation("e"), 0, 1)
        executor = PlanExecutor(plan, use_kernels=True)
        assert list(executor.derive_delta(interpretation, 5, view)) == []

    def test_mid_window_delta_restriction(self):
        # Restrict the *first* scan to the window [2, 4): only chains that
        # start from the last two edges may fire; the second scan still
        # joins against the full store.
        plan = plan_of("p(X, Z) :- e(X, Y), e(Y, Z).")
        interpretation = interpretation_of(
            e=[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        )
        relation = interpretation.relation("e")
        window = RelationDelta(relation, 2, 4)
        batch = PlanExecutor(plan, use_kernels=True)
        tuple_ = PlanExecutor(plan, use_kernels=False)
        expected = {
            (predicate, tuple(value.text for value in values))
            for predicate, values in tuple_.derive_delta(interpretation, 0, window)
        }
        assert expected == {("p", ("c", "a")), ("p", ("d", "b"))}
        got = {
            (predicate, tuple(value.text for value in values))
            for predicate, values in batch.derive_delta(interpretation, 0, window)
        }
        assert got == expected

    def test_mid_window_probe_uses_window_local_index(self):
        # Probing a mid-store window of an unindexed column set must not
        # build (and permanently retain) a persistent index on the base
        # relation: the window hashes itself locally instead.
        relation = self._relation([("a", "b"), ("b", "c"), ("a", "c"), ("b", "d")])
        window = RelationDelta(relation, 1, 4)
        key = (Sequence("b").intern_id,)
        assert window.probe_positions((0,), key) == [1, 3]
        assert (0,) not in relation._indexes
        # A full-prefix window, by contrast, goes through the persistent
        # index and clips it.
        prefix = RelationDelta(relation, 0, 2)
        assert prefix.probe_positions((0,), key) == [1]
        assert (0,) in relation._indexes

    def test_mid_window_probe_reuses_persistent_index(self):
        relation = self._relation([("a", "b"), ("b", "c"), ("a", "c"), ("b", "d")])
        relation.ensure_index((0,))
        window = RelationDelta(relation, 2, 4)
        key = (Sequence("a").intern_id,)
        assert window.probe_positions((0,), key) == [2]

    def test_semi_naive_fixpoint_uses_delta_kernels(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Z) :- t(X, Y), e(Y, Z).
            """
        )
        db = SequenceDatabase()
        for pair in [("a", "b"), ("b", "c"), ("c", "d")]:
            db.add_fact("e", *pair)
        reset_kernel_stats()
        on = compute_least_fixpoint(program, db, use_kernels=True)
        stats = kernel_stats()
        assert stats["batched_firings"] > 0
        assert stats["fallbacks"] == {}
        off = compute_least_fixpoint(program, db, use_kernels=False)
        assert on.interpretation == off.interpretation


# ----------------------------------------------------------------------
# Counters and surfaces
# ----------------------------------------------------------------------
class TestCountersAndSurfaces:
    def test_counters_split_by_path(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            u(X ++ X) :- t(X, X).
            """
        )
        db = SequenceDatabase()
        db.add_fact("e", "a", "a")
        db.add_fact("e", "a", "b")
        reset_kernel_stats()
        compute_least_fixpoint(program, db)
        stats = kernel_stats()
        assert stats["batched_firings"] > 0
        assert stats["tuple_firings"] > 0
        assert stats["fallbacks"].get(REASON_HEAD_TERM, 0) > 0
        assert stats["facts_emitted"] >= 2  # t("a","a"), t("a","b")
        assert stats["scan_rows"] >= 2
        assert stats["enabled"] is True

    def test_reset_zeroes_everything(self):
        kernels.record_tuple_firing("some reason")
        reset_kernel_stats()
        stats = kernel_stats()
        assert stats["tuple_firings"] == 0
        assert stats["batched_firings"] == 0
        assert stats["fallbacks"] == {}

    def test_disabled_firings_count_as_disabled_fallbacks(self):
        plan = plan_of("p(X) :- r(X).")
        interpretation = interpretation_of(r=[("a",)])
        reset_kernel_stats()
        list(PlanExecutor(plan, use_kernels=False).derive(interpretation))
        stats = kernel_stats()
        assert stats["tuple_firings"] == 1
        assert stats["fallbacks"] == {REASON_DISABLED: 1}

    def test_explain_annotates_execution_mode(self):
        batch_plan = plan_of("p(X, Z) :- e(X, Y), e(Y, Z).")
        assert "execution: batch kernels" in batch_plan.explain()
        tuple_plan = plan_of("p(X[1:2]) :- r(X).")
        explained = tuple_plan.explain()
        assert "execution: per-tuple" in explained
        assert REASON_HEAD_TERM in explained

    def test_session_stats_surface_kernel_counters(self):
        from repro.engine.session import DatalogSession

        session = DatalogSession(parse_program("t(X) :- r(X)."), {"r": ["a"]})
        stats = session.stats()
        kernel_section = stats["kernels"]
        assert set(kernel_section) >= {
            "batched_firings",
            "tuple_firings",
            "fallbacks",
            "enabled",
        }

    def test_compiled_fixpoint_honours_use_kernels(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        db = SequenceDatabase()
        db.add_fact("e", "a", "b")
        for use_kernels, expected in ((True, "batched_firings"), (False, "tuple_firings")):
            engine = CompiledFixpoint(program, use_kernels=use_kernels)
            engine.load_database(db)
            reset_kernel_stats()
            engine.run()
            stats = kernel_stats()
            assert stats[expected] > 0


# ----------------------------------------------------------------------
# Columnar storage
# ----------------------------------------------------------------------
class TestColumnarStorage:
    def test_id_columns_track_rows(self):
        relation = SequenceRelation("e", 2)
        relation.add(("a", "b"))
        relation.add(("c", "d"))
        columns = relation.id_columns()
        assert len(columns) == 2
        assert [Sequence.from_intern_id(i).text for i in columns[0]] == ["a", "c"]
        assert [Sequence.from_intern_id(i).text for i in columns[1]] == ["b", "d"]

    def test_discard_rebuilds_columns(self):
        relation = SequenceRelation("e", 2)
        relation.add(("a", "b"))
        relation.add(("c", "d"))
        relation.discard(("a", "b"))
        columns = relation.id_columns()
        assert [Sequence.from_intern_id(i).text for i in columns[0]] == ["c"]

    def test_column_values_reads_ids_without_building_an_index(self):
        relation = SequenceRelation("e", 2)
        relation.add(("a", "b"))
        relation.add(("a", "c"))
        assert {value.text for value in relation.column_values(0)} == {"a"}
        assert {value.text for value in relation.column_values(1)} == {"b", "c"}
        assert relation._indexes == {}

    def test_probe_positions_respects_windows(self):
        relation = SequenceRelation("e", 2)
        for row in (("a", "x"), ("b", "y"), ("a", "y"), ("a", "z")):
            relation.add(row)
        key = (Sequence("a").intern_id,)
        assert relation.probe_positions((0,), key) == [0, 2, 3]
        assert relation.probe_positions((0,), key, 1, 3) == [2]
        assert relation.probe_positions((0,), key, 3) == [3]
