"""Tests for the T operator (Definition 4, Lemmas 2-3) and its fixpoint."""

from repro.core import paper_programs
from repro.database import SequenceDatabase
from repro.engine import Interpretation, TOperator, compute_least_fixpoint
from repro.language.parser import parse_program
from repro.sequences import Sequence


def _subset(smaller: Interpretation, larger: Interpretation) -> bool:
    return all(larger.contains_fact(fact) for fact in smaller.facts())


class TestTOperator:
    def test_database_atoms_are_always_derived(self, small_string_db):
        operator = TOperator(paper_programs.suffixes_program(), small_string_db)
        image = operator.apply(Interpretation())
        assert image.contains("r", ["abc"])

    def test_one_application_from_the_database(self, small_string_db):
        operator = TOperator(paper_programs.suffixes_program(), small_string_db)
        first = operator.apply(Interpretation())
        second = operator.apply(first)
        # After the database is available, suffixes appear.
        assert second.contains("suffix", ["bc"])
        assert not first.contains("suffix", ["bc"])

    def test_monotonicity_lemma_2(self, small_string_db):
        """I1 ⊆ I2 implies T(I1) ⊆ T(I2)."""
        operator = TOperator(paper_programs.suffixes_program(), small_string_db)
        empty = Interpretation()
        bigger = Interpretation([("r", (Sequence("zz"),))])  # extra fact beyond the db
        image_small = operator.apply(empty)
        image_big = operator.apply(bigger)
        assert _subset(image_small, image_big)

    def test_iterating_t_reaches_the_least_fixpoint(self, small_string_db):
        program = paper_programs.suffixes_program()
        operator = TOperator(program, small_string_db)
        current = Interpretation()
        for _ in range(10):
            nxt = operator.apply(current)
            if nxt == current:
                break
            current = nxt
        reference = compute_least_fixpoint(program, small_string_db).interpretation
        assert current == reference

    def test_least_fixpoint_is_a_fixpoint(self, small_string_db):
        program = paper_programs.suffixes_program()
        operator = TOperator(program, small_string_db)
        lfp = compute_least_fixpoint(program, small_string_db).interpretation
        assert operator.is_fixpoint(lfp)
        image = operator.apply(lfp)
        assert image == lfp

    def test_non_models_are_not_fixpoints(self, small_string_db):
        program = paper_programs.suffixes_program()
        operator = TOperator(program, small_string_db)
        assert not operator.is_fixpoint(Interpretation())

    def test_accumulating_apply_matches_apply(self, small_string_db):
        program = paper_programs.suffixes_program()
        operator = TOperator(program, small_string_db)
        accumulated = Interpretation()
        for _ in range(10):
            delta = operator.apply_accumulating(accumulated)
            if delta.fact_count() == 0:
                break
        reference = compute_least_fixpoint(program, small_string_db).interpretation
        assert accumulated == reference

    def test_operator_with_constructive_program(self):
        program = parse_program("answer(X ++ Y) :- r(X), r(Y).")
        db = SequenceDatabase.from_dict({"r": ["a", "b"]})
        operator = TOperator(program, db)
        first = operator.apply(Interpretation())
        second = operator.apply(first)
        assert second.contains("answer", ["ab"])
        # The new sequences enlarge the extended active domain of the result.
        assert len(second.domain) > len(first.domain)
