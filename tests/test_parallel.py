"""Tests for the parallel fixpoint executor (repro.engine.parallel).

The contract under test: whatever the wave schedule, the partitioning and
the pool backend, the computed model is fact-for-fact identical to the
sequential compiled strategy's — scheduling only reorders monotone firings,
and the least fixpoint is unique.
"""

from __future__ import annotations

import pytest

from repro import SequenceDatabase, compute_least_fixpoint
from repro.engine.fixpoint import COMPILED, PARALLEL
from repro.engine.limits import EvaluationLimits
from repro.engine.parallel import ParallelFixpoint
from repro.errors import EvaluationError, FixpointNotReached
from repro.language.parser import parse_program
from repro.transducers import TransducerCatalog, library

GENOME = """
rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
transcribe("", "") :- true.
transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R), trans(D[N+1], T).
trans("a", "u") :- true.
trans("t", "a") :- true.
trans("c", "g") :- true.
trans("g", "c") :- true.
site_at(R, R[N:end]) :- dnaseq(R), R[N:N+5] = "gaattc".
suffix(X[N:end]) :- dnaseq(X).
"""

GENOME_DB = {"dnaseq": ["acgaattcgt", "ttacgg", "gaattcaa"]}

RECURSIVE = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

EDGE_DB = {"edge": [["a", "b"], ["b", "c"], ["c", "d"], ["d", "e"]]}


def _models_equal(program_text, database_dict, **parallel_kwargs):
    program = parse_program(program_text)
    database = SequenceDatabase.from_dict(database_dict)
    compiled = compute_least_fixpoint(program, database, strategy=COMPILED)
    engine = ParallelFixpoint(program, **parallel_kwargs)
    try:
        engine.load_database(database)
        engine.run()
        assert engine.interpretation == compiled.interpretation
    finally:
        engine.close()
    return engine


class TestBackends:
    def test_inline_single_worker(self):
        engine = _models_equal(GENOME, GENOME_DB, workers=1)
        assert engine.parallel_stats()["inline_waves"] > 0

    def test_thread_pool(self):
        engine = _models_equal(
            GENOME, GENOME_DB, workers=3, mode="thread", min_partition_rows=1
        )
        stats = engine.parallel_stats()
        assert stats["thread_waves"] > 0 and stats["process_waves"] == 0

    def test_process_pool(self):
        engine = _models_equal(
            GENOME, GENOME_DB, workers=2, mode="process",
            min_partition_rows=1, process_threshold=0,
        )
        stats = engine.parallel_stats()
        assert stats["process_waves"] > 0
        assert stats["shipped_rows"] > 0  # replicas were really synced

    def test_auto_mode_small_work_stays_in_process(self):
        engine = _models_equal(GENOME, GENOME_DB, workers=4)
        stats = engine.parallel_stats()
        # Tiny waves must not pay the serialization round-trip.
        assert stats["process_waves"] == 0

    def test_recursive_program_all_backends(self):
        for kwargs in (
            {"workers": 1},
            {"workers": 3, "mode": "thread", "min_partition_rows": 1},
            {"workers": 2, "mode": "process", "min_partition_rows": 1},
        ):
            _models_equal(RECURSIVE, EDGE_DB, **kwargs)

    def test_unknown_mode_rejected(self):
        with pytest.raises(EvaluationError):
            ParallelFixpoint(parse_program(RECURSIVE), mode="fleet")


class TestStrategySurface:
    def test_parallel_strategy_matches_compiled(self):
        program = parse_program(GENOME)
        database = SequenceDatabase.from_dict(GENOME_DB)
        compiled = compute_least_fixpoint(program, database, strategy=COMPILED)
        parallel = compute_least_fixpoint(
            program, database, strategy=PARALLEL, workers=2
        )
        assert parallel.interpretation == compiled.interpretation
        assert parallel.strategy == PARALLEL
        assert parallel.fact_count == compiled.fact_count
        assert parallel.new_facts_per_iteration[-1] == 0

    def test_engine_api_workers_kwarg(self):
        from repro import SequenceDatalogEngine

        engine = SequenceDatalogEngine(GENOME)
        compiled = engine.evaluate(GENOME_DB)
        parallel = engine.evaluate(GENOME_DB, strategy=PARALLEL, workers=2)
        assert parallel.interpretation == compiled.interpretation


class TestWaves:
    def test_independent_strata_share_a_wave(self):
        engine = ParallelFixpoint(parse_program(GENOME))
        try:
            waves = engine.waves
            plans = engine.plans
            heads_by_wave = [
                {plans[i].head_predicate for i in wave} for wave in waves
            ]
            # The four trans facts form the base wave; the independent
            # transcribe recursion, site scan and suffix enumeration all sit
            # in one middle wave; rnaseq joins on top.
            assert heads_by_wave[0] == {"trans"}
            assert {"transcribe", "site_at", "suffix"} <= heads_by_wave[1]
            assert "rnaseq" in heads_by_wave[-1]
        finally:
            engine.close()

    def test_waves_cover_every_plan_exactly_once(self):
        engine = ParallelFixpoint(parse_program(GENOME))
        try:
            scheduled = [index for wave in engine.waves for index in wave]
            assert sorted(scheduled) == list(range(len(engine.plans)))
        finally:
            engine.close()


class TestIncrementalMaintenance:
    def test_versions_survive_between_runs(self):
        program = parse_program(RECURSIVE)
        engine = ParallelFixpoint(
            program, workers=2, mode="thread", min_partition_rows=1
        )
        try:
            engine.load_database(SequenceDatabase.from_dict(EDGE_DB))
            engine.run()
            baseline_sweeps = engine.sweeps
            engine.add_fact("edge", ("e", "f"))
            engine.run()
            # The delta run converges in a handful of extra sweeps instead
            # of re-deriving from scratch.
            assert engine.sweeps - baseline_sweeps <= 4

            scratch = compute_least_fixpoint(
                program,
                SequenceDatabase.from_dict(
                    {"edge": EDGE_DB["edge"] + [["e", "f"]]}
                ),
            )
            assert engine.interpretation == scratch.interpretation
        finally:
            engine.close()

    def test_session_with_workers_matches_sequential_session(self):
        from repro.engine.session import DatalogSession

        with DatalogSession(GENOME, GENOME_DB, workers=2) as parallel_session:
            sequential = DatalogSession(GENOME, GENOME_DB)
            assert (
                parallel_session.interpretation == sequential.interpretation
            )
            parallel_session.add_facts({"dnaseq": ["ccgaattcc"]})
            sequential.add_facts({"dnaseq": ["ccgaattcc"]})
            assert (
                parallel_session.interpretation == sequential.interpretation
            )
            assert "parallel" in parallel_session.stats()


class TestLimitsAndErrors:
    def test_limit_failure_carries_partial(self):
        program = parse_program('echo(X ++ X) :- echo(X). echo("a") :- true.')
        engine = ParallelFixpoint(program, workers=2, mode="thread")
        try:
            with pytest.raises(FixpointNotReached) as excinfo:
                engine.run(EvaluationLimits(max_iterations=5))
            assert excinfo.value.partial is not None
            assert excinfo.value.partial.fact_count() > 0
        finally:
            engine.close()

    def test_sequence_length_limit_enforced_in_process_mode(self):
        program = parse_program('echo(X ++ X) :- echo(X). echo("ab") :- true.')
        engine = ParallelFixpoint(
            program, workers=2, mode="process", min_partition_rows=1
        )
        try:
            with pytest.raises(FixpointNotReached):
                engine.run(EvaluationLimits(max_sequence_length=16))
        finally:
            engine.close()

    def test_transducers_disable_process_mode(self):
        catalog = TransducerCatalog([library.transcribe_transducer()])
        program = parse_program("out(@transcribe(X)) :- r(X).")
        with pytest.raises(EvaluationError):
            ParallelFixpoint(program, catalog.callables(), mode="process")
        # auto mode silently uses threads instead.
        engine = ParallelFixpoint(
            program, catalog.callables(), workers=2, min_partition_rows=1
        )
        try:
            engine.load_database(SequenceDatabase.from_dict({"r": ["acgt"]}))
            engine.run()
            compiled = compute_least_fixpoint(
                program,
                SequenceDatabase.from_dict({"r": ["acgt"]}),
                transducers=catalog.callables(),
            )
            assert engine.interpretation == compiled.interpretation
            assert engine.parallel_stats()["process_waves"] == 0
        finally:
            engine.close()

    def test_close_is_idempotent(self):
        engine = ParallelFixpoint(parse_program(RECURSIVE), workers=2)
        engine.close()
        engine.close()

    def test_failed_wave_rolls_back_observations(self):
        """An executor failure must re-arm the wave's plans: a later run has
        to re-fire the windows the failed wave never merged."""

        class FlakyParallel(ParallelFixpoint):
            __slots__ = ("fail_once",)

            def _merge(self, facts, limits, iteration):
                if self.fail_once:
                    self.fail_once = False
                    raise EvaluationError("simulated worker failure")
                return super()._merge(facts, limits, iteration)

        program = parse_program(RECURSIVE)
        database = SequenceDatabase.from_dict(EDGE_DB)
        engine = FlakyParallel(
            program, workers=2, mode="thread", min_partition_rows=1
        )
        engine.fail_once = True
        try:
            engine.load_database(database)
            with pytest.raises(EvaluationError):
                engine.run()
            # The failure re-armed the plans; resuming converges exactly.
            engine.run()
            compiled = compute_least_fixpoint(program, database)
            assert engine.interpretation == compiled.interpretation
        finally:
            engine.close()

    def test_executor_failure_poisons_session(self, monkeypatch):
        """A non-limit maintenance failure (e.g. a dead worker) must poison
        the session: the model may be a partial fixpoint."""
        from repro.engine.session import DatalogSession
        from repro.errors import SessionPoisonedError

        with DatalogSession(
            RECURSIVE, EDGE_DB, workers=2, parallel_mode="thread"
        ) as session:
            def dead_pool_sweep(self, limits, iteration):
                raise EvaluationError("a parallel fixpoint worker process died")

            monkeypatch.setattr(ParallelFixpoint, "_sweep", dead_pool_sweep)
            with pytest.raises(EvaluationError):
                session.add_facts({"edge": [("e", "f")]})
            assert session.poisoned
            with pytest.raises(SessionPoisonedError):
                session.query("reach(X, Y)")
