"""Tests for the genome application layer (machines, programs, pipeline).

The genome package is the paper's motivating application built on the public
API: Example 7.1's transcription/translation, footnote 6's intron splicing,
footnote 8's reading frames and stop codons (as ORF search), reverse
complements, and restriction-site pattern matching.  Each behaviour is
checked against a plain-Python reference on the paper's own strings and on
small synthetic strands.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlphabetError, ValidationError
from repro.genome.machines import (
    ACCEPTOR_MARK,
    DONOR_MARK,
    clean_transducer,
    complement_dna_transducer,
    splice_transducer,
)
from repro.genome.pipeline import GenomeAnalyzer
from repro.genome.programs import (
    STOP_CODONS,
    orf_program,
    reading_frame_program,
    restriction_site_program,
    reverse_complement_program,
)
from repro.transducers.library import CODON_TABLE, TRANSCRIPTION_MAP

dna_words = st.text(alphabet="acgt", max_size=10)

COMPLEMENT = {"a": "t", "t": "a", "c": "g", "g": "c"}


def reference_transcribe(dna: str) -> str:
    return "".join(TRANSCRIPTION_MAP[base] for base in dna)


def reference_reverse_complement(dna: str) -> str:
    return "".join(COMPLEMENT[base] for base in reversed(dna))


def reference_splice(marked: str) -> str:
    output, inside_intron = [], False
    for symbol in marked:
        if symbol == DONOR_MARK:
            inside_intron = True
        elif symbol == ACCEPTOR_MARK:
            inside_intron = False
        elif not inside_intron:
            output.append(symbol)
    return "".join(output)


def reference_orfs(rna: str):
    """All minimal in-frame (start, stop) spans, as (start, stop, sequence)."""
    spans = []
    for start in range(len(rna) - 2):
        if rna[start:start + 3] != "aug":
            continue
        for stop in range(start + 3, len(rna) - 2, 3):
            if rna[stop:stop + 3] in STOP_CODONS:
                spans.append((start + 1, stop + 1, rna[start:stop + 3]))
                break
    return spans


# ----------------------------------------------------------------------
# Machines
# ----------------------------------------------------------------------
class TestGenomeMachines:
    def test_complement_transducer(self):
        machine = complement_dna_transducer()
        assert machine("acgt").text == "tgca"
        assert machine("").text == ""
        assert machine.order == 1

    def test_splice_removes_marked_introns(self):
        machine = splice_transducer()
        assert machine("aug<ggg>cau").text == "augcau"
        assert machine("<ggg>aug").text == "aug"
        assert machine("aug").text == "aug"

    def test_splice_handles_multiple_introns(self):
        machine = splice_transducer()
        assert machine("aa<cc>gg<uu>aa").text == "aaggaa"

    def test_splice_tolerates_stray_markers(self):
        machine = splice_transducer()
        assert machine(">aug<").text == "aug"
        assert machine("a<<c>>g").text == "ag"

    def test_clean_transducer_drops_noise(self):
        machine = clean_transducer()
        assert machine("ac-gn-t").text == "acgt"

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="acgu<>", max_size=12))
    def test_splice_matches_reference(self, marked):
        machine = splice_transducer()
        assert machine(marked).text == reference_splice(marked)

    @settings(max_examples=30, deadline=None)
    @given(dna_words)
    def test_complement_matches_reference(self, dna):
        machine = complement_dna_transducer()
        assert machine(dna).text == "".join(COMPLEMENT[b] for b in dna)


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
class TestGenomePrograms:
    def test_reverse_complement_program_on_paper_string(self):
        from repro import SequenceDatabase, compute_least_fixpoint
        from repro.engine import evaluate_query

        db = SequenceDatabase.from_dict({"dnaseq": ["acgtacgt"]})
        result = compute_least_fixpoint(reverse_complement_program(), db)
        rows = dict(evaluate_query(result.interpretation, "revcomp(X, Y)").texts())
        assert rows["acgtacgt"] == reference_reverse_complement("acgtacgt")

    def test_restriction_site_program_requires_a_site(self):
        with pytest.raises(ValidationError):
            restriction_site_program("")

    def test_reading_frame_program_rejects_bad_frames(self):
        with pytest.raises(ValidationError):
            reading_frame_program(0)
        with pytest.raises(ValidationError):
            reading_frame_program(4)

    def test_orf_program_is_not_constructive(self):
        """The ORF search is pure structural recursion: no constructive
        clauses, hence it runs in the non-constructive (PTIME, Theorem 3)
        fragment."""
        program = orf_program()
        assert not any(clause.is_constructive() for clause in program)

    def test_reverse_complement_program_safety_shape(self):
        """Reverse complement uses constructive recursion (the Example 1.4
        pattern), so it is *not* strongly safe -- matching the paper's
        discussion that some natural restructurings need recursion through
        construction."""
        from repro.analysis.safety import analyze_safety

        report = analyze_safety(reverse_complement_program())
        assert not report.strongly_safe


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class TestGenomeAnalyzer:
    def test_rejects_non_dna_strands(self):
        with pytest.raises(AlphabetError):
            GenomeAnalyzer(["acgx"])

    def test_transcripts_match_example_7_1(self):
        analyzer = GenomeAnalyzer(["acgtacgt"])
        assert analyzer.transcripts() == {"acgtacgt": "ugcaugca"}

    def test_proteins_follow_the_codon_table(self):
        analyzer = GenomeAnalyzer(["acgtacgt"])
        proteins = analyzer.proteins()
        rna = reference_transcribe("acgtacgt")
        expected = "".join(
            CODON_TABLE[rna[i:i + 3]] for i in range(0, len(rna) - 2, 3)
        )
        assert proteins["acgtacgt"] == expected

    def test_reverse_complements(self):
        strands = ["acgt", "ttagga"]
        analyzer = GenomeAnalyzer(strands)
        result = analyzer.reverse_complements()
        assert result == {s: reference_reverse_complement(s) for s in strands}

    def test_complements_are_not_reversed(self):
        analyzer = GenomeAnalyzer(["aacg"])
        assert analyzer.complements() == {"aacg": "ttgc"}

    def test_splice_pipeline(self):
        analyzer = GenomeAnalyzer(["acgt"])
        spliced = analyzer.splice(["aug<ggg>cau", "augcau"])
        assert spliced == ["augcau", "augcau"]

    def test_reading_frames(self):
        # DNA "tacuxx"?  Use a strand whose transcript is easy to read off:
        # transcript of "tacatt" is "auguaa".
        analyzer = GenomeAnalyzer(["tacatt"])
        frames = analyzer.reading_frame(1)
        assert frames == {"auguaa": ["aug", "uaa"]}
        frames2 = analyzer.reading_frame(2)
        assert frames2 == {"auguaa": ["ugu"]}

    def test_open_reading_frames_on_a_designed_strand(self):
        # Transcript: aug gcu uaa  ("tac cga att" complemented per base).
        dna = "taccgaatt"
        analyzer = GenomeAnalyzer([dna])
        transcript = analyzer.transcripts()[dna]
        assert transcript == "auggcuuaa"
        orfs = analyzer.open_reading_frames()
        assert len(orfs) == 1
        orf = orfs[0]
        assert (orf.start, orf.stop) == (1, 7)
        assert orf.sequence == "auggcuuaa"
        assert orf.protein == "MA*"

    def test_open_reading_frames_minimal_vs_all(self):
        # Transcript with two in-frame stops: aug uaa uag
        dna = "tacattatc"
        analyzer = GenomeAnalyzer([dna])
        assert analyzer.transcripts()[dna] == "auguaauag"
        minimal = analyzer.open_reading_frames(min_codons=1)
        everything = analyzer.open_reading_frames(min_codons=1, minimal_only=False)
        assert len(minimal) == 1
        assert minimal[0].sequence == "auguaa"
        assert {orf.sequence for orf in everything} == {"auguaa", "auguaauag"}

    def test_open_reading_frames_min_codons_filter(self):
        dna = "tacatt"  # transcript auguaa: a 2-codon ORF
        analyzer = GenomeAnalyzer([dna])
        assert analyzer.open_reading_frames(min_codons=2)
        assert not analyzer.open_reading_frames(min_codons=3)
        with pytest.raises(ValidationError):
            analyzer.open_reading_frames(min_codons=0)

    def test_orfs_agree_with_reference_on_synthetic_strands(self):
        from repro.workloads import random_dna_strings

        strands = random_dna_strings(3, 18, seed=7)
        analyzer = GenomeAnalyzer(strands)
        transcripts = analyzer.transcripts()
        expected = {
            (transcripts[strand], start, stop, sequence)
            for strand in strands
            for (start, stop, sequence) in reference_orfs(transcripts[strand])
        }
        found = {
            (orf.strand, orf.start, orf.stop, orf.sequence)
            for orf in analyzer.open_reading_frames(min_codons=1)
        }
        assert found == expected

    def test_restriction_sites_and_digest(self):
        strand = "ggaattcaagaattcc"
        analyzer = GenomeAnalyzer([strand])
        sites = analyzer.restriction_sites("gaattc")
        assert sites == {strand: [2, 10]}
        fragments = analyzer.digest("gaattc", cut_offset=1)
        assert fragments[strand] == ["gg", "aattcaag", "aattcc"]
        assert "".join(fragments[strand]) == strand

    def test_restriction_sites_absent(self):
        analyzer = GenomeAnalyzer(["acgtacgt"])
        assert analyzer.restriction_sites("gaattc") == {"acgtacgt": []}

    def test_gc_content(self):
        analyzer = GenomeAnalyzer(["ggcc", "at", ""])
        content = analyzer.gc_content()
        assert content["ggcc"] == 1.0
        assert content["at"] == 0.0
        assert content[""] == 0.0

    def test_repr_summarises_the_database(self):
        analyzer = GenomeAnalyzer(["acgt", "gg"])
        assert "2 strands" in repr(analyzer)
        assert "6 bases" in repr(analyzer)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.text(alphabet="acgt", min_size=1, max_size=8), min_size=1, max_size=3))
    def test_transcription_matches_reference_on_random_strands(self, strands):
        analyzer = GenomeAnalyzer(strands)
        transcripts = analyzer.transcripts()
        for strand in strands:
            assert transcripts[strand] == reference_transcribe(strand)

    @settings(max_examples=8, deadline=None)
    @given(st.text(alphabet="acgt", min_size=1, max_size=7))
    def test_reverse_complement_matches_reference_on_random_strands(self, strand):
        analyzer = GenomeAnalyzer([strand])
        assert analyzer.reverse_complements()[strand] == reference_reverse_complement(strand)
