"""Tests for dependency graphs, strong safety and stratification (Sections 5, 8)."""

import pytest

from repro.analysis import (
    analyze_safety,
    build_dependency_graph,
    is_non_constructive,
    is_stratified_by_construction,
    is_strongly_safe,
    non_constructive_subset,
    program_order,
    stratify_by_construction,
)
from repro.analysis.safety import require_strongly_safe
from repro.core import paper_programs
from repro.errors import SafetyError


@pytest.fixture
def figure_3():
    return paper_programs.figure_3_programs()


class TestDependencyGraph:
    def test_nodes_and_edges_of_p1(self, figure_3):
        p1, _, _ = figure_3
        graph = build_dependency_graph(p1)
        assert set(graph.nodes) == {"p", "q", "r", "a"}
        assert graph.depends_on("p", "r")
        assert graph.depends_on("p", "q")
        assert graph.depends_constructively_on("r", "a")
        assert not graph.depends_constructively_on("p", "q")

    def test_p1_has_cycles_but_no_constructive_ones(self, figure_3):
        p1, _, _ = figure_3
        graph = build_dependency_graph(p1)
        assert graph.cycles()  # p <-> q
        assert graph.constructive_cycles() == []
        assert not graph.has_constructive_cycle()

    def test_p2_has_a_constructive_self_loop(self, figure_3):
        _, p2, _ = figure_3
        graph = build_dependency_graph(p2)
        assert graph.constructive_cycles() == [["p"]]
        assert graph.has_constructive_cycle()

    def test_p3_has_a_constructive_three_cycle(self, figure_3):
        _, _, p3 = figure_3
        graph = build_dependency_graph(p3)
        cycles = graph.constructive_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"p", "q", "r"}

    def test_linearized_components_are_bottom_up(self, figure_3):
        p1, _, _ = figure_3
        graph = build_dependency_graph(p1)
        components = graph.linearized_components()
        positions = {
            predicate: index
            for index, component in enumerate(components)
            for predicate in component
        }
        # "a" and "r" must come before the p/q component they feed.
        assert positions["a"] < positions["p"]
        assert positions["r"] < positions["p"]
        assert positions["p"] == positions["q"]  # same SCC

    def test_describe_mentions_constructive_cycles(self, figure_3):
        _, p2, _ = figure_3
        text = build_dependency_graph(p2).describe()
        assert "constructive cycles" in text
        assert "p -> p" in text


class TestStrongSafety:
    def test_figure_3_verdicts(self, figure_3):
        p1, p2, p3 = figure_3
        assert is_strongly_safe(p1)
        assert not is_strongly_safe(p2)
        assert not is_strongly_safe(p3)

    def test_safety_report_details(self, figure_3):
        _, p2, _ = figure_3
        report = analyze_safety(p2)
        assert not report.strongly_safe
        assert report.constructive_predicates == ["p"]
        assert "no" in report.describe()

    def test_require_strongly_safe_raises(self, figure_3):
        _, p2, _ = figure_3
        with pytest.raises(SafetyError):
            require_strongly_safe(p2)

    def test_paper_programs_classification(self):
        assert is_strongly_safe(paper_programs.stratified_construction_program())
        assert is_strongly_safe(paper_programs.suffixes_program())
        assert not is_strongly_safe(paper_programs.rep2_program())
        genome, _ = paper_programs.genome_program()
        assert is_strongly_safe(genome)

    def test_program_order(self):
        genome, catalog = paper_programs.genome_program()
        assert program_order(genome, catalog.orders()) == 1
        assert program_order(paper_programs.suffixes_program()) == 0
        assert program_order(paper_programs.rep2_program()) == 1
        figure3 = paper_programs.figure_3_programs()[0]
        assert program_order(figure3, paper_programs.figure_3_catalog().orders()) == 2


class TestStratification:
    def test_example_5_1_strata(self):
        stratification = stratify_by_construction(
            paper_programs.stratified_construction_program()
        )
        assert stratification.depth == 2
        assert stratification.predicate_stratum["double"] < stratification.predicate_stratum["quadruple"]
        assert stratification.constructive_strata() == [0, 1]

    def test_recursive_but_safe_program_stratifies(self):
        p1 = paper_programs.figure_3_programs()[0]
        stratification = stratify_by_construction(p1)
        # r is constructed below the p/q recursion.
        assert stratification.predicate_stratum["r"] < stratification.predicate_stratum["p"]
        assert stratification.predicate_stratum["p"] == stratification.predicate_stratum["q"]

    def test_unsafe_program_cannot_be_stratified(self):
        with pytest.raises(SafetyError):
            stratify_by_construction(paper_programs.rep2_program())
        assert not is_stratified_by_construction(paper_programs.rep2_program())

    def test_describe_lists_strata(self):
        text = stratify_by_construction(
            paper_programs.stratified_construction_program()
        ).describe()
        assert "stratum 0" in text and "double" in text


class TestFragments:
    def test_non_constructive_detection(self):
        assert is_non_constructive(paper_programs.anbncn_program())
        assert not is_non_constructive(paper_programs.reverse_program())

    def test_non_constructive_subset_split(self):
        plain, constructive = non_constructive_subset(paper_programs.reverse_program())
        assert len(constructive) == 1
        assert len(plain) == 2
        assert is_non_constructive(plain)
