"""Tests for the transducer builder DSL and the transducer catalog."""

import pytest

from repro.errors import TransducerError
from repro.sequences import Sequence
from repro.transducers import CONSUME, TransducerBuilder, TransducerCatalog, library


class TestBuilder:
    def test_add_for_symbols_generates_per_symbol_transitions(self):
        builder = TransducerBuilder("upper", num_inputs=1, alphabet="ab")
        builder.add_for_symbols(
            state="q0", head=0, next_state="q0",
            output_of=lambda symbol: symbol.upper() if symbol == "a" else symbol,
        )
        machine = builder.build("q0")
        assert machine("aba").text == "AbA"

    def test_add_for_symbols_on_two_input_machines(self):
        builder = TransducerBuilder("first_only", num_inputs=2, alphabet="ab")
        # Copy tape 1 regardless of what tape 2 scans, then stop caring.
        builder.add_for_symbols(
            state="q0", head=0, next_state="q0", output_of=lambda symbol: symbol
        )
        machine = builder.build("q0")
        assert machine("ab", "").text == "ab"

    def test_fluent_interface_returns_the_builder(self):
        builder = TransducerBuilder("t", num_inputs=1, alphabet="a")
        assert builder.add("q0", ("a",), "q0", (CONSUME,), "a") is builder


class TestCatalog:
    def test_register_and_get(self):
        catalog = TransducerCatalog([library.copy_transducer("ab")])
        assert "copy" in catalog
        assert catalog.get("copy")("ab") == Sequence("ab")

    def test_alias_registration(self):
        catalog = TransducerCatalog()
        catalog.register(library.copy_transducer("ab"), name="identity")
        assert "identity" in catalog
        assert "copy" not in catalog

    def test_conflicting_registration_rejected(self):
        catalog = TransducerCatalog([library.copy_transducer("ab")])
        with pytest.raises(TransducerError):
            catalog.register(library.copy_transducer("abc"), name="copy")

    def test_re_registering_the_same_machine_is_idempotent(self):
        machine = library.copy_transducer("ab")
        catalog = TransducerCatalog([machine])
        catalog.register(machine)
        assert len(catalog) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(TransducerError):
            TransducerCatalog().get("missing")

    def test_orders_and_max_order(self):
        catalog = TransducerCatalog(
            [library.copy_transducer("ab"), library.square_transducer("ab")]
        )
        assert catalog.orders() == {"copy": 1, "square": 2}
        assert catalog.max_order() == 2
        assert TransducerCatalog().max_order() == 0

    def test_callables_view_runs_the_machines(self):
        catalog = TransducerCatalog([library.complement_transducer("01")])
        callables = catalog.callables()
        assert callables["complement"](Sequence("01")).text == "10"

    def test_copy_is_independent(self):
        catalog = TransducerCatalog([library.copy_transducer("ab")])
        clone = catalog.copy()
        clone.register(library.square_transducer("ab"))
        assert "square" not in catalog
        assert sorted(clone.names()) == ["copy", "square"]
