"""The leader side of generation shipping: record publishes, serve streams.

A :class:`ReplicationHub` registers itself as a publish listener on one
:class:`~repro.engine.server.DatalogServer` and, for every published
generation, records *which slice of the session's base-fact log produced
it*.  Relations (and the base-fact log) are append-only, so an entry is
just ``(generation, start, end, fact_count)`` — offsets into the log,
recorded under the writer lock, costing no copies on the write path.
Replaying those slices through another session's incremental maintenance
reproduces the leader's model exactly (the engine is deterministic and
monotone), which is the whole replication protocol:

* a subscriber the log still covers gets one ``generation_frame`` per
  recorded entry (its slice as text tuples, plus the leader's total fact
  count at that generation for divergence detection);
* a new subscriber — or one behind the retention floor — gets a snapshot
  bootstrap first: the current model captured atomically and shipped as
  the same record structure :mod:`repro.storage.snapshot` writes to disk.

The hub keeps at most ``max_entries`` recorded generations; older ones
fall off and the floor advances (a follower further behind than that is
told to re-bootstrap via ``details.bootstrap_required``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.api.types import GenerationFrame
from repro.engine.session import DatalogSession
from repro.sequences import Sequence
from repro.storage.snapshot import snapshot_records
from repro.storage.store import program_fingerprint

#: How often an idle replication stream emits a heartbeat (and therefore
#: the follower's lag-tracking resolution while no data moves).
DEFAULT_HEARTBEAT_SECONDS = 1.0

#: Recorded generations kept for incremental catch-up.  Entries are a few
#: machine words each (offsets into the live base-fact log, no row copies),
#: so the window can be generous; beyond it a follower re-bootstraps.
DEFAULT_MAX_ENTRIES = 4096


def _wire_row(values) -> tuple:
    return tuple(
        value.text if isinstance(value, Sequence) else str(value)
        for value in values
    )


class _Entry:
    """One published generation: a window into the base-fact log."""

    __slots__ = ("generation", "base_list", "start", "end", "fact_count")

    def __init__(self, generation, base_list, start, end, fact_count):
        self.generation = generation
        self.base_list = base_list
        self.start = start
        self.end = end
        self.fact_count = fact_count

    def frame(self) -> GenerationFrame:
        # Slicing an append-only list the writer only ever appends to is
        # safe under the GIL; the slice is the exact batch this publish
        # inserted, already deduplicated by the session.
        batch = self.base_list[self.start:self.end]
        return GenerationFrame(
            generation=self.generation,
            facts=tuple(
                (predicate, _wire_row(values)) for predicate, values in batch
            ),
            fact_count=self.fact_count,
        )


class _Bootstrap:
    """An atomically captured model, ready to serialize off-thread."""

    __slots__ = ("generation", "fact_count", "records")

    def __init__(self, generation: int, fact_count: int, records: Iterator[Dict[str, Any]]):
        self.generation = generation
        self.fact_count = fact_count
        self.records = records


class ReplicationHub:
    """Publish one server's generation stream to replication subscribers.

    Thread-safety: :meth:`_on_publish` runs under the server's writer
    lock; everything else runs on connection threads.  The hub's own lock
    covers the entry window and counters.
    """

    def __init__(
        self,
        server,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        self._server = server
        self.heartbeat_seconds = max(0.05, float(heartbeat_seconds))
        self._max_entries = max(1, int(max_entries))
        self.fingerprint = program_fingerprint(server.program)
        self._lock = threading.Lock()
        self._entries: Deque[_Entry] = deque()
        self._floor: Optional[int] = None
        self._latest: Optional[int] = None
        self._base_ref: Optional[list] = None
        self._last_end = 0
        self._subscribers = 0
        self._subscriptions_total = 0
        self._bootstraps_served = 0
        # The priming fire inside add_publish_listener anchors the floor
        # at the server's current generation, atomically with registration.
        server.add_publish_listener(self._on_publish)

    # ------------------------------------------------------------------
    # The write path (server writer lock held)
    # ------------------------------------------------------------------
    def _on_publish(self, generation: int, session: DatalogSession) -> None:
        base = session._base_facts
        with self._lock:
            if self._floor is None or self._base_ref is not base:
                # First fire (registration priming), or the session was
                # swapped underneath us (a follower re-bootstrapping):
                # earlier offsets are meaningless, so re-anchor here and
                # drop the window — stale subscribers will re-bootstrap.
                self._entries.clear()
                self._floor = generation
                self._latest = generation
                self._base_ref = base
                self._last_end = len(base)
                return
            end = len(base)
            self._entries.append(
                _Entry(
                    generation,
                    base,
                    self._last_end,
                    end,
                    session._core.interpretation.fact_count(),
                )
            )
            self._latest = generation
            self._last_end = end
            while len(self._entries) > self._max_entries:
                dropped = self._entries.popleft()
                self._floor = dropped.generation

    # ------------------------------------------------------------------
    # The read path (subscriber connection threads)
    # ------------------------------------------------------------------
    @property
    def latest(self) -> int:
        with self._lock:
            return self._latest if self._latest is not None else 0

    def covers(self, from_generation: int) -> bool:
        """Can a subscriber at ``from_generation`` catch up incrementally?"""
        with self._lock:
            return (
                self._floor is not None
                and self._floor <= from_generation <= (self._latest or 0)
            )

    def frames_since(self, from_generation: int) -> Optional[List[GenerationFrame]]:
        """Every recorded generation after ``from_generation``, as frames.

        Returns ``None`` when the window no longer covers that position
        (the subscriber must re-bootstrap); an empty list means caught up.
        """
        with self._lock:
            if self._floor is None or from_generation < self._floor:
                return None
            entries = [
                entry
                for entry in self._entries
                if entry.generation > from_generation
            ]
        return [entry.frame() for entry in entries]

    def capture_bootstrap(self) -> _Bootstrap:
        """Capture the current model for a snapshot bootstrap.

        The capture itself is atomic (the server pins it under its writer
        lock); serialization to snapshot records happens lazily on the
        subscriber's connection thread, off every lock.
        """
        generation, views, base_facts, fact_count = self._server.capture_model()
        with self._lock:
            self._bootstraps_served += 1

        def records() -> Iterator[Dict[str, Any]]:
            relation_rows = {
                predicate: [_wire_row(row) for row in view]
                for predicate, view in views.items()
            }
            wire_base = [
                (predicate, _wire_row(values))
                for predicate, values in base_facts
            ]
            # batch=0: the WAL batch counter is a durability-local notion;
            # a wire bootstrap is not tied to any log file.
            yield from snapshot_records(
                generation=generation,
                batch=0,
                program_fingerprint=self.fingerprint,
                relation_rows=relation_rows,
                base_facts=wire_base,
                fact_count=fact_count,
            )

        return _Bootstrap(generation, fact_count, records())

    # ------------------------------------------------------------------
    # Subscriber accounting and introspection
    # ------------------------------------------------------------------
    def subscriber_opened(self) -> None:
        with self._lock:
            self._subscribers += 1
            self._subscriptions_total += 1

    def subscriber_closed(self) -> None:
        with self._lock:
            self._subscribers = max(0, self._subscribers - 1)

    def stats(self) -> Dict[str, Any]:
        """The leader's ``stats()["replication"]`` block."""
        with self._lock:
            return {
                "role": "leader",
                "generation": self._latest if self._latest is not None else 0,
                "floor": self._floor if self._floor is not None else 0,
                "window": len(self._entries),
                "subscribers": self._subscribers,
                "subscriptions_total": self._subscriptions_total,
                "bootstraps_served": self._bootstraps_served,
            }

    def __repr__(self) -> str:
        return (
            f"ReplicationHub(generation={self.latest}, "
            f"{self._subscribers} subscribers)"
        )
