"""A read replica: subscribe to a leader, apply generations, serve reads.

:class:`FollowerServer` subclasses :class:`~repro.engine.server.
DatalogServer`, so the whole serving surface — snapshot-isolated queries,
result caching, the API service and TCP transport — works on it
unchanged.  What changes is where the model comes from: a background
replication thread holds one subscription connection to the leader and

1. **bootstraps** when new or too far behind — snapshot records stream in
   (the on-disk structure of :mod:`repro.storage.snapshot` on the wire),
   are assembled with the loader's own validation, restored into a fresh
   session exactly like crash recovery, and swapped in atomically under
   the writer lock (reads keep hitting the old snapshot until then);
2. **applies** each ``generation_frame`` through ordinary incremental
   maintenance, publishing it *as the leader's generation number* and
   verifying the leader's total fact count — leader and follower are
   fact-for-fact identical at equal generations, and silent divergence
   cannot accumulate;
3. **reconnects** with exponential backoff on any failure, resuming
   incrementally from its own generation when the leader still covers it
   (killing a follower mid-bootstrap and restarting it is the tested
   path, not an edge case).

Writes are refused with the stable ``not_leader`` error carrying the
leader's address, which clients follow automatically.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Dict, Optional, Tuple, Union

from repro.api.protocol import MAX_FRAME_BYTES, recv_json, send_json
from repro.api.types import (
    ApiError,
    GenerationFrame,
    HeartbeatFrame,
    HelloResponse,
    SnapshotFrame,
    SubscribeRequest,
    decode_response,
    encode_request,
)
from repro.engine.bindings import TransducerRegistry
from repro.engine.limits import EvaluationLimits
from repro.engine.server import DatalogServer, ModelSnapshot
from repro.engine.session import DatalogSession, FactsLike, MaintenanceReport
from repro.errors import NotLeaderError, ProtocolError, ReplicationError
from repro.language.clauses import Program
from repro.storage.snapshot import SnapshotAssembler
from repro.storage.store import program_fingerprint


class FollowerServer(DatalogServer):
    """Serve one program read-only, replicated from a leader.

    Parameters
    ----------
    program:
        The same program the leader serves (text or parsed).  Identity is
        enforced by fingerprint before any state ships.
    leader:
        The leader's replication endpoint: ``"host:port"`` or a
        ``(host, port)`` tuple (the leader's ordinary API port — the
        subscription travels over the same protocol).
    limits, transducers, workers, result_cache_size:
        As on :class:`DatalogServer`; ``workers`` parallelises the
        follower's *apply* path the same way it does leader maintenance.
    follower_id:
        Stable name reported to the leader (diagnostics only).
    start:
        When True (default), the replication thread starts immediately;
        pass False to start it later with :meth:`start_replication`.
    """

    def __init__(
        self,
        program: Union[str, Program],
        leader: Union[str, Tuple[str, int]],
        limits: Optional[EvaluationLimits] = None,
        transducers: Optional[TransducerRegistry] = None,
        workers: Optional[int] = None,
        result_cache_size: int = 1024,
        follower_id: Optional[str] = None,
        connect_timeout: float = 5.0,
        reconnect_min_seconds: float = 0.05,
        reconnect_max_seconds: float = 2.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        start: bool = True,
    ):
        super().__init__(
            program,
            limits=limits,
            transducers=transducers,
            workers=workers,
            result_cache_size=result_cache_size,
        )
        if isinstance(leader, str):
            from repro.api.transport import parse_address

            leader = parse_address(leader)
        self._leader_host, self._leader_port = leader
        self.leader_address = f"{self._leader_host}:{self._leader_port}"
        self.follower_id = follower_id or f"follower-{os.getpid()}"
        self.fingerprint = program_fingerprint(self.program)
        self._connect_timeout = connect_timeout
        self._reconnect_min = max(0.01, reconnect_min_seconds)
        self._reconnect_max = max(self._reconnect_min, reconnect_max_seconds)
        self._max_frame_bytes = max_frame_bytes
        self._stop = threading.Event()
        self._connected = threading.Event()
        self._socket: Optional[socket.socket] = None
        self._socket_lock = threading.Lock()
        # A brand-new replica always bootstraps: its generation 0 is an
        # empty model, while the leader's generation 0 may carry an
        # initially loaded database — generation numbers only resume a
        # replica that has synced this leader's state before.
        self._force_bootstrap = True
        self._leader_generation = self.generation
        self._bootstraps = 0
        self._frames_applied = 0
        self._heartbeats = 0
        self._connects = 0
        self._last_error: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start_replication()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_replication(self) -> FollowerServer:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._replicate_forever,
                name=f"repro-replication-{self.follower_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._close_socket()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        super().close()

    def _close_socket(self) -> None:
        with self._socket_lock:
            sock = self._socket
            self._socket = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Read-only surface
    # ------------------------------------------------------------------
    def _refuse_write(self) -> NotLeaderError:
        return NotLeaderError(
            "this node is a read-only follower; send writes to the leader "
            f"at {self.leader_address}",
            leader=self.leader_address,
        )

    def add_facts(self, facts: FactsLike) -> MaintenanceReport:
        raise self._refuse_write()

    def add_facts_published(
        self, facts: FactsLike
    ) -> Tuple[MaintenanceReport, int]:
        raise self._refuse_write()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._connected.is_set()

    @property
    def lag(self) -> int:
        """Generation delta behind the leader (0 when caught up)."""
        return max(0, self._leader_generation - self.generation)

    def wait_connected(self, timeout: float = 10.0) -> bool:
        """Block until the subscription is live (tests and orchestration)."""
        return self._connected.wait(timeout)

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["replication"] = {
            "role": "follower",
            "leader": self.leader_address,
            "connected": self.connected,
            "generation": self.generation,
            "leader_generation": self._leader_generation,
            "lag": self.lag,
            "bootstraps": self._bootstraps,
            "frames_applied": self._frames_applied,
            "heartbeats": self._heartbeats,
            "connects": self._connects,
            "last_error": self._last_error,
        }
        return stats

    # ------------------------------------------------------------------
    # The replication thread
    # ------------------------------------------------------------------
    def _replicate_forever(self) -> None:
        backoff = self._reconnect_min
        while not self._stop.is_set():
            try:
                self._run_stream_once()
                backoff = self._reconnect_min  # clean EOF: leader restarting
            except ReplicationError as error:
                # Stream-level divergence (bad frame application, count
                # mismatch): local state is suspect — rebuild from scratch.
                self._last_error = f"{type(error).__name__}: {error}"
                self._force_bootstrap = True
            except (OSError, ProtocolError, ValueError) as error:
                self._last_error = f"{type(error).__name__}: {error}"
            finally:
                self._connected.clear()
                self._close_socket()
            if self._stop.is_set():
                return
            self._stop.wait(backoff)
            backoff = min(backoff * 2, self._reconnect_max)

    def _run_stream_once(self) -> None:
        sock = socket.create_connection(
            (self._leader_host, self._leader_port), timeout=self._connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._socket_lock:
            if self._stop.is_set():
                sock.close()
                return
            self._socket = sock
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")
        try:
            from_generation = None if self._force_bootstrap else self.generation
            send_json(
                writer,
                encode_request(
                    SubscribeRequest(
                        from_generation=from_generation,
                        fingerprint=self.fingerprint,
                        follower_id=self.follower_id,
                    )
                ),
                self._max_frame_bytes,
            )
            hello = self._recv(reader)
            if hello is None:
                raise ProtocolError("leader closed the connection on subscribe")
            if not isinstance(hello, HelloResponse):
                raise ProtocolError(
                    f"expected a hello reply to subscribe, got "
                    f"{type(hello).__name__}"
                )
            # The hello is authoritative, not a lower bound: a replaced
            # leader may legitimately sit at a lower generation, and lag
            # must track the leader we are talking to now.
            self._leader_generation = hello.generation
            # A silent leader means a dead one: time out well past the
            # promised heartbeat cadence and reconnect.
            sock.settimeout(
                max(self._connect_timeout, hello.heartbeat_seconds * 10)
            )
            self._connects += 1
            self._connected.set()
            if (
                not hello.bootstrap
                and hello.generation == self.generation
                and hello.facts != self._snapshot.fact_count()
            ):
                # Same generation number, different model: the leader was
                # rebuilt with other data.  Catch it at the handshake, not
                # one frame later.
                raise ReplicationError(
                    f"leader holds {hello.facts} facts at generation "
                    f"{hello.generation}, this replica holds "
                    f"{self._snapshot.fact_count()} — diverged, re-bootstrapping"
                )
            if hello.bootstrap:
                self._bootstrap(reader)
            self._force_bootstrap = False
            self._last_error = None
            while not self._stop.is_set():
                response = self._recv(reader)
                if response is None:
                    return  # leader closed cleanly
                if isinstance(response, GenerationFrame):
                    self.apply_replicated(
                        list(response.facts),
                        response.generation,
                        expected_facts=response.fact_count,
                    )
                    self._frames_applied += 1
                    self._leader_generation = max(
                        self._leader_generation, response.generation
                    )
                elif isinstance(response, HeartbeatFrame):
                    self._heartbeats += 1
                    self._leader_generation = max(
                        self._leader_generation, response.generation
                    )
                else:
                    raise ProtocolError(
                        f"unexpected {type(response).__name__} on the "
                        "replication stream"
                    )
        finally:
            for stream in (reader, writer):
                try:
                    stream.close()
                except OSError:
                    pass

    def _recv(self, reader):
        message = recv_json(reader, self._max_frame_bytes)
        if message is None:
            return None
        response = decode_response(message)
        if isinstance(response, ApiError):
            if response.details.get("bootstrap_required"):
                # The leader's window moved past us: wipe and rebuild.
                self._force_bootstrap = True
            response.raise_()
        return response

    def _bootstrap(self, reader) -> None:
        """Assemble streamed snapshot records and swap the session in.

        The old session keeps serving reads for the whole transfer; the
        swap is one pointer flip under the writer lock.  A connection cut
        anywhere in here leaves the old state untouched — the retry loop
        simply re-subscribes and starts a fresh bootstrap.
        """
        assembler = SnapshotAssembler(
            f"leader {self.leader_address}", self.fingerprint
        )
        index = 0
        while not assembler.complete:
            response = self._recv(reader)
            if response is None:
                raise ProtocolError(
                    "leader closed the connection mid-bootstrap"
                )
            if not isinstance(response, SnapshotFrame):
                raise ProtocolError(
                    f"expected a snapshot_frame during bootstrap, got "
                    f"{type(response).__name__}"
                )
            assembler.feed(dict(response.record), where=f"frame {index}")
            index += 1
        header, facts, base_facts = assembler.finish()
        fresh = DatalogSession(
            self.program,
            limits=self._session.limits,
            transducers=self._session._transducers,
            workers=self.workers,
            lazy=True,  # restore_state needs a pristine, unmaterialised session
        )
        try:
            fresh.restore_state(facts, base_facts)
        except BaseException:
            fresh.close()
            raise
        generation = header["generation"]
        with self._write_lock:
            old = self._session
            self._session = fresh
            self._generation = generation
            self._snapshot = ModelSnapshot.of(
                generation, fresh._core.interpretation
            )
            with self._cache_lock:
                # Result keys are generation-scoped, but a wiped-and-
                # rebuilt replica may revisit generation numbers (a leader
                # that restarted without durability): drop everything.
                self._results.clear()
            self._announce_publish()
        self._bootstraps += 1
        old.close()

    def __repr__(self) -> str:
        return (
            f"FollowerServer(leader={self.leader_address}, "
            f"generation={self.generation}, lag={self.lag}, "
            f"{'connected' if self.connected else 'disconnected'})"
        )
