"""A fleet-aware client: reads across followers, writes to the leader.

:class:`RoutingClient` wraps one :class:`~repro.api.client.DatalogClient`
per endpoint and adds the routing policy a replicated fleet needs:

* **Topology discovery.**  Each endpoint's ``stats().replication`` block
  names its role; followers also name their leader, so handing the router
  only follower addresses still finds the write path.
* **Read load-balancing.**  Queries rotate round-robin across live
  followers (the leader serves reads only when no follower is up); an
  endpoint that fails at the connection level is skipped for the rest of
  the pass and retried on the next :meth:`refresh`.
* **Write pinning.**  ``add_facts`` goes to the discovered leader; a
  stable ``not_leader`` redirect (topology learned stale) is followed to
  the address it carries.
* **Read-your-writes.**  With ``read_your_writes=True`` the router
  remembers the generation each write published and stamps every later
  query with ``min_generation``, so a follower blocks until it has caught
  up (or the leader answers after a :class:`~repro.errors.LagTimeoutError`).

The CLI front-end is ``repro route HOST:PORT [HOST:PORT ...]``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.client import DatalogClient
from repro.api.types import AddFactsResponse, QueryResultPage, ServerStats
from repro.engine.session import FactsLike
from repro.errors import LagTimeoutError, NotLeaderError, ProtocolError

#: Hops a write may follow ``not_leader`` redirects before giving up
#: (more than one redirect means the fleet disagrees about its leader).
_MAX_REDIRECTS = 3


def _endpoint_text(endpoint: Union[str, Tuple[str, int]]) -> str:
    if isinstance(endpoint, str):
        from repro.api.transport import parse_address

        host, port = parse_address(endpoint)
    else:
        host, port = endpoint
    return f"{host}:{int(port)}"


class RoutingClient:
    """Route queries and writes across one replicated fleet.

    Parameters
    ----------
    endpoints:
        The fleet: ``"host:port"`` strings or ``(host, port)`` tuples, in
        any mix of leader and followers (roles are discovered, not
        declared).
    read_your_writes:
        Stamp queries with the last write's generation as a
        ``min_generation`` bound (see the module docstring).
    min_generation_timeout:
        Seconds a bounded read may wait on a lagging follower before the
        router falls back to the leader.
    client_options:
        Forwarded to every per-endpoint :class:`DatalogClient`
        (``timeout``, ``retries``, ``page_size``, ...).

    Thread-safety: the topology bookkeeping is locked, but the underlying
    clients are blocking single-connection objects — share a router across
    threads only for its thread-safe bookkeeping, not concurrent calls.
    """

    def __init__(
        self,
        endpoints: Iterable[Union[str, Tuple[str, int]]],
        read_your_writes: bool = False,
        min_generation_timeout: float = 5.0,
        **client_options: Any,
    ) -> None:
        self._endpoints: List[str] = [_endpoint_text(e) for e in endpoints]
        if not self._endpoints:
            raise ProtocolError("RoutingClient needs at least one endpoint")
        self._client_options = client_options
        self._clients: Dict[str, DatalogClient] = {}
        self._lock = threading.Lock()
        self._leader: Optional[str] = None
        self._followers: List[str] = []
        self._dead: set = set()
        self._read_index = 0
        self.read_your_writes = read_your_writes
        self.min_generation_timeout = min_generation_timeout
        self._last_write_generation = 0

    # ------------------------------------------------------------------
    # Connection and topology plumbing
    # ------------------------------------------------------------------
    def _client(self, endpoint: str) -> DatalogClient:
        with self._lock:
            client = self._clients.get(endpoint)
            if client is None:
                host, _, port = endpoint.rpartition(":")
                options = dict(self._client_options)
                # The router owns redirect handling (it learns the leader
                # from them); a client silently following its own would
                # hide the topology.
                options.setdefault("follow_redirects", False)
                client = DatalogClient(host, int(port), **options)
                self._clients[endpoint] = client
            return client

    def refresh(self) -> Dict[str, Dict[str, Any]]:
        """Probe every endpoint and rebuild the role map.

        Returns ``{endpoint: {"role", "generation", "lag", ...}}`` with
        unreachable endpoints reported as ``{"role": "unreachable"}``.
        Called lazily on first use; call it again after fleet changes.
        """
        topology: Dict[str, Dict[str, Any]] = {}
        leader: Optional[str] = None
        followers: List[str] = []
        pending = list(self._endpoints)
        seen = set(pending)
        while pending:
            endpoint = pending.pop(0)
            try:
                stats = self._client(endpoint).stats()
            except (OSError, ProtocolError) as error:
                topology[endpoint] = {
                    "role": "unreachable",
                    "error": f"{type(error).__name__}: {error}",
                }
                continue
            replication = dict(stats.replication or {})
            role = replication.get("role", "leader")
            info = {"role": role, "generation": stats.generation}
            info.update(
                {
                    key: replication[key]
                    for key in ("lag", "leader", "connected", "subscribers")
                    if key in replication
                }
            )
            topology[endpoint] = info
            if role == "follower":
                followers.append(endpoint)
                # A follower names its leader: reach it even when the
                # caller only listed read replicas.
                named = replication.get("leader")
                if isinstance(named, str) and named and named not in seen:
                    seen.add(named)
                    pending.append(named)
            else:
                leader = endpoint
        with self._lock:
            self._leader = leader
            self._followers = followers
            self._dead = set()
            self._read_index = 0
        return topology

    def _ensure_topology(self) -> None:
        with self._lock:
            known = self._leader is not None or bool(self._followers)
        if not known:
            self.refresh()

    def _read_rotation(self) -> List[str]:
        """Followers round-robin, the leader last as the fallback."""
        with self._lock:
            readers = [f for f in self._followers if f not in self._dead]
            if readers:
                start = self._read_index % len(readers)
                self._read_index += 1
                readers = readers[start:] + readers[:start]
            rotation = list(readers)
            if self._leader is not None and self._leader not in rotation:
                rotation.append(self._leader)
        return rotation or list(self._endpoints)

    def _mark_dead(self, endpoint: str) -> None:
        with self._lock:
            self._dead.add(endpoint)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def query(
        self,
        pattern: str,
        strict: bool = False,
        witnesses: bool = False,
        page_size: Optional[int] = None,
    ) -> QueryResultPage:
        """Answer one pattern on some live reader (follower-first)."""
        self._ensure_topology()
        min_generation: Optional[int] = None
        if self.read_your_writes and self._last_write_generation > 0:
            min_generation = self._last_write_generation
        last_error: Optional[Exception] = None
        for endpoint in self._read_rotation():
            client = self._client(endpoint)
            try:
                return client.query(
                    pattern,
                    strict=strict,
                    witnesses=witnesses,
                    page_size=page_size,
                    min_generation=min_generation,
                    min_generation_timeout=(
                        self.min_generation_timeout
                        if min_generation is not None
                        else None
                    ),
                )
            except LagTimeoutError as error:
                # This reader is too far behind the bound; the next one —
                # ultimately the leader, which satisfies any bound its own
                # writes set — gets a chance.
                last_error = error
                continue
            except (OSError, ProtocolError) as error:
                self._mark_dead(endpoint)
                last_error = error
                continue
        assert last_error is not None
        raise last_error

    def query_batch(
        self, patterns: Iterable[str], strict: bool = False
    ) -> List[QueryResultPage]:
        """Answer a batch on one reader (one consistent snapshot)."""
        self._ensure_topology()
        patterns = list(patterns)
        last_error: Optional[Exception] = None
        for endpoint in self._read_rotation():
            try:
                return self._client(endpoint).query_batch(patterns, strict=strict)
            except (OSError, ProtocolError) as error:
                self._mark_dead(endpoint)
                last_error = error
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_facts(self, facts: FactsLike) -> AddFactsResponse:
        """Insert facts on the leader, following ``not_leader`` redirects."""
        self._ensure_topology()
        with self._lock:
            endpoint = self._leader or self._endpoints[0]
        for _hop in range(_MAX_REDIRECTS):
            try:
                response = self._client(endpoint).add_facts(facts)
            except NotLeaderError as error:
                if not error.leader or error.leader == endpoint:
                    raise
                endpoint = _endpoint_text(error.leader)
                continue
            with self._lock:
                self._leader = endpoint
                if response.generation is not None:
                    self._last_write_generation = max(
                        self._last_write_generation, response.generation
                    )
            return response
        raise ProtocolError(
            f"write followed {_MAX_REDIRECTS} not_leader redirects without "
            "reaching a leader; the fleet disagrees about its topology"
        )

    def add_fact(self, predicate: str, *values: str) -> AddFactsResponse:
        return self.add_facts([(predicate, values)])

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    @property
    def leader(self) -> Optional[str]:
        with self._lock:
            return self._leader

    @property
    def followers(self) -> List[str]:
        with self._lock:
            return list(self._followers)

    @property
    def last_write_generation(self) -> int:
        return self._last_write_generation

    def stats(self) -> Dict[str, ServerStats]:
        """Per-endpoint :class:`ServerStats` for every reachable node."""
        self._ensure_topology()
        results: Dict[str, ServerStats] = {}
        with self._lock:
            endpoints = list(
                dict.fromkeys(
                    self._endpoints
                    + self._followers
                    + ([self._leader] if self._leader else [])
                )
            )
        for endpoint in endpoints:
            try:
                results[endpoint] = self._client(endpoint).stats()
            except (OSError, ProtocolError):
                continue
        return results

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def __enter__(self) -> RoutingClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RoutingClient(leader={self._leader}, "
                f"followers={self._followers}, "
                f"last_write_generation={self._last_write_generation})"
            )
