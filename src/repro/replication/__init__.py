"""Leader/follower replication by generation shipping (ARCHITECTURE.md §12).

A :class:`~repro.engine.server.DatalogServer` is a *leader* the moment a
:class:`ReplicationHub` is attached to it (the TCP transport attaches one
automatically): every published generation is recorded as a base-fact
batch, and subscribers receive the stream over the ordinary v1 protocol —
a snapshot bootstrap first when they are new or too far behind (the same
record structure :mod:`repro.storage.snapshot` writes to disk), then one
``generation_frame`` per publish, with heartbeats while idle.

:class:`FollowerServer` is the read replica: a :class:`DatalogServer`
subclass that applies the stream through the session's incremental
maintenance, publishes the *leader's* generation numbers (leader and
follower agree fact-for-fact at equal generations), serves ``query`` /
``stats`` locally, and answers every write with the stable ``not_leader``
error carrying the leader's address.

:class:`RoutingClient` is the fleet-aware client: reads round-robin
across live followers, writes pinned to the leader (following
``not_leader`` redirects), optional read-your-writes via the query
``min_generation`` bound.  The CLI exposes it as ``repro route``.
"""

from repro.replication.follower import FollowerServer
from repro.replication.hub import DEFAULT_HEARTBEAT_SECONDS, ReplicationHub
from repro.replication.router import RoutingClient

__all__ = [
    "DEFAULT_HEARTBEAT_SECONDS",
    "FollowerServer",
    "ReplicationHub",
    "RoutingClient",
]
