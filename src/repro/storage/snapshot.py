"""Generation-keyed snapshots of a converged resident model.

A snapshot file (``snapshot-<generation 12 digits>.snap``) is a sequence
of the same CRC-checked frames the WAL uses (:mod:`repro.storage.wal`):

1. a **header** frame — ``format`` (:data:`SNAPSHOT_FORMAT`), the
   publishing ``generation``, the last committed WAL ``batch`` it covers,
   the ``program`` fingerprint (SHA-256 of the canonical program text),
   and row/fact counts for validation;
2. one or more **relation** frames — ``{"relation": name, "rows": [...]}``
   chunks of the interpretation's rows in insertion order (values as
   plain strings; the loader re-interns them);
3. one or more **base** frames — the session's base-fact log, the part of
   the model that is input rather than derivation (demand-mode slices
   re-materialise from it);
4. an **end** frame — ``{"end": true}``; its absence means the writer
   died mid-snapshot and the file is invalid.

Snapshots are written to a temp file and atomically renamed into place,
so a crash mid-checkpoint leaves at most a stray ``*.tmp``.  Loading
applies strict validation: any CRC/structure failure raises
:class:`~repro.errors.CorruptSnapshotError` naming the file and byte
offset; a future format version or a different program raises
:class:`~repro.errors.StorageError` — never a raw decode traceback.

Because a snapshot is only ever written at a *published fixpoint*, the
loader's output needs no evaluation: recovery inserts the rows and marks
every plan's version bookkeeping current (see
:meth:`repro.engine.fixpoint.CompiledFixpoint.assume_converged`).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import CorruptSnapshotError, StorageError
from repro.storage.wal import FrameDamage, encode_frame, iter_frames

#: Bumped whenever the frame layout or header contract changes; a loader
#: only accepts files whose header declares a version it knows.
SNAPSHOT_FORMAT = 1

_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{12})\.snap$")

#: Rows per relation/base frame: bounds frame size without materialising
#: the whole model in one JSON payload.
_CHUNK_ROWS = 25_000


def snapshot_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"snapshot-{generation:012d}.snap")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(generation, path)`` for every snapshot file, newest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _SNAPSHOT_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found, reverse=True)


def _chunks(rows: List[Any], size: int) -> Iterator[List[Any]]:
    for start in range(0, len(rows), size):
        yield rows[start:start + size]


def snapshot_records(
    generation: int,
    batch: int,
    program_fingerprint: str,
    relation_rows: Dict[str, List[Tuple[str, ...]]],
    base_facts: List[Tuple[str, Tuple[str, ...]]],
    fact_count: int,
) -> Iterator[Dict[str, Any]]:
    """Yield the records of one snapshot, in file order.

    This is the single source of the snapshot record structure.  Two
    consumers frame the same records differently: :func:`write_snapshot`
    CRC-frames them to disk, and the replication leader ships them as
    ``snapshot_frame`` messages when bootstrapping a follower over the
    wire.  Either way they are reassembled by :class:`SnapshotAssembler`.
    """
    yield {
        "format": SNAPSHOT_FORMAT,
        "generation": generation,
        "batch": batch,
        "program": program_fingerprint,
        "facts": fact_count,
        "base_facts": len(base_facts),
        "relations": {name: len(rows) for name, rows in relation_rows.items()},
    }
    for name in sorted(relation_rows):
        for chunk in _chunks(relation_rows[name], _CHUNK_ROWS):
            yield {"relation": name, "rows": [list(row) for row in chunk]}
    for chunk in _chunks(base_facts, _CHUNK_ROWS):
        yield {
            "base": [[predicate, list(values)] for predicate, values in chunk]
        }
    yield {"end": True}


def write_snapshot(
    directory: str,
    generation: int,
    batch: int,
    program_fingerprint: str,
    relation_rows: Dict[str, List[Tuple[str, ...]]],
    base_facts: List[Tuple[str, Tuple[str, ...]]],
    fact_count: int,
) -> str:
    """Serialize one converged model; returns the final path.

    ``relation_rows`` maps predicate -> rows (tuples of plain strings) in
    insertion order; ``fact_count`` is the interpretation's own count and
    is revalidated on load.
    """
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, generation)
    tmp_path = path + ".tmp"
    records = snapshot_records(
        generation,
        batch,
        program_fingerprint,
        relation_rows,
        base_facts,
        fact_count,
    )
    try:
        with open(tmp_path, "wb") as handle:
            for record in records:
                handle.write(_frame(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as error:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise StorageError(f"cannot write snapshot {path}: {error}") from error
    return path


def _frame(record: Dict[str, Any]) -> bytes:
    return encode_frame(
        json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    )


def read_header(path: str) -> Dict[str, Any]:
    """The header frame alone (cheap: snapshot selection and retention)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read(4 * 1024 * 1024)
    except OSError as error:
        raise StorageError(f"cannot read snapshot {path}: {error}") from error
    try:
        for _offset, record in iter_frames(data):
            return _validated_header(path, record)
    except FrameDamage as damage:
        raise CorruptSnapshotError(
            f"snapshot {path} is corrupt at byte {damage.offset}: {damage.detail}"
        ) from None
    raise CorruptSnapshotError(f"snapshot {path} is empty (no header frame)")


def _validated_header(path: str, record: Dict[str, Any]) -> Dict[str, Any]:
    declared = record.get("format")
    if declared != SNAPSHOT_FORMAT:
        raise StorageError(
            f"snapshot {path} declares format version {declared!r}; this "
            f"build reads only version {SNAPSHOT_FORMAT} — it was likely "
            "written by a newer library"
        )
    for field in ("generation", "batch", "facts", "base_facts"):
        if not isinstance(record.get(field), int):
            raise CorruptSnapshotError(
                f"snapshot {path} header lacks an integer {field!r} field"
            )
    if not isinstance(record.get("program"), str):
        raise CorruptSnapshotError(
            f"snapshot {path} header lacks a program fingerprint"
        )
    return record


class SnapshotAssembler:
    """Incrementally rebuild a model from snapshot records.

    The inverse of :func:`snapshot_records`, shared by the two transports
    of the snapshot structure: :func:`load_snapshot` feeds it records
    decoded from CRC frames on disk, and a replication follower feeds it
    records arriving as ``snapshot_frame`` messages during bootstrap.
    Every record passes through :meth:`feed`; :meth:`finish` validates
    completeness and the header's declared counts.  ``source`` names the
    artifact (a file path, or a leader address) in error messages, and
    ``where`` on :meth:`feed` localises damage (``"byte 512"`` on disk,
    ``"frame 7"`` on the wire).
    """

    def __init__(self, source: str, program_fingerprint: Optional[str] = None):
        self.source = source
        self._expected_fingerprint = program_fingerprint
        self.header: Optional[Dict[str, Any]] = None
        self.facts: List[Tuple[str, List[str]]] = []
        self.base_facts: List[Tuple[str, List[str]]] = []
        self.complete = False

    def feed(self, record: Dict[str, Any], where: str = "") -> None:
        at = f" at {where}" if where else ""
        if not isinstance(record, dict):
            raise CorruptSnapshotError(
                f"snapshot {self.source} has a non-object frame{at}"
            )
        if self.header is None:
            header = _validated_header(self.source, record)
            if (
                self._expected_fingerprint is not None
                and header["program"] != self._expected_fingerprint
            ):
                raise StorageError(
                    f"snapshot {self.source} was written for a different "
                    f"program (fingerprint {header['program'][:12]}..., "
                    f"expected {self._expected_fingerprint[:12]}...); wipe "
                    "the data directory or load it with the original program"
                )
            self.header = header
            return
        if self.complete:
            raise CorruptSnapshotError(
                f"snapshot {self.source} holds frames after its end marker"
                f"{f' ({where})' if where else ''}"
            )
        try:
            if "relation" in record:
                name = record["relation"]
                rows = record.get("rows")
                if not isinstance(name, str) or not isinstance(rows, list):
                    raise CorruptSnapshotError(
                        f"snapshot {self.source} has a malformed relation "
                        f"frame{at}"
                    )
                for row in rows:
                    self.facts.append((name, row))
            elif "base" in record:
                entries = record["base"]
                if not isinstance(entries, list):
                    raise CorruptSnapshotError(
                        f"snapshot {self.source} has a malformed base-fact "
                        f"frame{at}"
                    )
                for entry in entries:
                    self.base_facts.append((entry[0], entry[1]))
            elif record.get("end") is True:
                self.complete = True
            else:
                raise CorruptSnapshotError(
                    f"snapshot {self.source} has an unrecognised frame{at}"
                )
        except (IndexError, TypeError) as error:
            raise CorruptSnapshotError(
                f"snapshot {self.source} holds a structurally invalid "
                f"frame: {error}"
            ) from None

    def finish(
        self,
    ) -> Tuple[Dict[str, Any], List[Tuple[str, List[str]]], List[Tuple[str, List[str]]]]:
        """Validate completeness and counts; return the assembled model."""
        if self.header is None:
            raise CorruptSnapshotError(
                f"snapshot {self.source} is empty (no header frame)"
            )
        if not self.complete:
            raise CorruptSnapshotError(
                f"snapshot {self.source} is truncated (missing end marker) — "
                "the checkpoint writer died mid-file"
            )
        if len(self.facts) != self.header["facts"]:
            raise CorruptSnapshotError(
                f"snapshot {self.source} holds {len(self.facts)} facts but "
                f"its header declares {self.header['facts']}"
            )
        if len(self.base_facts) != self.header["base_facts"]:
            raise CorruptSnapshotError(
                f"snapshot {self.source} holds {len(self.base_facts)} base "
                f"facts but its header declares {self.header['base_facts']}"
            )
        return self.header, self.facts, self.base_facts


def load_snapshot(
    path: str, program_fingerprint: Optional[str] = None
) -> Tuple[Dict[str, Any], List[Tuple[str, List[str]]], List[Tuple[str, List[str]]]]:
    """Fully load and validate one snapshot.

    Returns ``(header, facts, base_facts)`` where ``facts`` is every
    ``(predicate, row)`` of the serialized interpretation in insertion
    order and ``base_facts`` is the base-fact log.  Raises
    :class:`~repro.errors.CorruptSnapshotError` on structural damage and
    :class:`~repro.errors.StorageError` on a format-version or program
    mismatch, always naming the file.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise StorageError(f"cannot read snapshot {path}: {error}") from error
    assembler = SnapshotAssembler(path, program_fingerprint)
    try:
        for offset, record in iter_frames(data):
            assembler.feed(record, where=f"byte {offset}")
    except FrameDamage as damage:
        raise CorruptSnapshotError(
            f"snapshot {path} is corrupt at byte {damage.offset}: {damage.detail}"
        ) from None
    return assembler.finish()


def prune_snapshots(directory: str, keep: int) -> List[str]:
    """Delete all but the ``keep`` newest snapshot files (plus stray tmps)."""
    removed = []
    for _generation, path in list_snapshots(directory)[max(1, keep):]:
        try:
            os.remove(path)
        except OSError:
            continue
        removed.append(path)
    try:
        for name in os.listdir(directory):
            if name.endswith(".snap.tmp"):
                try:
                    os.remove(os.path.join(directory, name))
                except OSError:
                    pass
    except FileNotFoundError:
        pass
    return removed
