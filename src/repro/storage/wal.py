"""Write-ahead fact log: CRC-framed JSON records in rotating segments.

The WAL is the durability primitive under :class:`repro.storage.DurableStore`.
Every record travels in one *frame*::

    +----------------+----------------+------------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (length bytes) |
    +----------------+----------------+------------------------+

where the payload is compact UTF-8 JSON and the CRC covers the payload
bytes.  Records are appended sequentially to numbered segment files
(``wal-00000001.log``, ``wal-00000002.log``, ...); a segment is rotated
once it crosses ``segment_max_bytes``, and retention (driven by the store
after a checkpoint) deletes whole closed segments, never parts of one.

Two record types exist (see ARCHITECTURE.md §11 for the commit protocol):

``{"t": "intent", "batch": N, "facts": [[pred, [v, ...]], ...]}``
    Appended *before* a batch touches the resident model.
``{"t": "commit", "batch": N, "applied": K, "generation": G}``
    Appended (and fsynced) only after incremental maintenance converged.
    ``applied`` counts how many of the intent's facts were actually
    inserted — smaller than the intent length exactly when a fact was
    rejected mid-batch and the accepted prefix was kept.

Damage policy on read (:func:`scan_segments`): a torn or CRC-mismatching
frame at the very tail of the *final* segment is the signature of a crash
mid-append — it is physically truncated away and reported as a warning.
The same damage anywhere else destroys committed history and raises
:class:`~repro.errors.CorruptLogError` naming the file and byte offset.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from typing import Any, Callable, Dict, IO, List, Optional, Tuple

from repro.errors import CorruptLogError, StorageError

_FRAME_HEADER = struct.Struct(">II")

#: Frames above this are rejected on read as structurally impossible (the
#: writer chunks far below it); it turns a corrupted length field into a
#: clean typed error instead of a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_SEGMENT_PATTERN = re.compile(r"^wal-(\d{8})\.log$")

DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """One length-prefixed, CRC32-checked frame around ``payload``."""
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def encode_record(record: Dict[str, Any]) -> bytes:
    return encode_frame(
        json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    )


class FrameDamage(Exception):
    """Internal: a frame could not be read (torn tail or corruption).

    ``kind`` is ``"torn"`` (the file ends mid-frame) or ``"corrupt"``
    (full-length frame whose CRC or JSON does not check out); ``at_tail``
    says whether nothing follows the bad frame — the only position where
    damage is repairable by truncation.
    """

    def __init__(self, kind: str, offset: int, at_tail: bool, detail: str):
        super().__init__(detail)
        self.kind = kind
        self.offset = offset
        self.at_tail = at_tail
        self.detail = detail


def iter_frames(data: bytes):
    """Yield ``(offset, payload_dict)`` for every frame in ``data``.

    Raises :class:`FrameDamage` at the first unreadable frame; everything
    yielded before it is intact.
    """
    offset, size = 0, len(data)
    while offset < size:
        if size - offset < _FRAME_HEADER.size:
            raise FrameDamage(
                "torn", offset, True,
                f"{size - offset} trailing bytes are shorter than a frame header",
            )
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            raise FrameDamage(
                "corrupt", offset, False,
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap "
                "(corrupted length field)",
            )
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > size:
            raise FrameDamage(
                "torn", offset, True,
                f"frame claims {length} payload bytes but only "
                f"{size - start} remain",
            )
        payload = data[start:end]
        at_tail = end == size
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise FrameDamage(
                "corrupt", offset, at_tail, "payload CRC mismatch"
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise FrameDamage(
                "corrupt", offset, at_tail,
                "payload is not valid JSON despite a matching CRC",
            ) from None
        if not isinstance(record, dict):
            raise FrameDamage(
                "corrupt", offset, at_tail, "payload is not a JSON object"
            )
        yield offset, record
        offset = end


def segment_paths(directory: str) -> List[str]:
    """The directory's WAL segments, oldest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    matched = [name for name in names if _SEGMENT_PATTERN.match(name)]
    return [os.path.join(directory, name) for name in sorted(matched)]


def _segment_index(path: str) -> int:
    match = _SEGMENT_PATTERN.match(os.path.basename(path))
    assert match is not None
    return int(match.group(1))


def scan_segments(
    directory: str,
    on_record: Callable[[str, int, Dict[str, Any]], None],
    warnings: Optional[List[str]] = None,
) -> Dict[str, int]:
    """Read every record in every segment, applying the damage policy.

    ``on_record(path, offset, record)`` is called for each intact record
    in log order.  A torn/corrupt tail of the final segment is physically
    truncated (crash mid-append); damage anywhere else raises
    :class:`~repro.errors.CorruptLogError`.  Returns ``{path: last batch
    id}`` for segments that contain batch-stamped records (the retention
    bookkeeping the store needs).
    """
    paths = segment_paths(directory)
    last_batch: Dict[str, int] = {}
    for position, path in enumerate(paths):
        final_segment = position == len(paths) - 1
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            raise StorageError(f"cannot read WAL segment {path}: {error}") from error
        try:
            for offset, record in iter_frames(data):
                batch = record.get("batch")
                if isinstance(batch, int):
                    last_batch[path] = batch
                on_record(path, offset, record)
        except FrameDamage as damage:
            if not (final_segment and damage.at_tail):
                raise CorruptLogError(
                    f"WAL segment {path} is corrupt at byte {damage.offset}: "
                    f"{damage.detail} (not at the log tail — committed "
                    "history may be lost; refusing to recover)"
                ) from None
            dropped = len(data) - damage.offset
            try:
                with open(path, "r+b") as handle:
                    handle.truncate(damage.offset)
            except OSError as error:
                raise StorageError(
                    f"cannot truncate damaged tail of WAL segment {path} "
                    f"at byte {damage.offset}: {error}"
                ) from error
            if warnings is not None:
                warnings.append(
                    f"truncated {dropped} damaged trailing bytes "
                    f"({damage.kind} frame) from {os.path.basename(path)} "
                    f"at byte {damage.offset} — crash mid-append"
                )
    return last_batch


class WriteAheadLog:
    """Appender over a directory of rotating CRC-framed segments.

    Not thread-safe: the store serializes appends behind the session's
    single-writer discipline.
    """

    def __init__(
        self,
        directory: str,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        fsync: bool = True,
    ):
        self.directory = directory
        self.segment_max_bytes = max(1024, int(segment_max_bytes))
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        existing = segment_paths(directory)
        self._next_index = (_segment_index(existing[-1]) + 1) if existing else 1
        self._handle: Optional[IO[bytes]] = None
        self._current_path: Optional[str] = None
        self._current_size = 0
        self.segment_last_batch: Dict[str, int] = {}
        self.records_appended = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_segment(self) -> None:
        path = os.path.join(self.directory, f"wal-{self._next_index:08d}.log")
        self._next_index += 1
        try:
            self._handle = open(path, "ab")
        except OSError as error:
            raise StorageError(f"cannot open WAL segment {path}: {error}") from error
        self._current_path = path
        self._current_size = 0

    def rotate(self) -> None:
        """Close the current segment; the next append opens a fresh one."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._current_path = None
            self._current_size = 0

    def append(self, record: Dict[str, Any], sync: bool = False) -> None:
        """Append one record; with ``sync``, fsync it (and all before it)."""
        frame = encode_record(record)
        if self._handle is None or (
            self._current_size > 0
            and self._current_size + len(frame) > self.segment_max_bytes
        ):
            self.rotate()
            self._open_segment()
        assert self._handle is not None and self._current_path is not None
        try:
            self._handle.write(frame)
            self._handle.flush()
            if sync and self.fsync:
                os.fsync(self._handle.fileno())
                self.syncs += 1
        except OSError as error:
            raise StorageError(
                f"cannot append to WAL segment {self._current_path}: {error}"
            ) from error
        self._current_size += len(frame)
        self.records_appended += 1
        batch = record.get("batch")
        if isinstance(batch, int):
            self.segment_last_batch[self._current_path] = batch

    # ------------------------------------------------------------------
    # Introspection and retention
    # ------------------------------------------------------------------
    @property
    def current_path(self) -> Optional[str]:
        return self._current_path

    def segments(self) -> List[str]:
        return segment_paths(self.directory)

    def total_bytes(self) -> int:
        total = 0
        for path in self.segments():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def closed_segments(self) -> List[str]:
        return [path for path in self.segments() if path != self._current_path]

    def prune(self, up_to_batch: int) -> List[str]:
        """Delete closed segments whose every record is ``<= up_to_batch``.

        Segments with unknown bookkeeping (no batch-stamped record seen)
        are kept — retention never guesses.
        """
        removed = []
        for path in self.closed_segments():
            last = self.segment_last_batch.get(path)
            if last is not None and last <= up_to_batch:
                try:
                    os.remove(path)
                except OSError:
                    continue
                self.segment_last_batch.pop(path, None)
                removed.append(path)
        return removed

    def close(self) -> None:
        self.rotate()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, {len(self.segments())} segments, "
            f"{self.records_appended} records appended)"
        )
