"""Durable storage: write-ahead fact log, snapshots, crash recovery.

The engine is log-structured end to end — relations append, sessions keep
a base-fact log, the server publishes atomic generations — and this
package makes that structure durable.  :func:`open_session` is the entry
point::

    from repro import open_session

    session = open_session(program, data_dir="./state")
    session.add_facts({"r": ["acgt"]})   # durable before acknowledged
    session.close()                      # flush + final snapshot

    session = open_session(program, data_dir="./state")  # instant restart

See ``docs/DURABILITY.md`` for the operational guide and
ARCHITECTURE.md §11 for the WAL format, the commit protocol and the
recovery sequence.
"""

from repro.errors import CorruptLogError, CorruptSnapshotError, StorageError
from repro.storage.snapshot import (
    SNAPSHOT_FORMAT,
    list_snapshots,
    load_snapshot,
    read_header,
    write_snapshot,
)
from repro.storage.store import (
    DurableStore,
    RecoveryReport,
    STORE_FORMAT,
    open_session,
    program_fingerprint,
)
from repro.storage.wal import WriteAheadLog

__all__ = [
    "CorruptLogError",
    "CorruptSnapshotError",
    "DurableStore",
    "RecoveryReport",
    "SNAPSHOT_FORMAT",
    "STORE_FORMAT",
    "StorageError",
    "WriteAheadLog",
    "list_snapshots",
    "load_snapshot",
    "open_session",
    "program_fingerprint",
    "read_header",
    "write_snapshot",
]
