"""The durable storage engine: WAL + snapshots + the recovery driver.

:class:`DurableStore` owns one data directory::

    data_dir/
      meta.json                    # storage format + program fingerprint
      wal/wal-00000001.log ...     # CRC-framed intent/commit records
      snapshots/snapshot-*.snap    # generation-keyed converged models

and implements the persistence hook :class:`~repro.engine.session.
DatalogSession` calls around every ``add_facts`` batch (the commit
protocol — intent durable *before* the model changes, commit durable only
*after* incremental maintenance converged — is what moves the meaning of
"ingested" from "in memory" to "durable, then converged, then
published").  :func:`open_session` is the recovery driver and the public
entry point: it loads the newest valid snapshot, replays only the WAL
tail through the session's normal incremental maintenance path, and
returns a serving session with the store attached.

Checkpoints are *captured* synchronously at a commit point (pinning
zero-copy :class:`~repro.database.relation.RelationDelta` windows over
the append-only relations — no rows are copied and no lock is held while
serializing) and *written* by a single background thread; retention then
keeps the ``snapshots_kept`` newest snapshots plus every WAL segment
newer than the oldest kept snapshot, so recovery can always fall back one
snapshot without losing batches.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.database.relation import RelationDelta
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.session import DatalogSession
from repro.errors import CorruptLogError, CorruptSnapshotError, StorageError
from repro.language.clauses import Program
from repro.language.parser import parse_program
from repro.sequences import Sequence
from repro.storage import snapshot as snapshot_io
from repro.storage import wal as wal_io

#: Bumped when the data-dir layout itself changes shape.
STORE_FORMAT = 1

DEFAULT_CHECKPOINT_ROWS = 100_000
DEFAULT_CHECKPOINT_SEGMENTS = 4
DEFAULT_SNAPSHOTS_KEPT = 2


def program_fingerprint(program: Program) -> str:
    """SHA-256 of the canonical program text (clause order included)."""
    return hashlib.sha256(str(program).encode("utf-8")).hexdigest()


@dataclass
class RecoveryReport:
    """What one :func:`open_session` recovery did (see ``stats()``)."""

    snapshot_generation: Optional[int] = None
    snapshot_path: Optional[str] = None
    snapshot_facts: int = 0
    replayed_batches: int = 0
    replayed_facts: int = 0
    dropped_batches: int = 0
    skipped_snapshots: int = 0
    truncated: bool = False
    warnings: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def cold_start(self) -> bool:
        return self.snapshot_generation is None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_generation": self.snapshot_generation,
            "snapshot_path": self.snapshot_path,
            "snapshot_facts": self.snapshot_facts,
            "replayed_batches": self.replayed_batches,
            "replayed_facts": self.replayed_facts,
            "dropped_batches": self.dropped_batches,
            "skipped_snapshots": self.skipped_snapshots,
            "truncated": self.truncated,
            "warnings": list(self.warnings),
            "cold_start": self.cold_start,
            "elapsed_seconds": self.elapsed_seconds,
        }


class _CheckpointJob:
    """A consistent model capture, pinned at a commit point."""

    __slots__ = ("generation", "batch", "views", "base_facts", "fact_count")

    def __init__(self, generation, batch, views, base_facts, fact_count):
        self.generation = generation
        self.batch = batch
        self.views = views
        self.base_facts = base_facts
        self.fact_count = fact_count


def _wire_values(values) -> List[str]:
    return [
        value.text if isinstance(value, Sequence) else str(value)
        for value in values
    ]


class DurableStore:
    """One data directory's WAL, snapshots, counters and retention.

    Built and attached by :func:`open_session`; sessions drive it through
    the hook methods (:meth:`begin_batch` / :meth:`commit_batch`) and the
    lifecycle methods (:meth:`checkpoint`, :meth:`close`).  Appends are
    serialized by the session's single-writer discipline (the server's
    writer lock when wrapped); the internal lock only coordinates the
    background checkpoint writer with the commit path.
    """

    def __init__(
        self,
        data_dir: str,
        program: Program,
        segment_max_bytes: int = wal_io.DEFAULT_SEGMENT_MAX_BYTES,
        checkpoint_rows: int = DEFAULT_CHECKPOINT_ROWS,
        checkpoint_segments: int = DEFAULT_CHECKPOINT_SEGMENTS,
        snapshots_kept: int = DEFAULT_SNAPSHOTS_KEPT,
        fsync: bool = True,
        background_checkpoints: bool = True,
    ):
        self.data_dir = os.path.abspath(data_dir)
        self.program = program
        self.fingerprint = program_fingerprint(program)
        self.checkpoint_rows = max(1, int(checkpoint_rows))
        self.checkpoint_segments = max(1, int(checkpoint_segments))
        self.snapshots_kept = max(1, int(snapshots_kept))
        self.background_checkpoints = background_checkpoints
        self.wal_dir = os.path.join(self.data_dir, "wal")
        self.snapshot_dir = os.path.join(self.data_dir, "snapshots")
        try:
            os.makedirs(self.wal_dir, exist_ok=True)
            os.makedirs(self.snapshot_dir, exist_ok=True)
        except OSError as error:
            raise StorageError(
                f"cannot create data directory {self.data_dir}: {error}"
            ) from error
        self._check_meta()
        self._wal = wal_io.WriteAheadLog(
            self.wal_dir, segment_max_bytes=segment_max_bytes, fsync=fsync
        )
        self._session: Optional[DatalogSession] = None
        self._lock = threading.Lock()
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._closed = False
        # Counters the recovery driver seeds before attach.
        self.generation = 0
        self._next_batch = 1
        self._last_snapshot_generation: Optional[int] = None
        self._last_snapshot_batch = 0
        self._last_snapshot_path: Optional[str] = None
        self._last_committed_batch = 0
        self._rows_since_snapshot = 0
        self._commits_since_snapshot = 0
        self._commits = 0
        self._intents = 0
        self._checkpoints_written = 0
        self._last_checkpoint_error: Optional[str] = None
        self.recovery: Optional[RecoveryReport] = None

    # ------------------------------------------------------------------
    # Directory metadata
    # ------------------------------------------------------------------
    def _check_meta(self) -> None:
        path = os.path.join(self.data_dir, "meta.json")
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError) as error:
                raise StorageError(
                    f"cannot read storage metadata {path}: {error}"
                ) from error
            if not isinstance(meta, dict) or meta.get("format") != STORE_FORMAT:
                raise StorageError(
                    f"storage metadata {path} declares format "
                    f"{meta.get('format') if isinstance(meta, dict) else meta!r}; "
                    f"this build reads only format {STORE_FORMAT}"
                )
            if meta.get("program") != self.fingerprint:
                raise StorageError(
                    f"data directory {self.data_dir} was created for a "
                    "different program (fingerprint "
                    f"{str(meta.get('program'))[:12]}..., expected "
                    f"{self.fingerprint[:12]}...); wipe it or open it with "
                    "the original program"
                )
            return
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"format": STORE_FORMAT, "program": self.fingerprint}, handle)
            os.replace(tmp, path)
        except OSError as error:
            raise StorageError(
                f"cannot write storage metadata {path}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Session attachment
    # ------------------------------------------------------------------
    def attach_session(self, session: DatalogSession) -> None:
        self._session = session

    @property
    def attached(self) -> bool:
        return self._session is not None

    # ------------------------------------------------------------------
    # The persistence hook (called by DatalogSession.add_facts)
    # ------------------------------------------------------------------
    def begin_batch(self, pending: List[Tuple[str, Tuple]]) -> int:
        """Make the batch's intent durable; returns its batch id.

        Written (and flushed) *before* the first fact touches the resident
        model — a crash after this point but before the commit record
        leaves an intent-without-commit tail that recovery drops, exactly
        matching the fact that the caller was never acknowledged.
        """
        self._require_open()
        batch = self._next_batch
        self._next_batch += 1
        self._wal.append(
            {
                "t": "intent",
                "batch": batch,
                "facts": [
                    [predicate, _wire_values(values)]
                    for predicate, values in pending
                ],
            }
        )
        self._intents += 1
        return batch

    def commit_batch(self, batch: int, applied: int, facts_added: int) -> None:
        """Mark a batch committed (fsynced) after maintenance converged.

        ``applied`` is how many of the intent's facts were inserted (the
        accepted prefix on a mid-batch rejection); ``facts_added`` is the
        interpretation's growth, which advances the generation counter on
        exactly the same condition the server publishes a new snapshot.
        """
        self._require_open()
        with self._lock:
            if facts_added > 0:
                self.generation += 1
            self._wal.append(
                {
                    "t": "commit",
                    "batch": batch,
                    "applied": applied,
                    "generation": self.generation,
                },
                sync=True,
            )
            self._commits += 1
            self._last_committed_batch = batch
            self._rows_since_snapshot += facts_added
            self._commits_since_snapshot += 1
            job = self._maybe_capture_locked()
        if job is not None:
            self._start_checkpoint(job)

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"the durable store for {self.data_dir} is closed"
            )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _capture_locked(self) -> _CheckpointJob:
        assert self._session is not None
        interpretation = self._session._core.interpretation
        views = {}
        for predicate in interpretation.predicates():
            relation = interpretation.relation(predicate)
            views[predicate] = RelationDelta(relation, 0, len(relation))
        return _CheckpointJob(
            generation=self.generation,
            batch=self._last_committed_batch,
            views=views,
            base_facts=list(self._session._base_facts),
            fact_count=interpretation.fact_count(),
        )

    def _maybe_capture_locked(self) -> Optional[_CheckpointJob]:
        # A snapshot must be a converged fixpoint: an unmaterialised lazy
        # session (base facts only) or a poisoned one is never captured —
        # the WAL alone recovers those.
        if not self.background_checkpoints or self._session is None:
            return None
        if not self._session._materialized or self._session.poisoned:
            return None
        if self._checkpoint_thread is not None and self._checkpoint_thread.is_alive():
            return None
        due = (
            self._rows_since_snapshot >= self.checkpoint_rows
            or len(self._wal.closed_segments()) >= self.checkpoint_segments
        )
        if not due:
            return None
        job = self._capture_locked()
        self._rows_since_snapshot = 0
        self._commits_since_snapshot = 0
        return job

    def _start_checkpoint(self, job: _CheckpointJob) -> None:
        thread = threading.Thread(
            target=self._write_checkpoint,
            args=(job,),
            name="repro-storage-checkpoint",
            daemon=True,
        )
        self._checkpoint_thread = thread
        thread.start()

    def _write_checkpoint(self, job: _CheckpointJob) -> Optional[str]:
        """Serialize one captured model; safe off-thread (views are pinned)."""
        try:
            relation_rows = {
                predicate: [
                    tuple(_wire_values(row)) for row in view
                ]
                for predicate, view in job.views.items()
            }
            base_facts = [
                (predicate, tuple(_wire_values(values)))
                for predicate, values in job.base_facts
            ]
            path = snapshot_io.write_snapshot(
                self.snapshot_dir,
                generation=job.generation,
                batch=job.batch,
                program_fingerprint=self.fingerprint,
                relation_rows=relation_rows,
                base_facts=base_facts,
                fact_count=job.fact_count,
            )
        except Exception as error:  # surfaced through stats, never fatal
            with self._lock:
                self._last_checkpoint_error = f"{type(error).__name__}: {error}"
            return None
        with self._lock:
            self._checkpoints_written += 1
            self._last_checkpoint_error = None
            if (
                self._last_snapshot_generation is None
                or job.generation >= self._last_snapshot_generation
            ):
                self._last_snapshot_generation = job.generation
                self._last_snapshot_batch = job.batch
                self._last_snapshot_path = path
            self._retain_locked()
        return path

    def _retain_locked(self) -> None:
        """Keep the newest snapshots and every WAL segment they may need."""
        snapshot_io.prune_snapshots(self.snapshot_dir, self.snapshots_kept)
        kept = snapshot_io.list_snapshots(self.snapshot_dir)
        if not kept:
            return
        oldest_kept_batch = None
        for _generation, path in kept:
            try:
                header = snapshot_io.read_header(path)
            except StorageError:
                return  # never prune the log under questionable snapshots
            batch = header["batch"]
            if oldest_kept_batch is None or batch < oldest_kept_batch:
                oldest_kept_batch = batch
        if oldest_kept_batch is not None:
            self._wal.prune(oldest_kept_batch)

    def checkpoint(self) -> str:
        """Write a snapshot of the current converged model, synchronously.

        Must not race ``add_facts`` — callers either own the session
        (CLI ``snapshot``) or hold the server's writer lock
        (:meth:`~repro.engine.server.DatalogServer.checkpoint`).
        """
        self._require_open()
        if self._session is None:
            raise StorageError("no session is attached to this store")
        self._session.materialize()  # a snapshot is always a full fixpoint
        self._join_checkpoint_thread()
        with self._lock:
            job = self._capture_locked()
            self._rows_since_snapshot = 0
            self._commits_since_snapshot = 0
        path = self._write_checkpoint(job)
        if path is None:
            raise StorageError(
                f"checkpoint failed: {self._last_checkpoint_error}"
            )
        return path

    def _join_checkpoint_thread(self, timeout: float = 60.0) -> None:
        thread = self._checkpoint_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        self._checkpoint_thread = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, final_snapshot: bool = True) -> None:
        """Flush the WAL and (by default) write a final snapshot.

        The graceful-shutdown path: after this, recovery is a pure
        snapshot load with an empty WAL tail.  A poisoned session is
        never snapshotted — its model is a partial fixpoint.
        """
        if self._closed:
            return
        self._join_checkpoint_thread()
        session = self._session
        if (
            final_snapshot
            and session is not None
            and not session.poisoned
            and session._materialized
            and (self._commits_since_snapshot > 0
                 or self._last_snapshot_generation is None)
        ):
            try:
                self.checkpoint()
            except StorageError:
                pass  # shutting down: the WAL alone still recovers everything
        self._closed = True
        self._wal.close()

    def abandon(self) -> None:
        """Drop file handles without flushing state (crash simulation)."""
        self._closed = True
        self._join_checkpoint_thread(timeout=5.0)
        self._wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Durability counters for ``session.stats()["durability"]``."""
        with self._lock:
            segments = self._wal.segments()
            stats: Dict[str, Any] = {
                "data_dir": self.data_dir,
                "generation": self.generation,
                "wal": {
                    "segments": len(segments),
                    "bytes": self._wal.total_bytes(),
                    "intents": self._intents,
                    "commits": self._commits,
                    "syncs": self._wal.syncs,
                    "last_batch": self._last_committed_batch,
                },
                "snapshot": {
                    "generation": self._last_snapshot_generation,
                    "batch": self._last_snapshot_batch,
                    "path": self._last_snapshot_path,
                    "count": len(snapshot_io.list_snapshots(self.snapshot_dir)),
                    "checkpoints_written": self._checkpoints_written,
                    "rows_since": self._rows_since_snapshot,
                    "commits_since": self._commits_since_snapshot,
                    "last_error": self._last_checkpoint_error,
                },
            }
        if self.recovery is not None:
            stats["recovery"] = self.recovery.as_dict()
        return stats

    def __repr__(self) -> str:
        return (
            f"DurableStore({self.data_dir!r}, generation={self.generation}, "
            f"last_batch={self._last_committed_batch})"
        )


# ----------------------------------------------------------------------
# The recovery driver
# ----------------------------------------------------------------------
def open_session(
    program: Union[str, Program],
    data_dir: str,
    database=None,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers=None,
    prepared_cache_size: int = 128,
    demand_cache_size: int = 32,
    lazy: bool = False,
    workers: Optional[int] = None,
    parallel_mode: str = "auto",
    use_kernels: Optional[bool] = None,
    storage_options: Optional[Dict[str, Any]] = None,
) -> DatalogSession:
    """Open (or create) a durable session backed by ``data_dir``.

    The recovery sequence (ARCHITECTURE.md §11):

    1. validate ``meta.json`` (format + program fingerprint);
    2. load the newest *valid* snapshot — a corrupt one is skipped with a
       warning and the next-older tried (retention keeps the WAL segments
       that older snapshot needs); the restored model is marked converged,
       so no fixpoint work is re-done for it;
    3. replay the WAL tail: every committed batch newer than the snapshot
       goes through the session's normal incremental maintenance path, in
       commit order; intent-without-commit tails (crash mid-batch — the
       caller was never acknowledged) are dropped; a torn/corrupt final
       frame is truncated with a warning, damage anywhere else raises
       :class:`~repro.errors.CorruptLogError`;
    4. attach the store: future ``add_facts`` calls run the intent/commit
       protocol, and background checkpoints resume.

    ``database`` (optional) is ingested as an ordinary durable batch
    after recovery — on a restart its facts are already present and the
    batch is absorbed without advancing the generation.  The recovered
    session is fact-for-fact identical to one that never crashed
    (``tests/test_properties.py`` checks this property on randomized
    crash points).
    """
    started = time.perf_counter()
    program = parse_program(program) if isinstance(program, str) else program
    program.validate()
    options = dict(storage_options or {})
    store = DurableStore(data_dir, program, **options)
    report = RecoveryReport()

    session = DatalogSession(
        program,
        limits=limits,
        transducers=transducers,
        prepared_cache_size=prepared_cache_size,
        demand_cache_size=demand_cache_size,
        lazy=True,  # recovery controls materialisation itself
        workers=workers,
        parallel_mode=parallel_mode,
        use_kernels=use_kernels,
    )
    try:
        _recover_into(store, session, report)
    except Exception:
        session.close()
        raise
    report.elapsed_seconds = time.perf_counter() - started
    store.recovery = report

    store.attach_session(session)
    session.attach_storage(store)
    if not lazy:
        session.materialize()
    if database is not None:
        session.add_facts(database)
    return session


def _recover_into(
    store: DurableStore, session: DatalogSession, report: RecoveryReport
) -> None:
    # --- 2. newest valid snapshot -------------------------------------
    header = None
    for generation, path in snapshot_io.list_snapshots(store.snapshot_dir):
        try:
            header, facts, base_facts = snapshot_io.load_snapshot(
                path, store.fingerprint
            )
        except CorruptSnapshotError as error:
            report.skipped_snapshots += 1
            report.warnings.append(f"skipped corrupt snapshot: {error}")
            continue
        session.restore_state(facts, base_facts)
        report.snapshot_generation = header["generation"]
        report.snapshot_path = path
        report.snapshot_facts = header["facts"]
        store.generation = header["generation"]
        store._last_snapshot_generation = header["generation"]
        store._last_snapshot_batch = header["batch"]
        store._last_snapshot_path = path
        store._next_batch = header["batch"] + 1
        store._last_committed_batch = header["batch"]
        break

    snapshot_batch = store._last_snapshot_batch

    # --- 3. replay the WAL tail ---------------------------------------
    intents: Dict[int, List] = {}
    committed: List[Tuple[int, List, int, int]] = []
    max_batch = [snapshot_batch]

    def on_record(path: str, offset: int, record: Dict[str, Any]) -> None:
        kind = record.get("t")
        batch = record.get("batch")
        if not isinstance(batch, int):
            raise CorruptLogError(
                f"WAL segment {path} holds a record without a batch id "
                f"at byte {offset}"
            )
        max_batch[0] = max(max_batch[0], batch)
        if kind == "intent":
            intents[batch] = record.get("facts", [])
        elif kind == "commit":
            if batch <= snapshot_batch:
                intents.pop(batch, None)
                return  # already inside the snapshot
            facts = intents.pop(batch, None)
            if facts is None:
                raise CorruptLogError(
                    f"WAL segment {path} commits batch {batch} at byte "
                    f"{offset} but its intent record is missing — a "
                    "segment was lost"
                )
            committed.append(
                (
                    batch,
                    facts,
                    record.get("applied", len(facts)),
                    record.get("generation", store.generation),
                )
            )
        else:
            raise CorruptLogError(
                f"WAL segment {path} holds an unknown record type "
                f"{kind!r} at byte {offset}"
            )

    last_batch_by_segment = wal_io.scan_segments(
        store.wal_dir, on_record, report.warnings
    )
    store._wal.segment_last_batch.update(last_batch_by_segment)
    report.truncated = any("truncated" in w for w in report.warnings)

    # Every batch in ``committed`` converged before the crash, and the
    # program is monotone, so replaying their accepted prefixes as one
    # combined maintenance run reaches the same fixpoint as replaying
    # them batch by batch — while paying the per-run sweep overhead
    # (delta index builds over the restored model) once instead of once
    # per batch.
    if committed:
        entries = [
            (predicate, tuple(values))
            for batch, facts, applied, generation in committed
            for predicate, values in facts[:applied]
        ]
        try:
            maintenance = session.add_facts(entries)
        except Exception as error:
            batches = ", ".join(str(batch) for batch, *_ in committed)
            raise StorageError(
                f"recovery replay failed on committed batches {batches}: "
                f"{type(error).__name__}: {error}"
            ) from error
        report.replayed_batches = len(committed)
        report.replayed_facts = maintenance.base_facts_added
        store.generation = max(
            store.generation, *(generation for *_, generation in committed)
        )
        store._last_committed_batch = committed[-1][0]

    report.dropped_batches = len(intents)
    for batch in sorted(intents):
        report.warnings.append(
            f"dropped uncommitted batch {batch} (crash mid-batch; the "
            "writer was never acknowledged)"
        )
    store._next_batch = max_batch[0] + 1
    store._rows_since_snapshot = (
        session.fact_count() - report.snapshot_facts
        if report.snapshot_generation is not None
        else session.fact_count()
    )
