"""Text-database application layer (the paper's second motivating domain).

The abstract names text databases alongside genome databases as the target
applications of Sequence Datalog.  This package provides the classic text
queries as Sequence Datalog programs plus a corpus-level facade:

* :mod:`~repro.text.programs` -- motif occurrences, shared substrings
  across documents, palindromic substrings, tandem repeats and full-document
  repeats (Example 1.5), all expressed with structural recursion and indexed
  terms (no construction, hence inside the PTIME fragment of Theorem 3);
* :mod:`~repro.text.api` -- :class:`~repro.text.api.TextCorpus`, which owns
  a set of documents and runs the programs with convenient result shapes.
"""

from repro.text.api import TextCorpus
from repro.text.programs import (
    motif_program,
    palindrome_program,
    repeat_program,
    shared_substring_program,
    tandem_repeat_program,
)

__all__ = [
    "TextCorpus",
    "motif_program",
    "palindrome_program",
    "repeat_program",
    "shared_substring_program",
    "tandem_repeat_program",
]
