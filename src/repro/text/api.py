"""A corpus-level facade over the text-database programs.

:class:`TextCorpus` owns a set of documents (the ``doc`` relation) and runs
the programs of :mod:`repro.text.programs`, reshaping the relational answers
into the dictionaries a text application wants.  Every query goes through
the real fixpoint engine; the only plain-Python work is converting the
suffix-shaped position answers back into integers (the extended relational
model stores sequences, not numbers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.database.database import SequenceDatabase
from repro.engine.fixpoint import compute_least_fixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.query import evaluate_query
from repro.sequences import as_sequence
from repro.text.programs import (
    motif_program,
    palindrome_program,
    repeat_program,
    shared_substring_program,
    tandem_repeat_program,
)

#: Text queries are non-constructive, so the domain never grows; the limits
#: only guard against very large corpora fed to the quadratic-ish programs.
_TEXT_LIMITS = EvaluationLimits(
    max_iterations=5_000,
    max_facts=5_000_000,
    max_domain_size=5_000_000,
    max_sequence_length=None,
)


class TextCorpus:
    """A set of documents queried with Sequence Datalog programs."""

    def __init__(self, documents: Iterable[str], limits: EvaluationLimits = _TEXT_LIMITS):
        self.documents: List[str] = [as_sequence(document).text for document in documents]
        self.limits = limits

    def database(self, **extra_relations: Iterable[str]) -> SequenceDatabase:
        """The ``doc`` relation plus any extra relations (e.g. ``motif``)."""
        relations = {"doc": self.documents}
        for name, values in extra_relations.items():
            relations[name] = [as_sequence(value).text for value in values]
        return SequenceDatabase.from_dict(relations)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def motif_occurrences(self, motifs: Iterable[str]) -> Dict[str, Dict[str, List[int]]]:
        """motif -> document -> 1-based occurrence positions."""
        motifs = [as_sequence(motif).text for motif in motifs]
        result = compute_least_fixpoint(
            motif_program(), self.database(motif=motifs), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "occurs_at(D, M, S)")
        occurrences: Dict[str, Dict[str, List[int]]] = {motif: {} for motif in motifs}
        for document, motif, suffix in rows.texts():
            position = len(document) - len(suffix) + 1
            occurrences[motif].setdefault(document, []).append(position)
        return {
            motif: {document: sorted(found) for document, found in per_doc.items()}
            for motif, per_doc in occurrences.items()
        }

    def shared_substrings(self, min_length: int = 2) -> Dict[Tuple[str, str], Set[str]]:
        """(document, document) -> substrings of at least ``min_length`` they share."""
        result = compute_least_fixpoint(
            shared_substring_program(min_length), self.database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "shared_by(X, Y, S)")
        shared: Dict[Tuple[str, str], Set[str]] = {}
        for first, second, substring in rows.texts():
            key = (first, second) if first <= second else (second, first)
            shared.setdefault(key, set()).add(substring)
        return shared

    def longest_shared_substrings(self, min_length: int = 2) -> Dict[Tuple[str, str], str]:
        """(document, document) -> one longest shared substring."""
        return {
            pair: max(sorted(substrings), key=len)
            for pair, substrings in self.shared_substrings(min_length).items()
        }

    def palindromic_substrings(self, min_length: int = 2) -> Dict[str, Set[str]]:
        """document -> its palindromic substrings of at least ``min_length``."""
        result = compute_least_fixpoint(
            palindrome_program(), self.database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "palindrome_in(D, S)")
        palindromes: Dict[str, Set[str]] = {document: set() for document in self.documents}
        for document, substring in rows.texts():
            if len(substring) >= min_length:
                palindromes[document].add(substring)
        return palindromes

    def palindromic_documents(self) -> List[str]:
        """The documents that are palindromes themselves."""
        return sorted(
            document
            for document, substrings in self.palindromic_substrings(min_length=0).items()
            if document in substrings
        )

    def tandem_repeats(self) -> Dict[str, Set[str]]:
        """document -> non-empty words ``W`` such that ``WW`` occurs in it."""
        result = compute_least_fixpoint(
            tandem_repeat_program(), self.database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "tandem(D, W)")
        repeats: Dict[str, Set[str]] = {document: set() for document in self.documents}
        for document, word in rows.texts():
            repeats[document].add(word)
        return repeats

    def repeated_documents(self) -> Dict[str, Set[str]]:
        """document -> the proper units ``Y`` with ``document = Y^n`` (n >= 2)."""
        result = compute_least_fixpoint(
            repeat_program(), self.database(), limits=self.limits
        )
        rows = evaluate_query(result.interpretation, "unit(D, Y)")
        units: Dict[str, Set[str]] = {}
        for document, unit in rows.texts():
            units.setdefault(document, set()).add(unit)
        return units

    def __repr__(self) -> str:
        total = sum(len(document) for document in self.documents)
        return f"TextCorpus({len(self.documents)} documents, {total} symbols)"
