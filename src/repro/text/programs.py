"""Sequence Datalog programs for text-database queries.

Every program here is *non-constructive* (no ``++`` anywhere), so by
Theorem 3 each one runs within PTIME data complexity and its least fixpoint
lives inside the extended active domain of the corpus.  The programs expect
the corpus in a unary relation ``doc`` (and, where applicable, the query
motifs in a unary relation ``motif``).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.language.clauses import Program
from repro.language.parser import parse_program


def motif_program() -> Program:
    """Occurrences of stored motifs in stored documents.

    ``occurs(D, M)`` holds when motif ``M`` occurs (contiguously) in
    document ``D``; ``occurs_at(D, M, S)`` additionally carries the suffix
    of ``D`` starting at the occurrence, from which 1-based positions are
    recovered (relations store sequences, not integers).
    """
    return parse_program(
        """
        occurs(D, M) :- doc(D), motif(M), D[N1:N2] = M.
        occurs_at(D, M, D[N1:end]) :- doc(D), motif(M), D[N1:N2] = M.
        """
    )


def shared_substring_program(min_length: int = 2) -> Program:
    """Substrings shared by two *different* documents.

    ``shared(S)`` holds when ``S`` is a contiguous substring, of length at
    least ``min_length``, of two distinct documents; ``shared_by(X, Y, S)``
    records the witnessing pair.  This is the plagiarism-style query used by
    ``examples/corpus_overlap.py``.
    """
    if min_length < 1:
        raise ValidationError("min_length must be at least 1")
    return parse_program(
        f"""
        shared_by(X, Y, X[N1:N1+{min_length - 1}+K]) :-
            doc(X), doc(Y), X != Y,
            X[N1:N1+{min_length - 1}+K] = Y[M1:M2].
        shared(S) :- shared_by(X, Y, S).
        """
    )


def palindrome_program() -> Program:
    """Palindromic substrings of every document.

    ``palin(S)`` holds for every palindromic sequence in the extended active
    domain (structural recursion peeling matching end symbols);
    ``palindrome_in(D, S)`` restricts to substrings of document ``D``.
    """
    return parse_program(
        """
        palin("") :- true.
        palin(D[N]) :- doc(D).
        palin(S) :- S[1] = S[end], palin(S[2:end-1]).
        palindrome_in(D, D[N:M]) :- doc(D), palin(D[N:M]).
        """
    )


def tandem_repeat_program() -> Program:
    """Adjacent (tandem) repeats inside documents.

    ``tandem(D, W)`` holds when ``W W`` occurs contiguously in document
    ``D`` with ``W`` non-empty: the rule matches two adjacent equal factors
    (sequence equality forces equal lengths, so no arithmetic is needed, and
    writing the first factor as ``D[N : N+K]`` makes it non-empty by
    construction).
    """
    return parse_program(
        """
        tandem(D, D[N:N+K]) :- doc(D), D[N:N+K] = D[N+K+1:M].
        """
    )


def repeat_program() -> Program:
    """Whole-document repeats ``Y^n`` (Example 1.5, the safe ``rep1`` form).

    ``unit(D, Y)`` holds when document ``D`` is ``Y`` repeated at least
    twice (the trivial unit ``Y = D`` is excluded with ``!=``).
    """
    return parse_program(
        """
        rep(X, X) :- true.
        rep(X, X[1:N]) :- rep(X[N+1:end], X[1:N]).
        unit(D, Y) :- doc(D), rep(D, Y), Y != D.
        """
    )
