"""Rewriting concatenation into transducer terms (Corollary 1, converse direction).

The proof of Corollary 1 observes that any Sequence Datalog program can be
turned into an equivalent Transducer Datalog program by replacing each
constructive term ``s1 ++ s2`` with the transducer term ``@append(s1, s2)``.
This module implements the rewriting; the required ``append`` machine is
built over the alphabet supplied by the caller (it must cover every symbol
that can occur in the database and in program constants).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.language.atoms import Atom
from repro.language.clauses import Clause, Program
from repro.language.terms import (
    ConcatTerm,
    SequenceTerm,
    TransducerTerm,
)
from repro.transducers.library import append_transducer
from repro.transducers.registry import TransducerCatalog

APPEND_NAME = "append"


def _rewrite_term(term: SequenceTerm) -> SequenceTerm:
    if isinstance(term, ConcatTerm):
        parts = [_rewrite_term(part) for part in term.parts]
        # Fold the n-ary concatenation into nested binary appends,
        # right-associatively: append(s1, append(s2, ... )).
        result = parts[-1]
        for part in reversed(parts[:-1]):
            result = TransducerTerm(APPEND_NAME, [part, result])
        return result
    if isinstance(term, TransducerTerm):
        return TransducerTerm(term.name, [_rewrite_term(arg) for arg in term.args])
    return term


def concatenation_to_transducers(
    program: Program,
    alphabet: Iterable[str],
) -> Tuple[Program, TransducerCatalog]:
    """Replace every ``++`` in rule heads with ``@append`` transducer terms.

    Returns the rewritten program and a catalog containing the binary
    ``append`` machine over the given alphabet.
    """
    clauses: List[Clause] = []
    for clause in program:
        new_args = [_rewrite_term(arg) for arg in clause.head.args]
        clauses.append(Clause(Atom(clause.head.predicate, new_args), clause.body))
    catalog = TransducerCatalog([append_transducer(alphabet, 2, name=APPEND_NAME)])
    return Program(clauses), catalog
