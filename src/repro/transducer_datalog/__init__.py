"""Transducer Datalog: Sequence Datalog with transducer terms (Section 7).

* :mod:`~repro.transducer_datalog.program` -- Transducer Datalog programs: a
  Sequence Datalog program whose rule heads may contain transducer terms,
  together with the catalog of machines those terms refer to.  Programs are
  evaluated natively (the engine calls the machines) and analysed for strong
  safety (Section 8).
* :mod:`~repro.transducer_datalog.translation` -- the Theorem 7 translation
  of a Transducer Datalog program into an equivalent plain Sequence Datalog
  program that *simulates* every transducer with ``comp``/``input``/``delta``
  rules.
* :mod:`~repro.transducer_datalog.rewrite` -- the converse direction used by
  Corollary 1: rewrite plain concatenation into ``@append`` transducer terms.
"""

from repro.transducer_datalog.program import TransducerDatalogProgram
from repro.transducer_datalog.translation import translate_to_sequence_datalog
from repro.transducer_datalog.rewrite import concatenation_to_transducers

__all__ = [
    "TransducerDatalogProgram",
    "concatenation_to_transducers",
    "translate_to_sequence_datalog",
]
