"""Transducer Datalog programs (Section 7.1).

A Transducer Datalog program is a Sequence Datalog program whose rule heads
may contain transducer terms ``@T(s1, ..., sm)``, together with a catalog
resolving the transducer names to generalized transducer machines.  The
*order* of the program is the maximum order of the machines it uses.

Evaluation is native: the engine interprets a transducer term by running the
machine on the argument sequences (Section 7.1's extension of substitutions).
Theorem 7 guarantees this is equivalent to translating the program into plain
Sequence Datalog and evaluating that; :mod:`repro.transducer_datalog.translation`
implements the translation and the test suite checks the equivalence.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.analysis.finiteness import FinitenessReport, classify_finiteness
from repro.analysis.safety import SafetyReport, analyze_safety, require_strongly_safe
from repro.database.database import SequenceDatabase
from repro.engine.fixpoint import (
    FixpointResult,
    DEFAULT_STRATEGY,
    compute_least_fixpoint,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import TransducerError, ValidationError
from repro.language.clauses import Program
from repro.language.parser import parse_program
from repro.transducers.machine import GeneralizedTransducer
from repro.transducers.registry import TransducerCatalog


class TransducerDatalogProgram:
    """A Transducer Datalog program together with its transducer catalog."""

    def __init__(
        self,
        program: Union[str, Program],
        catalog: Optional[TransducerCatalog] = None,
        transducers: Iterable[GeneralizedTransducer] = (),
    ):
        self.program = parse_program(program) if isinstance(program, str) else program
        self.catalog = catalog.copy() if catalog is not None else TransducerCatalog()
        for machine in transducers:
            self.catalog.register(machine)
        self._validate()

    def _validate(self) -> None:
        self.program.validate()
        missing = [
            name for name in sorted(self.program.transducer_names())
            if name not in self.catalog
        ]
        if missing:
            raise TransducerError(
                f"program uses unregistered transducers: {', '.join(missing)}"
            )
        # Arity check: each transducer term must match its machine's inputs.
        for clause in self.program:
            for name in clause.transducer_names():
                machine = self.catalog.get(name)
                for term in _transducer_terms_of(clause):
                    if term.name == name and len(term.args) != machine.num_inputs:
                        span = getattr(term, "span", None) or getattr(
                            clause, "span", None
                        )
                        at = f" at {span.line}:{span.column}" if span else ""
                        raise ValidationError(
                            f"transducer {name!r} takes {machine.num_inputs} inputs "
                            f"but is used with {len(term.args)}{at} "
                            f"in clause: {clause}"
                        )

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The order of the program (Section 7.1)."""
        from repro.analysis.safety import program_order

        return program_order(self.program, self.catalog.orders())

    def safety(self) -> SafetyReport:
        """Strong-safety analysis (Definition 10)."""
        return analyze_safety(self.program, self.catalog.orders())

    def is_strongly_safe(self) -> bool:
        return self.safety().strongly_safe

    def finiteness(self) -> FinitenessReport:
        return classify_finiteness(self.program, self.catalog.orders())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        database: SequenceDatabase,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        strategy: str = DEFAULT_STRATEGY,
        require_safety: bool = False,
    ) -> FixpointResult:
        """Compute the least fixpoint over a database.

        With ``require_safety=True`` the program must be strongly safe
        (Definition 10); this is the *strongly safe Transducer Datalog*
        language of Section 8, whose termination is guaranteed by
        Corollary 2.
        """
        if require_safety:
            require_strongly_safe(self.program, self.catalog.orders())
        return compute_least_fixpoint(
            self.program,
            database,
            limits=limits,
            strategy=strategy,
            transducers=self.catalog.callables(),
        )

    def __repr__(self) -> str:
        return (
            f"TransducerDatalogProgram({len(self.program)} clauses, "
            f"{len(self.catalog)} transducers, order={self.order})"
        )


def _transducer_terms_of(clause):
    """All transducer terms occurring (at any depth) in a clause head."""
    from repro.language.terms import ConcatTerm, TransducerTerm

    found = []

    def visit(term):
        if isinstance(term, TransducerTerm):
            found.append(term)
            for arg in term.args:
                visit(arg)
        elif isinstance(term, ConcatTerm):
            for part in term.parts:
                visit(part)

    for arg in clause.head.args:
        visit(arg)
    return found
