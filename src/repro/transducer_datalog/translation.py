"""The Theorem 7 translation: Transducer Datalog -> Sequence Datalog.

Given a Transducer Datalog program ``P_td`` and the catalog of machines it
uses, this module constructs a plain Sequence Datalog program ``P_sd`` that
expresses the same queries (Theorem 7): for every database and every
predicate mentioned in ``P_td``, the two least fixpoints agree.

The construction follows the proof of Theorem 7:

1. every rule containing transducer terms is rewritten: each term
   ``@T(s1, ..., sm)`` becomes a fresh variable ``Zk`` constrained by a body
   atom ``p_T(s1, ..., sm, Zk)``, and an ``input_T`` rule records that the
   program invokes ``T`` on these arguments (with end-of-tape markers
   appended);
2. for every machine (and, recursively, every subtransducer) a set of
   simulation rules defines ``p_T`` via a ``comp_T`` predicate describing
   partial computations, driven by the machine's transition function encoded
   as ground facts.

One presentational deviation from the paper: the transition function is
encoded in *two* fact predicates, ``delta_emit_T`` for transitions whose
output action is a symbol (or nothing) and ``delta_call_T`` for transitions
that invoke a subtransducer.  The paper uses a single ``delta_T`` predicate
whose last column holds either a symbol or a subtransducer token; splitting
it avoids accidentally concatenating a subtransducer *name* onto an output
tape and changes nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Sequence as TypingSequence, Set, Tuple

from repro.errors import ValidationError
from repro.language.atoms import Atom, BodyLiteral
from repro.language.clauses import Clause, Program
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexVariable,
    IndexedTerm,
    SequenceTerm,
    SequenceVariable,
    TransducerTerm,
)
from repro.transducers.machine import CONSUME, END_MARKER, GeneralizedTransducer
from repro.transducers.registry import TransducerCatalog

# Constants used in the delta fact encoding.
_MOVE_CONSUME = CONSUME  # ">"
_MOVE_STAY = "-"


# ----------------------------------------------------------------------
# Naming helpers
# ----------------------------------------------------------------------
def _pred(prefix: str, machine_name: str) -> str:
    return f"{prefix}_{machine_name}".lower()


def _check_no_clashes(program: Program, machines: TypingSequence[GeneralizedTransducer]) -> None:
    reserved: Set[str] = set()
    for machine in machines:
        for prefix in ("p", "comp", "input", "delta_emit", "delta_call"):
            reserved.add(_pred(prefix, machine.name))
    clashes = reserved & set(program.predicates())
    if clashes:
        raise ValidationError(
            "translation would clash with program predicates: "
            + ", ".join(sorted(clashes))
        )


# ----------------------------------------------------------------------
# Rule rewriting (step 1 of the construction)
# ----------------------------------------------------------------------
class _RuleRewriter:
    """Rewrites one clause, flattening its transducer terms."""

    def __init__(self, clause: Clause, catalog: TransducerCatalog):
        self.clause = clause
        self.catalog = catalog
        self.extra_atoms: List[Atom] = []
        self.input_rules: List[Clause] = []
        self._fresh_counter = 0
        self._used_variables = set(clause.sequence_variables())

    def _fresh_variable(self) -> SequenceVariable:
        while True:
            self._fresh_counter += 1
            name = f"Zout{self._fresh_counter}"
            if name not in self._used_variables:
                self._used_variables.add(name)
                return SequenceVariable(name)

    def rewrite(self) -> Tuple[Clause, List[Clause]]:
        new_args = [self._rewrite_term(arg) for arg in self.clause.head.args]
        new_head = Atom(self.clause.head.predicate, new_args)
        new_body = list(self.clause.body) + self.extra_atoms
        return Clause(new_head, new_body), self.input_rules

    def _rewrite_term(self, term: SequenceTerm) -> SequenceTerm:
        if isinstance(term, TransducerTerm):
            rewritten_args = [self._rewrite_term(arg) for arg in term.args]
            machine = self.catalog.get(term.name)
            if machine.num_inputs != len(rewritten_args):
                raise ValidationError(
                    f"transducer {term.name!r} takes {machine.num_inputs} inputs, "
                    f"got {len(rewritten_args)}"
                )
            # Record the invocation: input_T gets the marked argument tuples.
            marked = [
                ConcatTerm([arg, ConstantTerm(END_MARKER)])
                for arg in rewritten_args
            ]
            input_head = Atom(_pred("input", machine.name), marked)
            input_body = list(self.clause.body) + list(self.extra_atoms)
            self.input_rules.append(Clause(input_head, input_body))
            # Constrain a fresh variable to be the transducer output.
            output_variable = self._fresh_variable()
            self.extra_atoms.append(
                Atom(
                    _pred("p", machine.name),
                    list(rewritten_args) + [output_variable],
                )
            )
            return output_variable
        if isinstance(term, ConcatTerm):
            return ConcatTerm([self._rewrite_term(part) for part in term.parts])
        return term


# ----------------------------------------------------------------------
# Machine simulation rules (step 2 of the construction)
# ----------------------------------------------------------------------
def _delta_fact_clauses(machine: GeneralizedTransducer) -> List[Clause]:
    """Ground facts encoding the transition function of a machine."""
    emit_predicate = _pred("delta_emit", machine.name)
    call_predicate = _pred("delta_call", machine.name)
    clauses: List[Clause] = []
    for state, scanned, transition in machine.transition_items():
        moves = [
            _MOVE_CONSUME if move == CONSUME else _MOVE_STAY
            for move in transition.moves
        ]
        shared = (
            [ConstantTerm(state)]
            + [ConstantTerm(symbol) for symbol in scanned]
            + [ConstantTerm(transition.next_state)]
            + [ConstantTerm(move) for move in moves]
        )
        if isinstance(transition.output, GeneralizedTransducer):
            args = shared + [ConstantTerm(transition.output.name)]
            clauses.append(Clause(Atom(call_predicate, args)))
        else:
            args = shared + [ConstantTerm(transition.output)]
            clauses.append(Clause(Atom(emit_predicate, args)))
    return clauses


def _move_combinations(num_inputs: int) -> List[Tuple[bool, ...]]:
    """All non-empty subsets of heads that may move in one step."""
    combos = []
    for mask in range(1, 2 ** num_inputs):
        combos.append(tuple(bool(mask & (1 << i)) for i in range(num_inputs)))
    return combos


def _simulation_clauses(machine: GeneralizedTransducer) -> List[Clause]:
    """The ``p_T`` / ``comp_T`` rules simulating one machine (proof of Thm. 7)."""
    m = machine.num_inputs
    p_predicate = _pred("p", machine.name)
    comp_predicate = _pred("comp", machine.name)
    input_predicate = _pred("input", machine.name)
    emit_predicate = _pred("delta_emit", machine.name)
    call_predicate = _pred("delta_call", machine.name)

    input_vars = [SequenceVariable(f"X{i + 1}") for i in range(m)]
    position_vars = [IndexVariable(f"N{i + 1}") for i in range(m)]
    output_var = SequenceVariable("Zacc")
    new_output_var = SequenceVariable("Znew")
    state_var = SequenceVariable("Qs")
    next_state_var = SequenceVariable("Qn")
    symbol_var = SequenceVariable("Osym")

    def consumed_prefix(i: int) -> IndexedTerm:
        """``Xi[1 : Ni]`` -- the portion of tape ``i`` consumed so far."""
        return IndexedTerm(input_vars[i], IndexConstant(1), position_vars[i])

    def advanced_prefix(i: int) -> IndexedTerm:
        """``Xi[1 : Ni + 1]`` -- the portion after consuming one more symbol."""
        return IndexedTerm(
            input_vars[i],
            IndexConstant(1),
            IndexSum(position_vars[i], IndexConstant(1), "+"),
        )

    def scanned_symbol(i: int) -> IndexedTerm:
        """``Xi[Ni + 1]`` -- the symbol below head ``i``."""
        position = IndexSum(position_vars[i], IndexConstant(1), "+")
        return IndexedTerm(input_vars[i], position, position)

    def unmarked_input(i: int) -> IndexedTerm:
        """``Xi[1 : end - 1]`` -- the input without its end marker."""
        return IndexedTerm(
            input_vars[i],
            IndexConstant(1),
            IndexSum(End(), IndexConstant(1), "-"),
        )

    clauses: List[Clause] = []

    # gamma_1: the machine's result once every tape is fully consumed.
    clauses.append(
        Clause(
            Atom(
                p_predicate,
                [unmarked_input(i) for i in range(m)] + [output_var],
            ),
            [
                Atom(input_predicate, list(input_vars)),
                Atom(
                    comp_predicate,
                    [unmarked_input(i) for i in range(m)] + [output_var, state_var],
                ),
            ],
        )
    )

    # gamma_2: the initial configuration (nothing consumed, empty output).
    clauses.append(
        Clause(
            Atom(
                comp_predicate,
                [ConstantTerm("") for _ in range(m)]
                + [ConstantTerm(""), ConstantTerm(machine.initial_state)],
            )
        )
    )

    # gamma_3 family: one rule per combination of advancing heads, for
    # transitions that emit a symbol (or nothing).
    for combo in _move_combinations(m):
        move_constants = [
            ConstantTerm(_MOVE_CONSUME if moves else _MOVE_STAY) for moves in combo
        ]
        head_args: List[SequenceTerm] = [
            advanced_prefix(i) if combo[i] else consumed_prefix(i) for i in range(m)
        ]
        clauses.append(
            Clause(
                Atom(
                    comp_predicate,
                    head_args
                    + [ConcatTerm([output_var, symbol_var]), next_state_var],
                ),
                [
                    Atom(input_predicate, list(input_vars)),
                    Atom(
                        comp_predicate,
                        [consumed_prefix(i) for i in range(m)]
                        + [output_var, state_var],
                    ),
                    Atom(
                        emit_predicate,
                        [state_var]
                        + [scanned_symbol(i) for i in range(m)]
                        + [next_state_var]
                        + move_constants
                        + [symbol_var],
                    ),
                ],
            )
        )

    # gamma_4 / gamma_5 families: transitions that call a subtransducer.
    for subtransducer in machine.subtransducers():
        sub_p_predicate = _pred("p", subtransducer.name)
        sub_input_predicate = _pred("input", subtransducer.name)
        sub_name_constant = ConstantTerm(subtransducer.name)
        for combo in _move_combinations(m):
            move_constants = [
                ConstantTerm(_MOVE_CONSUME if moves else _MOVE_STAY) for moves in combo
            ]
            head_args = [
                advanced_prefix(i) if combo[i] else consumed_prefix(i) for i in range(m)
            ]
            call_atom = Atom(
                call_predicate,
                [state_var]
                + [scanned_symbol(i) for i in range(m)]
                + [next_state_var]
                + move_constants
                + [sub_name_constant],
            )
            shared_body: List[BodyLiteral] = [
                Atom(input_predicate, list(input_vars)),
                Atom(
                    comp_predicate,
                    [consumed_prefix(i) for i in range(m)] + [output_var, state_var],
                ),
                call_atom,
            ]
            # gamma_4: the subtransducer's output overwrites the output tape.
            clauses.append(
                Clause(
                    Atom(
                        comp_predicate,
                        head_args + [new_output_var, next_state_var],
                    ),
                    shared_body
                    + [
                        Atom(
                            sub_p_predicate,
                            [unmarked_input(i) for i in range(m)]
                            + [output_var, new_output_var],
                        )
                    ],
                )
            )
            # gamma_5: record the subtransducer invocation (marked inputs).
            clauses.append(
                Clause(
                    Atom(
                        sub_input_predicate,
                        list(input_vars)
                        + [ConcatTerm([output_var, ConstantTerm(END_MARKER)])],
                    ),
                    shared_body,
                )
            )

    return clauses


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def translate_to_sequence_datalog(
    program: Program,
    catalog: TransducerCatalog,
) -> Program:
    """Translate a Transducer Datalog program into plain Sequence Datalog.

    The result contains no transducer terms; concatenation is used only in
    the simulation rules and in the end-marker bookkeeping, exactly as in the
    proof of Theorem 7.  Evaluating the result over any database yields the
    same facts for every predicate of the original program (the simulation
    predicates ``p_T`` / ``comp_T`` / ``input_T`` / ``delta_*_T`` are extra).
    """
    # Collect every machine used, including subtransducers, transitively.
    machines: Dict[str, GeneralizedTransducer] = {}
    for name in sorted(program.transducer_names()):
        for machine in catalog.get(name).all_transducers():
            machines.setdefault(machine.name, machine)
    machine_list = [machines[name] for name in sorted(machines)]
    _check_no_clashes(program, machine_list)

    clauses: List[Clause] = []

    # Step 1: rewrite the program rules.
    for clause in program:
        if not clause.transducer_names():
            clauses.append(clause)
            continue
        rewriter = _RuleRewriter(clause, catalog)
        rewritten, input_rules = rewriter.rewrite()
        clauses.extend(input_rules)
        clauses.append(rewritten)

    # Step 2: simulation rules and transition-function facts per machine.
    for machine in machine_list:
        clauses.extend(_delta_fact_clauses(machine))
        clauses.extend(_simulation_clauses(machine))

    return Program(clauses)
