"""repro: a reproduction of "Sequences, Datalog, and Transducers".

The library implements Sequence Datalog (a Datalog extension with interpreted
index and constructive terms over sequences), its fixpoint and model-theoretic
semantics based on the extended active domain, generalized sequence
transducers and transducer networks, Transducer Datalog, the translation
between the two languages (Theorem 7), and the strongly safe fragment whose
order-2 programs capture PTIME and order-3 programs capture the elementary
sequence functions.

Quickstart
----------
>>> from repro import SequenceDatalogEngine
>>> engine = SequenceDatalogEngine('suffix(X[N:end]) :- r(X).')
>>> result = engine.evaluate({"r": ["abc"]})
>>> [t[0] for t in engine.query(result, "suffix(X)").texts()]
['', 'abc', 'bc', 'c']
"""

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, lint_program
from repro.api.client import DatalogClient
from repro.api.service import DatalogService
from repro.api.transport import DatalogTCPServer, serve_tcp
from repro.api.types import (
    SCHEMA_VERSION,
    AddFactsRequest,
    ApiError,
    BatchRequest,
    ExplainRequest,
    LintRequest,
    LintResponse,
    QueryRequest,
    QueryResultPage,
    ServerStats,
    SubscriptionDelta,
    WatchRequest,
)
from repro.core.engine_api import SequenceDatalogEngine
from repro.database.database import SequenceDatabase
from repro.engine.demand import DemandQuery, compile_demand, demand_query
from repro.engine.fixpoint import FixpointResult, compute_least_fixpoint
from repro.engine.limits import EvaluationLimits
from repro.engine.parallel import ParallelFixpoint
from repro.engine.query import PreparedQuery, evaluate_query
from repro.engine.server import DatalogServer, ModelSnapshot
from repro.engine.session import DatalogSession
from repro.errors import (
    CorruptLogError,
    CorruptSnapshotError,
    LagTimeoutError,
    NotLeaderError,
    ReplicationError,
    SlowConsumerError,
    StorageError,
)
from repro.language.parser import parse_atom, parse_clause, parse_program
from repro.live import (
    AsyncDatalogClient,
    AsyncDatalogServer,
    SubscriptionManager,
    serve_tcp_async,
)
from repro.replication import FollowerServer, ReplicationHub, RoutingClient
from repro.sequences.sequence import Sequence
from repro.storage import DurableStore, open_session
from repro.transducer_datalog.program import TransducerDatalogProgram
from repro.transducer_datalog.translation import translate_to_sequence_datalog
from repro.transducers.registry import TransducerCatalog

__version__ = "1.4.0"

__all__ = [
    "AddFactsRequest",
    "ApiError",
    "AsyncDatalogClient",
    "AsyncDatalogServer",
    "BatchRequest",
    "CorruptLogError",
    "CorruptSnapshotError",
    "DatalogClient",
    "DatalogServer",
    "DatalogService",
    "DatalogSession",
    "DatalogTCPServer",
    "Diagnostic",
    "DiagnosticReport",
    "ExplainRequest",
    "FollowerServer",
    "LagTimeoutError",
    "LintRequest",
    "LintResponse",
    "NotLeaderError",
    "QueryRequest",
    "QueryResultPage",
    "SCHEMA_VERSION",
    "ServerStats",
    "DemandQuery",
    "DurableStore",
    "EvaluationLimits",
    "FixpointResult",
    "ModelSnapshot",
    "ParallelFixpoint",
    "PreparedQuery",
    "ReplicationError",
    "ReplicationHub",
    "RoutingClient",
    "Sequence",
    "SequenceDatabase",
    "SequenceDatalogEngine",
    "SlowConsumerError",
    "StorageError",
    "SubscriptionDelta",
    "SubscriptionManager",
    "TransducerCatalog",
    "TransducerDatalogProgram",
    "compile_demand",
    "compute_least_fixpoint",
    "demand_query",
    "evaluate_query",
    "lint_program",
    "open_session",
    "parse_atom",
    "parse_clause",
    "parse_program",
    "serve_tcp",
    "serve_tcp_async",
    "translate_to_sequence_datalog",
    "WatchRequest",
    "__version__",
]
