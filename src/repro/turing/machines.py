"""A small library of example Turing machines.

These machines exercise the two compilers of this package (Theorem 1 and
Theorem 5) and the finiteness results of Section 5:

* :func:`identity_machine` -- copies its input (one left-to-right pass);
* :func:`complement_machine` -- flips every bit of a binary input in place;
* :func:`increment_machine` -- adds one to a binary number written
  least-significant-bit first;
* :func:`erase_machine` -- erases its input (computes the empty sequence);
* :func:`looping_machine` -- never halts on any input (used to exhibit the
  infinite least fixpoints behind Theorem 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.turing.machine import BLANK, LEFT_END, RIGHT, STAY_PUT, TuringMachine

TransitionTable = Dict[Tuple[str, str], Tuple[str, str, str]]


def identity_machine(alphabet: Iterable[str] = "01") -> TuringMachine:
    """Scan to the end of the input and halt, leaving the tape unchanged."""
    symbols = tuple(dict.fromkeys(alphabet))
    transitions: TransitionTable = {
        ("scan", LEFT_END): ("scan", LEFT_END, RIGHT),
    }
    for symbol in symbols:
        transitions[("scan", symbol)] = ("scan", symbol, RIGHT)
    transitions[("scan", BLANK)] = ("halt", BLANK, STAY_PUT)
    return TuringMachine(
        name="identity",
        input_alphabet=symbols,
        initial_state="scan",
        halting_states={"halt"},
        transitions=transitions,
    )


def complement_machine() -> TuringMachine:
    """Flip every ``0`` to ``1`` and vice versa (binary complement, in place)."""
    transitions: TransitionTable = {
        ("scan", LEFT_END): ("scan", LEFT_END, RIGHT),
        ("scan", "0"): ("scan", "1", RIGHT),
        ("scan", "1"): ("scan", "0", RIGHT),
        ("scan", BLANK): ("halt", BLANK, STAY_PUT),
    }
    return TuringMachine(
        name="complement",
        input_alphabet="01",
        initial_state="scan",
        halting_states={"halt"},
        transitions=transitions,
    )


def increment_machine() -> TuringMachine:
    """Add one to a binary number written least-significant-bit first.

    Scanning from the left, ``1``\\ s carry (become ``0``) until the first
    ``0`` (or a blank, when the number is all ones) absorbs the carry.
    Example: ``110`` (= 3, LSB first) becomes ``001`` (= 4, LSB first).
    """
    transitions: TransitionTable = {
        ("carry", LEFT_END): ("carry", LEFT_END, RIGHT),
        ("carry", "1"): ("carry", "0", RIGHT),
        ("carry", "0"): ("halt", "1", STAY_PUT),
        ("carry", BLANK): ("halt", "1", STAY_PUT),
    }
    return TuringMachine(
        name="increment",
        input_alphabet="01",
        initial_state="carry",
        halting_states={"halt"},
        transitions=transitions,
    )


def erase_machine(alphabet: Iterable[str] = "01") -> TuringMachine:
    """Erase the input: the computed sequence function is constantly empty."""
    symbols = tuple(dict.fromkeys(alphabet))
    transitions: TransitionTable = {
        ("wipe", LEFT_END): ("wipe", LEFT_END, RIGHT),
        ("wipe", BLANK): ("halt", BLANK, STAY_PUT),
    }
    for symbol in symbols:
        transitions[("wipe", symbol)] = ("wipe", BLANK, RIGHT)
    return TuringMachine(
        name="erase",
        input_alphabet=symbols,
        initial_state="wipe",
        halting_states={"halt"},
        transitions=transitions,
    )


def looping_machine(alphabet: Iterable[str] = "01") -> TuringMachine:
    """A machine that never halts: it bounces right forever.

    Used to demonstrate Theorem 2: compiling this machine with the Theorem 1
    construction yields a Sequence Datalog program whose least fixpoint is
    infinite for every database instance.
    """
    symbols = tuple(dict.fromkeys(alphabet))
    transitions: TransitionTable = {
        ("bounce", LEFT_END): ("bounce", LEFT_END, RIGHT),
        ("bounce", BLANK): ("bounce", BLANK, RIGHT),
    }
    for symbol in symbols:
        transitions[("bounce", symbol)] = ("bounce", symbol, RIGHT)
    return TuringMachine(
        name="looping",
        input_alphabet=symbols,
        initial_state="bounce",
        halting_states={"halt"},
        transitions=transitions,
    )
