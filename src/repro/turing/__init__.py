"""Turing machine substrate (Sections 4 and 6.2 of the paper).

The paper uses single-tape Turing machines twice:

* Theorem 1 compiles an arbitrary TM into a Sequence Datalog program whose
  least fixpoint contains ``output(f(x))`` for the database ``{input(x)}`` --
  proving that Sequence Datalog expresses every computable sequence function.
* Theorem 5 simulates a polynomial-time TM with an acyclic order-2 transducer
  network -- proving that such networks express exactly the PTIME sequence
  functions.

This package provides the machine model, both compilers, and a small library
of example machines used by tests and benchmarks.
"""

from repro.turing.machine import (
    BLANK,
    LEFT,
    LEFT_END,
    RIGHT,
    STAY_PUT,
    TuringMachine,
    TuringRun,
    TuringTransition,
)
from repro.turing.compile_to_datalog import compile_tm_to_sequence_datalog
from repro.turing.compile_to_network import compile_tm_to_network
from repro.turing import machines

__all__ = [
    "BLANK",
    "LEFT",
    "LEFT_END",
    "RIGHT",
    "STAY_PUT",
    "TuringMachine",
    "TuringRun",
    "TuringTransition",
    "compile_tm_to_network",
    "compile_tm_to_sequence_datalog",
    "machines",
]
