"""The Theorem 5 compiler: polynomial-time Turing machine -> order-2 network.

Theorem 5 shows that acyclic transducer networks of order 2 express exactly
the PTIME sequence functions.  The constructive direction simulates a
polynomial-time machine ``M`` (running in time ``n^k``) with a network of
four stages:

1. a **counter chain** of order-2 squaring transducers turns the input of
   length ``n`` into a sequence of length at least ``n^k`` used to count
   simulation steps;
2. an **initial-configuration** transducer builds the string encoding of
   ``M``'s starting configuration, padded with one blank cell per counter
   symbol so the simulated tape never has to grow mid-pass;
3. a **simulation** transducer of order 2 copies the initial configuration
   to its output and then, once per counter symbol, calls a base
   **step** subtransducer that rewrites the configuration string into its
   successor (configurations of halted machines are fixed points);
4. a **decoder** strips the head/state markers and blanks, leaving ``M``'s
   output.

Configuration encoding: the tape content with the cell under the head
replaced by a fresh *composite* symbol standing for the (state, symbol)
pair.  The step transducer makes a single left-to-right pass with one-symbol
lookbehind, which is what lets it be an ordinary (order-1) machine.

Engineering notes (documented deviations, none affecting the theorem's
content):

* inputs must have length at least 2 -- a base transducer cannot emit the
  ``state + marker`` prefix for shorter inputs without more machinery, and
  Theorem 5 is an asymptotic statement;
* the step machine is specified with wildcard transitions (a compact
  shorthand for the explicit table of Definition 7) because it must ignore
  the two tapes it only drains.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Dict, List, Tuple

from repro.errors import TuringMachineError
from repro.transducers.builder import TransducerBuilder
from repro.transducers.library import mapping_transducer, square_transducer
from repro.transducers.machine import (
    CONSUME,
    END_MARKER,
    GeneralizedTransducer,
    STAY,
    WILDCARD,
)
from repro.transducers.network import NetworkNode, TransducerNetwork
from repro.turing.machine import LEFT, RIGHT, TuringMachine

#: Pool of characters used for state and composite (state, symbol) markers.
_MARKER_POOL = (
    "αβγδεζηθικλμνξοπρστυφχψω"
    "ΑΒΓΔΕΖΗΘΙΚΛΜΝΞΟΠΡΣΤΥΦΧΨΩ"
    "⊕⊖⊗⊘⊙⊚⊛⊜⊝♠♣♥♦"
)


class _Encoding:
    """Symbol encoding shared by the network stages."""

    def __init__(self, machine: TuringMachine):
        self.machine = machine
        self.tape_symbols: Tuple[str, ...] = machine.tape_alphabet
        used = set(self.tape_symbols) | set(machine.input_alphabet)
        pool = [char for char in _MARKER_POOL if char not in used]
        needed = len(machine.states) * len(self.tape_symbols)
        if needed > len(pool):
            raise TuringMachineError(
                "not enough marker characters to encode the machine's "
                "(state, symbol) pairs"
            )
        self.composite: Dict[Tuple[str, str], str] = {}
        index = 0
        for state in machine.states:
            for symbol in self.tape_symbols:
                self.composite[(state, symbol)] = pool[index]
                index += 1
        self.composite_inverse = {
            char: pair for pair, char in self.composite.items()
        }

    @property
    def config_alphabet(self) -> Tuple[str, ...]:
        return tuple(self.tape_symbols) + tuple(sorted(self.composite_inverse))

    def initial_head_symbol(self) -> str:
        return self.composite[(self.machine.initial_state, self.machine.left_end)]


# ----------------------------------------------------------------------
# Stage 2: initial configuration
# ----------------------------------------------------------------------
def _initial_config_transducer(
    machine: TuringMachine, encoding: _Encoding
) -> GeneralizedTransducer:
    """Two inputs (input word, counter) -> padded initial configuration.

    Output: ``composite(q0, ⊢)`` followed by the input word followed by one
    blank per counter symbol but one (the budget of a base transducer is one
    emission per consumed symbol).
    """
    symbols = tuple(machine.input_alphabet)
    counter_symbols = symbols  # the counter is built from the input word
    alphabet = tuple(dict.fromkeys(symbols + counter_symbols)) + (
        machine.blank,
        encoding.initial_head_symbol(),
    )
    builder = TransducerBuilder("tm_init", num_inputs=2, alphabet=alphabet)
    head_symbol = encoding.initial_head_symbol()
    blank = machine.blank

    # State "s0": consume the first input symbol, emit the head marker and
    # remember the symbol in the state.
    for a in symbols:
        builder.add_wildcard(
            state="s0",
            pattern=(a, WILDCARD),
            next_state=f"carry_{a}",
            moves=(CONSUME, STAY),
            output=head_symbol,
        )
    # States "carry_a": emit the remembered symbol while consuming the next
    # input symbol; when the input runs out, consume a counter symbol instead
    # and move on to blank padding.
    for a in symbols:
        for c in symbols:
            builder.add_wildcard(
                state=f"carry_{a}",
                pattern=(c, WILDCARD),
                next_state=f"carry_{c}",
                moves=(CONSUME, STAY),
                output=a,
            )
        builder.add_wildcard(
            state=f"carry_{a}",
            pattern=(END_MARKER, WILDCARD),
            next_state="pad",
            moves=(STAY, CONSUME),
            output=a,
        )
    # State "pad": one blank per remaining counter symbol.
    builder.add_wildcard(
        state="pad",
        pattern=(WILDCARD, WILDCARD),
        next_state="pad",
        moves=(STAY, CONSUME),
        output=blank,
    )
    return builder.build(initial_state="s0")


# ----------------------------------------------------------------------
# Stage 3a: the configuration-step subtransducer
# ----------------------------------------------------------------------
def _step_transducer(machine: TuringMachine, encoding: _Encoding) -> GeneralizedTransducer:
    """Three inputs (counter, initial config, current config) -> next config.

    One left-to-right pass over the current configuration (tape 3) with a
    one-symbol lookbehind; tapes 1 and 2 are drained silently (their symbols
    also provide the consumption budget for the final flush).
    """
    config_symbols = encoding.config_alphabet
    plain_symbols = tuple(encoding.tape_symbols)
    builder = TransducerBuilder(
        "tm_step", num_inputs=3, alphabet=tuple(machine.input_alphabet) + config_symbols
    )

    def consume_config(state: str, symbol: str, next_state: str, output: str) -> None:
        builder.add_wildcard(
            state=state,
            pattern=(WILDCARD, WILDCARD, symbol),
            next_state=next_state,
            moves=(STAY, STAY, CONSUME),
            output=output,
        )

    def finish(state: str, output: str, next_state: str) -> None:
        """At end of tape 3: emit by consuming tape 2 first, then tape 1."""
        builder.add_wildcard(
            state=state,
            pattern=(WILDCARD, WILDCARD, END_MARKER),
            next_state=next_state,
            moves=(STAY, CONSUME, STAY),
            output=output,
        )
        builder.add_wildcard(
            state=state,
            pattern=(WILDCARD, WILDCARD, END_MARKER),
            next_state=next_state,
            moves=(CONSUME, STAY, STAY),
            output=output,
        )

    def process(symbol: str, pending: str) -> Tuple[str, str]:
        """Handle reading ``symbol`` with ``pending`` not yet emitted.

        Returns ``(emitted, next_state)``; ``pending`` may be the empty
        string in the start state.
        """
        pair = encoding.composite_inverse.get(symbol)
        if pair is None or pair[0] in machine.halting_states or (
            pair not in ()
            and (pair[0], pair[1]) not in machine.transitions
        ):
            # Plain symbol, halted head, or undefined transition: copy as-is.
            return pending, f"pend_{symbol}"
        state, scanned = pair
        transition = machine.transitions[(state, scanned)]
        write = transition.write
        next_state = transition.next_state
        if transition.move == RIGHT:
            # ... pending  write  composite(next, <next cell>) ...
            return pending, f"attach_{next_state}_{write}"
        if transition.move == LEFT:
            # pending must exist (machines never move left off the marker).
            composite = encoding.composite[(next_state, pending)]
            return composite, f"pend_{write}"
        # STAY
        composite = encoding.composite[(next_state, write)]
        return pending, f"pend_{composite}"

    # Start state: nothing pending yet.
    for symbol in config_symbols:
        emitted, next_state = process(symbol, "")
        consume_config("start3", symbol, next_state, emitted)
    finish("start3", "", "drain2")

    # Pending states.
    for pending in config_symbols:
        state = f"pend_{pending}"
        for symbol in config_symbols:
            emitted, next_state = process(symbol, pending)
            consume_config(state, symbol, next_state, emitted)
        finish(state, pending, "drain2")

    # Attach states: the next cell read becomes a composite with this state.
    for tm_state in machine.states:
        for write in plain_symbols:
            state = f"attach_{tm_state}_{write}"
            for symbol in plain_symbols:
                composite = encoding.composite[(tm_state, symbol)]
                emitted, next_state = process(composite, write)
                consume_config(state, symbol, next_state, emitted)
            # Dangling attach at the end of the configuration: the head moved
            # onto a new cell.  Emit the written symbol, then a composite on
            # a fresh blank cell, then drain.
            dangling = encoding.composite[(tm_state, machine.blank)]
            finish(state, write, f"flush_{tm_state}")
            finish(f"flush_{tm_state}", dangling, "drain2")

    # Drain the remaining symbols of tapes 2 and 1 without emitting.
    builder.add_wildcard(
        state="drain2",
        pattern=(WILDCARD, WILDCARD, WILDCARD),
        next_state="drain2",
        moves=(STAY, CONSUME, STAY),
        output="",
    )
    builder.add_wildcard(
        state="drain2",
        pattern=(WILDCARD, WILDCARD, WILDCARD),
        next_state="drain2",
        moves=(CONSUME, STAY, STAY),
        output="",
    )
    return builder.build(initial_state="start3")


# ----------------------------------------------------------------------
# Stage 3b: the simulation driver
# ----------------------------------------------------------------------
def _simulation_transducer(
    machine: TuringMachine, encoding: _Encoding, step: GeneralizedTransducer
) -> GeneralizedTransducer:
    """Two inputs (counter, initial config), order 2.

    First copies the initial configuration to the output, then performs one
    ``step`` subtransducer call per counter symbol.
    """
    builder = TransducerBuilder(
        "tm_sim",
        num_inputs=2,
        alphabet=tuple(machine.input_alphabet) + encoding.config_alphabet,
    )
    for symbol in encoding.config_alphabet:
        builder.add_wildcard(
            state="copy",
            pattern=(WILDCARD, symbol),
            next_state="copy",
            moves=(STAY, CONSUME),
            output=symbol,
        )
    builder.add_wildcard(
        state="copy",
        pattern=(WILDCARD, END_MARKER),
        next_state="run",
        moves=(CONSUME, STAY),
        output=step,
    )
    builder.add_wildcard(
        state="run",
        pattern=(WILDCARD, WILDCARD),
        next_state="run",
        moves=(CONSUME, STAY),
        output=step,
    )
    return builder.build(initial_state="copy")


# ----------------------------------------------------------------------
# Stage 4: decoding
# ----------------------------------------------------------------------
def _decode_transducer(machine: TuringMachine, encoding: _Encoding) -> GeneralizedTransducer:
    """Strip markers, state composites and blanks from the final configuration."""
    mapping: Dict[str, str] = {machine.left_end: "", machine.blank: ""}
    for (state, symbol), char in encoding.composite.items():
        if symbol in (machine.left_end, machine.blank):
            mapping[char] = ""
        else:
            mapping[char] = symbol
    return mapping_transducer("tm_decode", mapping, alphabet=encoding.config_alphabet)


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def compile_tm_to_network(
    machine: TuringMachine,
    time_exponent: int = 1,
) -> TransducerNetwork:
    """Build an order-2 transducer network simulating a PTIME Turing machine.

    ``time_exponent`` is the ``k`` such that the machine halts within
    ``n^k`` steps on inputs of length ``n >= 2`` (the counter chain squares
    the input ``ceil(log2(k)) + 1`` times, guaranteeing at least ``n^(2k)``
    counter symbols, which also covers the constant factors of short inputs).
    """
    if time_exponent < 1:
        raise TuringMachineError("time_exponent must be at least 1")
    encoding = _Encoding(machine)

    squarings = max(1, ceil(log2(time_exponent))) + 1
    counter_nodes: List[NetworkNode] = []
    previous_source = "x"
    for index in range(squarings):
        node = NetworkNode(
            name=f"counter_{index}",
            transducer=square_transducer(
                machine.input_alphabet, name=f"tm_counter_{index}"
            ),
            inputs=[previous_source if index == 0 else counter_nodes[-1]],
        )
        counter_nodes.append(node)
    counter = counter_nodes[-1]

    init_node = NetworkNode(
        name="init",
        transducer=_initial_config_transducer(machine, encoding),
        inputs=["x", counter],
    )
    step = _step_transducer(machine, encoding)
    sim_node = NetworkNode(
        name="sim",
        transducer=_simulation_transducer(machine, encoding, step),
        inputs=[counter, init_node],
    )
    decode_node = NetworkNode(
        name="decode",
        transducer=_decode_transducer(machine, encoding),
        inputs=[sim_node],
    )
    return TransducerNetwork(
        input_names=["x"],
        nodes=counter_nodes + [init_node, sim_node, decode_node],
        output=decode_node,
    )
