"""The Theorem 1 compiler: Turing machine -> Sequence Datalog program.

Given a Turing machine ``M`` computing a sequence function ``f``, the
construction produces a Sequence Datalog program ``P_f`` such that for every
database of the form ``{input(x)}``, the least fixpoint contains
``output(y)`` exactly when ``M`` halts on ``x`` with output ``y``.

Machine configurations are represented by a 4-ary predicate
``conf(state, left, scanned, right)`` where ``left`` is the tape content to
the left of the head, ``scanned`` the symbol under the head, and ``right``
the content to its right.  One rule per machine transition rewrites a
reachable configuration into its successor; a final rule extracts the tape
content when a halting state is reached.

Two presentational notes relative to the paper's proof:

* the initial-configuration rule appends one blank to the right part
  (``conf(q0, "", "⊢", X ++ "_")``) so that the "move right" rule, which
  needs to inspect ``Xr[1]``, is applicable even for the empty input;
* an extra output rule handles the corner case of a machine halting with the
  head still on the left-end marker.

Both changes only add trailing blanks to the extracted output, which the
comparison helpers strip (the machine's own output convention also strips
trailing blanks).
"""

from __future__ import annotations

from typing import List

from repro.language.atoms import Atom
from repro.language.clauses import Clause, Program
from repro.language.terms import (
    ConcatTerm,
    ConstantTerm,
    End,
    IndexConstant,
    IndexSum,
    IndexedTerm,
    SequenceVariable,
)
from repro.turing.machine import LEFT, STAY_PUT, TuringMachine


def _left_var() -> SequenceVariable:
    return SequenceVariable("Xl")


def _right_var() -> SequenceVariable:
    return SequenceVariable("Xr")


def compile_tm_to_sequence_datalog(
    machine: TuringMachine,
    input_predicate: str = "input",
    output_predicate: str = "output",
    conf_predicate: str = "conf",
) -> Program:
    """Build the Sequence Datalog program simulating a Turing machine."""
    clauses: List[Clause] = []
    left = _left_var()
    right = _right_var()
    input_var = SequenceVariable("X")

    # Initial configuration: head on the left-end marker, input to its right
    # (padded with one blank so the move-right rule is always applicable).
    clauses.append(
        Clause(
            Atom(
                conf_predicate,
                [
                    ConstantTerm(machine.initial_state),
                    ConstantTerm(""),
                    ConstantTerm(machine.left_end),
                    ConcatTerm([input_var, ConstantTerm(machine.blank)]),
                ],
            ),
            [Atom(input_predicate, [input_var])],
        )
    )

    # One rule per transition.
    for (state, symbol), transition in sorted(machine.transitions.items()):
        body = [
            Atom(
                conf_predicate,
                [ConstantTerm(state), left, ConstantTerm(symbol), right],
            )
        ]
        if transition.move == STAY_PUT:
            head = Atom(
                conf_predicate,
                [
                    ConstantTerm(transition.next_state),
                    left,
                    ConstantTerm(transition.write),
                    right,
                ],
            )
        elif transition.move == LEFT:
            # conf(q', Xl[1:end-1], Xl[end], write ++ Xr) :- conf(q, Xl, a, Xr).
            head = Atom(
                conf_predicate,
                [
                    ConstantTerm(transition.next_state),
                    IndexedTerm(
                        left, IndexConstant(1), IndexSum(End(), IndexConstant(1), "-")
                    ),
                    IndexedTerm(left, End(), End()),
                    ConcatTerm([ConstantTerm(transition.write), right]),
                ],
            )
        else:  # RIGHT
            # conf(q', Xl ++ write, Xr[1], Xr[2:end] ++ blank) :- conf(q, Xl, a, Xr).
            head = Atom(
                conf_predicate,
                [
                    ConstantTerm(transition.next_state),
                    ConcatTerm([left, ConstantTerm(transition.write)]),
                    IndexedTerm(right, IndexConstant(1), IndexConstant(1)),
                    ConcatTerm(
                        [
                            IndexedTerm(right, IndexConstant(2), End()),
                            ConstantTerm(machine.blank),
                        ]
                    ),
                ],
            )
        clauses.append(Clause(head, body))

    # Output extraction for every halting state.
    scanned = SequenceVariable("S")
    for halting_state in sorted(machine.halting_states):
        # General case: the head sits on some tape cell right of the marker.
        clauses.append(
            Clause(
                Atom(
                    output_predicate,
                    [
                        ConcatTerm(
                            [
                                IndexedTerm(left, IndexConstant(2), End()),
                                scanned,
                                right,
                            ]
                        )
                    ],
                ),
                [
                    Atom(
                        conf_predicate,
                        [ConstantTerm(halting_state), left, scanned, right],
                    )
                ],
            )
        )
        # Corner case: the machine halted with the head on the left-end marker.
        clauses.append(
            Clause(
                Atom(output_predicate, [right]),
                [
                    Atom(
                        conf_predicate,
                        [
                            ConstantTerm(halting_state),
                            ConstantTerm(""),
                            ConstantTerm(machine.left_end),
                            right,
                        ],
                    )
                ],
            )
        )

    return Program(clauses)


def strip_blanks(text: str, machine: TuringMachine) -> str:
    """Strip trailing blanks from an extracted output (comparison helper)."""
    return text.rstrip(machine.blank)
