"""Single-tape Turing machines, as used in the proofs of Theorems 1 and 5.

The machine model follows the conventions of the Theorem 1 proof:

* a single one-way-infinite tape whose first cell holds the left-end marker
  ``⊢``; the machine never overwrites it and never moves left of it;
* the initial configuration has the head on the left-end marker and the
  input written immediately to its right;
* the machine halts when it enters a halting state; the *output* is the tape
  content to the right of the marker, with trailing blanks stripped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import TuringMachineError
from repro.sequences import Sequence, as_sequence

#: The blank tape symbol.
BLANK = "_"

#: The left-end marker written on the first tape cell.
LEFT_END = "⊢"

#: Head movements.
LEFT = "L"
RIGHT = "R"
STAY_PUT = "S"


@dataclass(frozen=True)
class TuringTransition:
    """``delta(state, symbol) = (next_state, write, move)``."""

    next_state: str
    write: str
    move: str


@dataclass
class TuringRun:
    """The result of running a Turing machine."""

    halted: bool
    output: Sequence
    steps: int
    final_state: str
    final_tape: str

    @property
    def accepted(self) -> bool:
        return self.halted


class TuringMachine:
    """A deterministic single-tape Turing machine with a left-end marker."""

    def __init__(
        self,
        name: str,
        input_alphabet: Iterable[str],
        initial_state: str,
        halting_states: Iterable[str],
        transitions: Mapping[Tuple[str, str], Tuple[str, str, str]],
        tape_alphabet: Optional[Iterable[str]] = None,
        blank: str = BLANK,
        left_end: str = LEFT_END,
    ):
        self.name = name
        self.input_alphabet = tuple(dict.fromkeys(input_alphabet))
        self.blank = blank
        self.left_end = left_end
        if tape_alphabet is None:
            tape_alphabet = self.input_alphabet
        self.tape_alphabet = tuple(
            dict.fromkeys(tuple(tape_alphabet) + (blank, left_end))
        )
        self.initial_state = initial_state
        self.halting_states: Set[str] = set(halting_states)
        self.transitions: Dict[Tuple[str, str], TuringTransition] = {}
        for (state, symbol), action in transitions.items():
            next_state, write, move = action
            self.transitions[(state, symbol)] = TuringTransition(next_state, write, move)
        self.states = self._collect_states()
        self._validate()

    def _collect_states(self) -> Tuple[str, ...]:
        states = {self.initial_state} | set(self.halting_states)
        for (state, _), transition in self.transitions.items():
            states.add(state)
            states.add(transition.next_state)
        return tuple(sorted(states))

    def _validate(self) -> None:
        for (state, symbol), transition in self.transitions.items():
            if transition.move not in (LEFT, RIGHT, STAY_PUT):
                raise TuringMachineError(
                    f"{self.name}: invalid move {transition.move!r} in transition "
                    f"({state!r}, {symbol!r})"
                )
            if symbol == self.left_end and transition.write != self.left_end:
                raise TuringMachineError(
                    f"{self.name}: transition ({state!r}, {symbol!r}) overwrites "
                    "the left-end marker"
                )
            if symbol == self.left_end and transition.move == LEFT:
                raise TuringMachineError(
                    f"{self.name}: transition ({state!r}, {symbol!r}) moves left "
                    "of the left-end marker"
                )
            if state in self.halting_states:
                raise TuringMachineError(
                    f"{self.name}: halting state {state!r} has an outgoing transition"
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, value, max_steps: int = 100_000) -> TuringRun:
        """Run the machine on an input sequence.

        Raises :class:`TuringMachineError` if ``max_steps`` is exceeded (the
        machine may genuinely diverge: Theorem 2 relies on that).
        """
        word = as_sequence(value).text
        for symbol in word:
            if symbol not in self.input_alphabet:
                raise TuringMachineError(
                    f"{self.name}: input symbol {symbol!r} is not in the input alphabet"
                )
        tape: List[str] = [self.left_end] + list(word)
        position = 0
        state = self.initial_state
        steps = 0
        while state not in self.halting_states:
            if steps >= max_steps:
                raise TuringMachineError(
                    f"{self.name}: exceeded {max_steps} steps without halting"
                )
            symbol = tape[position]
            transition = self.transitions.get((state, symbol))
            if transition is None:
                raise TuringMachineError(
                    f"{self.name}: no transition from state {state!r} on symbol "
                    f"{symbol!r}"
                )
            tape[position] = transition.write
            if transition.move == RIGHT:
                position += 1
                if position == len(tape):
                    tape.append(self.blank)
            elif transition.move == LEFT:
                if position == 0:
                    raise TuringMachineError(
                        f"{self.name}: attempted to move left of the left-end marker"
                    )
                position -= 1
            state = transition.next_state
            steps += 1
        content = "".join(tape[1:]).rstrip(self.blank)
        return TuringRun(
            halted=True,
            output=Sequence(content),
            steps=steps,
            final_state=state,
            final_tape="".join(tape),
        )

    def compute(self, value, max_steps: int = 100_000) -> Sequence:
        """The sequence function computed by the machine (output only)."""
        return self.run(value, max_steps=max_steps).output

    def halts_on(self, value, max_steps: int = 100_000) -> bool:
        """True if the machine halts within ``max_steps`` on the given input."""
        try:
            self.run(value, max_steps=max_steps)
        except TuringMachineError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"TuringMachine({self.name!r}, states={len(self.states)}, "
            f"transitions={len(self.transitions)})"
        )
