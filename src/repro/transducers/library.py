"""A library of generalized transducers used throughout the paper.

Base (order-1) machines
    * :func:`copy_transducer` -- the identity.
    * :func:`mapping_transducer` -- apply a per-symbol map (drop symbols by
      mapping them to ``""``).
    * :func:`transcribe_transducer` -- DNA -> RNA transcription
      (Example 7.1).
    * :func:`translate_transducer` -- RNA -> protein translation by codons
      (Example 7.1).
    * :func:`complement_transducer` -- complement each symbol (binary or DNA).
    * :func:`erase_transducer` -- delete selected symbols.
    * :func:`append_transducer` -- concatenate ``m`` inputs.
    * :func:`echo_transducer` -- duplicate every symbol of a sequence fed to
      both inputs (Example 1.6 computed safely).

Higher-order machines
    * :func:`square_transducer` -- order 2; output length is quadratic in the
      input length (Example 6.1 / Figure 2).
    * :func:`pair_square_transducer` -- order 2, two inputs; output length is
      quadratic in the total input length (the worst case in the proof of
      Theorem 4).
    * :func:`hyper_transducer` -- order 3; output length is double
      exponential in the input length (Theorem 4, order-3 bound).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.errors import TransducerDefinitionError
from repro.sequences.alphabet import Alphabet, DNA_ALPHABET, RNA_ALPHABET
from repro.transducers.builder import TransducerBuilder
from repro.transducers.machine import (
    CONSUME,
    END_MARKER,
    EPSILON_OUTPUT,
    GeneralizedTransducer,
    STAY,
    )


def _symbols(alphabet: Iterable[str]) -> tuple:
    if isinstance(alphabet, Alphabet):
        return tuple(alphabet.symbols)
    return tuple(dict.fromkeys(alphabet))


# ----------------------------------------------------------------------
# Base transducers
# ----------------------------------------------------------------------
def mapping_transducer(
    name: str,
    mapping: Mapping[str, str],
    alphabet: Optional[Iterable[str]] = None,
) -> GeneralizedTransducer:
    """A one-input machine applying a per-symbol mapping.

    Symbols absent from ``mapping`` are copied unchanged; mapping a symbol to
    ``""`` deletes it.
    """
    symbols = _symbols(alphabet) if alphabet is not None else tuple(mapping)
    builder = TransducerBuilder(name, num_inputs=1, alphabet=symbols)
    for symbol in symbols:
        output = mapping.get(symbol, symbol)
        if len(output) > 1:
            raise TransducerDefinitionError(
                f"{name}: per-symbol maps must produce single symbols, "
                f"got {symbol!r} -> {output!r}"
            )
        builder.add(
            state="q0",
            scanned=(symbol,),
            next_state="q0",
            moves=(CONSUME,),
            output=output,
        )
    return builder.build(initial_state="q0")


def copy_transducer(alphabet: Iterable[str], name: str = "copy") -> GeneralizedTransducer:
    """The identity machine over the given alphabet."""
    return mapping_transducer(name, {}, alphabet=alphabet)


def erase_transducer(
    alphabet: Iterable[str],
    erase: Iterable[str],
    name: str = "erase",
) -> GeneralizedTransducer:
    """Delete every occurrence of the symbols in ``erase``."""
    mapping = {symbol: "" for symbol in erase}
    return mapping_transducer(name, mapping, alphabet=alphabet)


def complement_transducer(
    alphabet: str = "01", name: str = "complement"
) -> GeneralizedTransducer:
    """Complement each symbol.

    For the binary alphabet this swaps ``0`` and ``1``; for the DNA alphabet
    it produces the Watson-Crick complement (a<->t, c<->g).
    """
    symbols = _symbols(alphabet)
    if set(symbols) == {"0", "1"}:
        mapping = {"0": "1", "1": "0"}
    elif set(symbols) == set("acgt"):
        mapping = {"a": "t", "t": "a", "c": "g", "g": "c"}
    else:
        raise TransducerDefinitionError(
            f"no standard complement defined for alphabet {symbols!r}"
        )
    return mapping_transducer(name, mapping, alphabet=symbols)


#: DNA -> RNA transcription rules of Example 7.1.
TRANSCRIPTION_MAP = {"a": "u", "c": "g", "g": "c", "t": "a"}


def transcribe_transducer(name: str = "transcribe") -> GeneralizedTransducer:
    """DNA -> RNA transcription (Example 7.1)."""
    return mapping_transducer(name, TRANSCRIPTION_MAP, alphabet=DNA_ALPHABET)


#: The standard RNA codon table (stop codons map to ``*``), Example 7.1.
CODON_TABLE: Dict[str, str] = {
    "uuu": "F", "uuc": "F", "uua": "L", "uug": "L",
    "cuu": "L", "cuc": "L", "cua": "L", "cug": "L",
    "auu": "I", "auc": "I", "aua": "I", "aug": "M",
    "guu": "V", "guc": "V", "gua": "V", "gug": "V",
    "ucu": "S", "ucc": "S", "uca": "S", "ucg": "S",
    "ccu": "P", "ccc": "P", "cca": "P", "ccg": "P",
    "acu": "T", "acc": "T", "aca": "T", "acg": "T",
    "gcu": "A", "gcc": "A", "gca": "A", "gcg": "A",
    "uau": "Y", "uac": "Y", "uaa": "*", "uag": "*",
    "cau": "H", "cac": "H", "caa": "Q", "cag": "Q",
    "aau": "N", "aac": "N", "aaa": "K", "aag": "K",
    "gau": "D", "gac": "D", "gaa": "E", "gag": "E",
    "ugu": "C", "ugc": "C", "uga": "*", "ugg": "W",
    "cgu": "R", "cgc": "R", "cga": "R", "cgg": "R",
    "agu": "S", "agc": "S", "aga": "R", "agg": "R",
    "ggu": "G", "ggc": "G", "gga": "G", "ggg": "G",
}


def translate_transducer(name: str = "translate") -> GeneralizedTransducer:
    """RNA -> protein translation by codons (Example 7.1).

    The machine's state records the (at most two) ribonucleotides of the
    current partial codon; on reading the third it emits the amino acid and
    returns to the empty-codon state.  Trailing bases that do not complete a
    codon are ignored.
    """
    rna = tuple(RNA_ALPHABET.symbols)
    builder = TransducerBuilder(name, num_inputs=1, alphabet=rna)
    # States are named after the pending partial codon: "", "a", "au", ...
    partials = [""] + [x for x in rna] + [x + y for x in rna for y in rna]
    for partial in partials:
        for symbol in rna:
            if len(partial) < 2:
                builder.add(
                    state=f"codon_{partial}",
                    scanned=(symbol,),
                    next_state=f"codon_{partial + symbol}",
                    moves=(CONSUME,),
                    output=EPSILON_OUTPUT,
                )
            else:
                codon = partial + symbol
                builder.add(
                    state=f"codon_{partial}",
                    scanned=(symbol,),
                    next_state="codon_",
                    moves=(CONSUME,),
                    output=CODON_TABLE[codon],
                )
    return builder.build(initial_state="codon_")


def append_transducer(
    alphabet: Iterable[str],
    num_inputs: int = 2,
    name: Optional[str] = None,
) -> GeneralizedTransducer:
    """Concatenate ``num_inputs`` input sequences, left to right.

    This is the paper's ``T_append`` (Section 7.1): plain concatenation as a
    base transducer.  The machine copies tape 1 to the output, then tape 2,
    and so on; in state ``copy_i`` every tape ``j < i`` has already been
    consumed (its head scans the end marker).
    """
    symbols = _symbols(alphabet)
    if name is None:
        name = f"append{num_inputs}" if num_inputs != 2 else "append"
    if num_inputs < 2:
        raise TransducerDefinitionError("append needs at least two inputs")
    builder = TransducerBuilder(name, num_inputs=num_inputs, alphabet=symbols)
    extended = symbols + (END_MARKER,)

    def later_combos(start: int):
        """All combinations of scanned symbols for heads > start."""
        from itertools import product as _product

        count = num_inputs - start - 1
        return _product(extended, repeat=count)

    for current in range(num_inputs):
        state = f"copy_{current}"
        for later in later_combos(current):
            # Case 1: the current tape still has symbols -- copy one.
            for symbol in symbols:
                scanned = (
                    (END_MARKER,) * current + (symbol,) + tuple(later)
                )
                moves = [STAY] * num_inputs
                moves[current] = CONSUME
                builder.add(
                    state=state,
                    scanned=scanned,
                    next_state=state,
                    moves=tuple(moves),
                    output=symbol,
                )
            # Case 2: the current tape is exhausted -- start copying the
            # first later tape that still has symbols.
            scanned_prefix = (END_MARKER,) * (current + 1)
            later = tuple(later)
            scanned = scanned_prefix + later
            next_head = None
            for offset, symbol in enumerate(later):
                if symbol != END_MARKER:
                    next_head = current + 1 + offset
                    break
            if next_head is None:
                continue  # everything consumed: the machine stops here
            moves = [STAY] * num_inputs
            moves[next_head] = CONSUME
            builder.add(
                state=state,
                scanned=scanned,
                next_state=f"copy_{next_head}",
                moves=tuple(moves),
                output=scanned[next_head],
            )
    return builder.build(initial_state="copy_0")


def echo_transducer(alphabet: Iterable[str], name: str = "echo") -> GeneralizedTransducer:
    """Duplicate every symbol (``abcd -> aabbccdd``) -- Example 1.6, safely.

    The machine has two inputs; feeding it the *same* sequence on both tapes
    and alternating between them yields the echo sequence with one emitted
    symbol per step, which an ordinary (order-1) transducer can do.
    """
    symbols = _symbols(alphabet)
    builder = TransducerBuilder(name, num_inputs=2, alphabet=symbols)
    extended = symbols + (END_MARKER,)
    for a in extended:
        for b in extended:
            if a == END_MARKER and b == END_MARKER:
                continue
            # State "first": emit from tape 1 (falling back to tape 2).
            if a != END_MARKER:
                builder.add(
                    state="first",
                    scanned=(a, b),
                    next_state="second",
                    moves=(CONSUME, STAY),
                    output=a,
                )
            else:
                builder.add(
                    state="first",
                    scanned=(a, b),
                    next_state="first",
                    moves=(STAY, CONSUME),
                    output=b,
                )
            # State "second": emit from tape 2 (falling back to tape 1).
            if b != END_MARKER:
                builder.add(
                    state="second",
                    scanned=(a, b),
                    next_state="first",
                    moves=(STAY, CONSUME),
                    output=b,
                )
            else:
                builder.add(
                    state="second",
                    scanned=(a, b),
                    next_state="second",
                    moves=(CONSUME, STAY),
                    output=a,
                )
    return builder.build(initial_state="first")


# ----------------------------------------------------------------------
# Higher-order transducers
# ----------------------------------------------------------------------
def square_transducer(
    alphabet: Iterable[str], name: str = "square"
) -> GeneralizedTransducer:
    """The order-2 machine of Example 6.1 / Figure 2.

    At every step it consumes one input symbol and calls an ``append``
    subtransducer on *(input, current output)*, so after ``n`` steps the
    output consists of ``n`` copies of the input -- length ``n^2``.
    """
    symbols = _symbols(alphabet)
    subtransducer = append_transducer(symbols, num_inputs=2, name=f"{name}_append")
    builder = TransducerBuilder(name, num_inputs=1, alphabet=symbols)
    for symbol in symbols:
        builder.add(
            state="q0",
            scanned=(symbol,),
            next_state="q0",
            moves=(CONSUME,),
            output=subtransducer,
        )
    return builder.build(initial_state="q0")


def pair_square_transducer(
    alphabet: Iterable[str], name: str = "pair_square"
) -> GeneralizedTransducer:
    """An order-2, two-input machine whose output length is quadratic in the
    *total* input length -- the worst case used in the proof of Theorem 4.

    At every step it consumes one symbol (from tape 1 while it lasts, then
    from tape 2) and calls a three-input ``append`` on *(input1, input2,
    current output)*; after all ``n1 + n2`` steps the output is
    ``(input1 input2)`` repeated ``n1 + n2`` times.
    """
    symbols = _symbols(alphabet)
    subtransducer = append_transducer(symbols, num_inputs=3, name=f"{name}_append")
    builder = TransducerBuilder(name, num_inputs=2, alphabet=symbols)
    extended = symbols + (END_MARKER,)
    for a in extended:
        for b in extended:
            if a == END_MARKER and b == END_MARKER:
                continue
            if a != END_MARKER:
                moves = (CONSUME, STAY)
            else:
                moves = (STAY, CONSUME)
            builder.add(
                state="q0",
                scanned=(a, b),
                next_state="q0",
                moves=moves,
                output=subtransducer,
            )
    return builder.build(initial_state="q0")


def hyper_transducer(
    alphabet: Iterable[str], name: str = "hyper"
) -> GeneralizedTransducer:
    """An order-3 machine with double-exponential output growth (Theorem 4).

    At every step it consumes one input symbol and calls the order-2
    :func:`pair_square_transducer` on *(input, current output)*, so the
    output length follows the recurrence ``L_i = (n + L_{i-1})^2`` of the
    Theorem 4 proof and reaches roughly ``n^(2^n)`` after ``n`` steps.
    """
    symbols = _symbols(alphabet)
    subtransducer = pair_square_transducer(symbols, name=f"{name}_square")
    builder = TransducerBuilder(name, num_inputs=1, alphabet=symbols)
    for symbol in symbols:
        builder.add(
            state="q0",
            scanned=(symbol,),
            next_state="q0",
            moves=(CONSUME,),
            output=subtransducer,
        )
    return builder.build(initial_state="q0")
