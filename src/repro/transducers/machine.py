"""The generalized sequence transducer machine model (Definition 7).

A generalized ``m``-input sequence transducer of order ``k`` is a tuple
``(K, q0, Sigma, delta)`` where ``delta`` is a partial map

    K x (Sigma ∪ {END})^m  ->  K x {STAY, CONSUME}^m x (Sigma ∪ {eps} ∪ T^{k-1})

subject to three restrictions (item 5 of Definition 7):

1. every transition consumes at least one input symbol;
2. a head scanning the end-of-tape marker cannot be told to consume;
3. a subtransducer used as an output action must have ``m + 1`` inputs (and,
   being drawn from ``T^{k-1}``, strictly smaller order).

Execution (Section 6.1): the machine starts in ``q0`` with all heads on the
first symbols and an empty output.  At each step the scanned symbols select
a transition; the output action either appends a symbol (or nothing) to the
output tape or runs a subtransducer on *(copies of the machine's inputs,
current output)* whose output then **overwrites** the output tape; finally
the designated heads advance.  The machine stops when every head scans the
end marker; it is *stuck* (an error) if no transition is defined earlier.
Cost is the number of transitions performed by the machine and all of its
subcalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.sequences import Sequence, as_sequence

#: End-of-tape marker appended (conceptually) to every input tape.
END_MARKER = "⊣"

#: Head command: consume one symbol (move right).
CONSUME = ">"

#: Head command: stay put.
STAY = "-"

#: Output action meaning "append nothing".
EPSILON_OUTPUT = ""


class _Wildcard:
    """Matches any scanned symbol in a wildcard transition pattern."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "WILDCARD"


#: Wildcard marker for compactly-specified transitions.  A wildcard entry is
#: pure shorthand for the family of exact entries obtained by substituting
#: every possible symbol; Definition 7 is unchanged.
WILDCARD = _Wildcard()

OutputAction = Union[str, "GeneralizedTransducer"]


@dataclass(frozen=True)
class Transition:
    """One entry of the transition function.

    ``moves`` has one command per input head (:data:`CONSUME` or
    :data:`STAY`); ``output`` is a single symbol, :data:`EPSILON_OUTPUT`, or
    a subtransducer.
    """

    next_state: str
    moves: Tuple[str, ...]
    output: OutputAction = EPSILON_OUTPUT

    def calls_subtransducer(self) -> bool:
        return isinstance(self.output, GeneralizedTransducer)


@dataclass
class TraceStep:
    """One step of a transducer run (used by the Figure 2 reproduction)."""

    step: int
    state: str
    scanned: Tuple[str, ...]
    positions: Tuple[int, ...]
    output_before: str
    output_after: str
    operation: str


@dataclass
class TransducerRun:
    """The result of running a transducer.

    ``steps`` counts only the top-level machine's transitions; ``total_steps``
    also counts every subtransducer transition (the paper's cost measure).
    """

    output: Sequence
    steps: int
    total_steps: int
    trace: List[TraceStep] = field(default_factory=list)


class GeneralizedTransducer:
    """A deterministic generalized sequence transducer (Definition 7)."""

    def __init__(
        self,
        name: str,
        num_inputs: int,
        alphabet: Iterable[str],
        initial_state: str,
        transitions: Mapping[Tuple[str, Tuple[str, ...]], Transition],
        states: Optional[Iterable[str]] = None,
        wildcard_transitions: Optional[
            Iterable[Tuple[str, Tuple[object, ...], Transition]]
        ] = None,
    ):
        if num_inputs < 1:
            raise TransducerDefinitionError("a transducer needs at least one input")
        self.name = name
        self.num_inputs = num_inputs
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self.initial_state = initial_state
        self.transitions: Dict[Tuple[str, Tuple[str, ...]], Transition] = dict(transitions)
        # Wildcard entries, grouped by state and kept in declaration order.
        # They are a compact shorthand for families of exact entries; a
        # wildcard entry does not apply when it would consume a head that
        # currently scans the end marker (restriction (ii) stays intact).
        self.wildcard_transitions: Dict[str, List[Tuple[Tuple[object, ...], Transition]]] = {}
        for state, pattern, transition in wildcard_transitions or ():
            self.wildcard_transitions.setdefault(state, []).append(
                (tuple(pattern), transition)
            )
        declared_states = set(states) if states is not None else set()
        declared_states.add(initial_state)
        for (state, _), transition in self.transitions.items():
            declared_states.add(state)
            declared_states.add(transition.next_state)
        for state, entries in self.wildcard_transitions.items():
            declared_states.add(state)
            for _, transition in entries:
                declared_states.add(transition.next_state)
        self.states = tuple(sorted(declared_states))
        self._validate()

    # ------------------------------------------------------------------
    # Validation and static properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for (state, scanned), transition in self.transitions.items():
            if len(scanned) != self.num_inputs:
                raise TransducerDefinitionError(
                    f"{self.name}: transition key {scanned!r} does not have "
                    f"{self.num_inputs} scanned symbols"
                )
            if len(transition.moves) != self.num_inputs:
                raise TransducerDefinitionError(
                    f"{self.name}: transition from {state!r} has "
                    f"{len(transition.moves)} head commands, expected {self.num_inputs}"
                )
            if not any(move == CONSUME for move in transition.moves):
                raise TransducerDefinitionError(
                    f"{self.name}: transition from {state!r} on {scanned!r} "
                    "consumes no input symbol (restriction (i) of Definition 7)"
                )
            for symbol, move in zip(scanned, transition.moves):
                if symbol == END_MARKER and move == CONSUME:
                    raise TransducerDefinitionError(
                        f"{self.name}: transition from {state!r} moves a head "
                        "past the end-of-tape marker (restriction (ii))"
                    )
            output = transition.output
            if isinstance(output, GeneralizedTransducer):
                if output.num_inputs != self.num_inputs + 1:
                    raise TransducerDefinitionError(
                        f"{self.name}: subtransducer {output.name!r} has "
                        f"{output.num_inputs} inputs, expected {self.num_inputs + 1} "
                        "(restriction (iii))"
                    )
            elif not isinstance(output, str) or len(output) > 1:
                raise TransducerDefinitionError(
                    f"{self.name}: output action must be a single symbol, the "
                    f"empty string or a subtransducer, got {output!r}"
                )
        for state, entries in self.wildcard_transitions.items():
            for pattern, transition in entries:
                if len(pattern) != self.num_inputs or len(transition.moves) != self.num_inputs:
                    raise TransducerDefinitionError(
                        f"{self.name}: wildcard transition in state {state!r} has "
                        f"the wrong number of symbols or head commands"
                    )
                if not any(move == CONSUME for move in transition.moves):
                    raise TransducerDefinitionError(
                        f"{self.name}: wildcard transition in state {state!r} "
                        "consumes no input symbol"
                    )
                output = transition.output
                if isinstance(output, GeneralizedTransducer):
                    if output.num_inputs != self.num_inputs + 1:
                        raise TransducerDefinitionError(
                            f"{self.name}: subtransducer {output.name!r} has "
                            f"{output.num_inputs} inputs, expected {self.num_inputs + 1}"
                        )
                elif not isinstance(output, str) or len(output) > 1:
                    raise TransducerDefinitionError(
                        f"{self.name}: invalid output action {output!r} in a "
                        "wildcard transition"
                    )

    def _all_transitions(self) -> Iterable[Transition]:
        yield from self.transitions.values()
        for entries in self.wildcard_transitions.values():
            for _, transition in entries:
                yield transition

    @property
    def order(self) -> int:
        """The order ``k``: 1 + the maximum order of any subtransducer used."""
        sub_orders = [
            transition.output.order
            for transition in self._all_transitions()
            if isinstance(transition.output, GeneralizedTransducer)
        ]
        return 1 + max(sub_orders, default=0)

    def subtransducers(self) -> List["GeneralizedTransducer"]:
        """The distinct subtransducers invoked by this machine (direct only)."""
        seen: Dict[str, GeneralizedTransducer] = {}
        for transition in self._all_transitions():
            if isinstance(transition.output, GeneralizedTransducer):
                seen.setdefault(transition.output.name, transition.output)
        return list(seen.values())

    def all_transducers(self) -> List["GeneralizedTransducer"]:
        """This machine and every machine reachable through subcalls."""
        collected: Dict[str, GeneralizedTransducer] = {}

        def visit(machine: GeneralizedTransducer) -> None:
            if machine.name in collected:
                return
            collected[machine.name] = machine
            for sub in machine.subtransducers():
                visit(sub)

        visit(self)
        return list(collected.values())

    def __repr__(self) -> str:
        return (
            f"GeneralizedTransducer({self.name!r}, inputs={self.num_inputs}, "
            f"order={self.order}, states={len(self.states)}, "
            f"transitions={len(self.transitions)})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __call__(self, *inputs) -> Sequence:
        """Run the machine and return only its output sequence."""
        return self.run(*inputs).output

    def run(self, *inputs, trace: bool = False) -> TransducerRun:
        """Run the machine on the given input sequences.

        Raises :class:`TransducerRuntimeError` if the machine gets stuck
        before consuming all of its input.
        """
        if len(inputs) != self.num_inputs:
            raise TransducerRuntimeError(
                f"{self.name}: expected {self.num_inputs} inputs, got {len(inputs)}"
            )
        tapes = [as_sequence(value).text + END_MARKER for value in inputs]
        positions = [0] * self.num_inputs
        state = self.initial_state
        output: List[str] = []
        steps = 0
        total_steps = 0
        trace_steps: List[TraceStep] = []

        while True:
            scanned = tuple(tape[position] for tape, position in zip(tapes, positions))
            if all(symbol == END_MARKER for symbol in scanned):
                break
            transition = self.transitions.get((state, scanned))
            if transition is None:
                transition = self._match_wildcard(state, scanned)
            if transition is None:
                raise TransducerRuntimeError(
                    f"{self.name}: stuck in state {state!r} scanning {scanned!r}"
                )
            steps += 1
            total_steps += 1
            output_before = "".join(output)

            if isinstance(transition.output, GeneralizedTransducer):
                sub_inputs = [tape[:-1] for tape in tapes] + [output_before]
                sub_run = transition.output.run(*sub_inputs, trace=False)
                output = list(sub_run.output.text)
                total_steps += sub_run.total_steps
                operation = f"call {transition.output.name}"
            elif transition.output:
                output.append(transition.output)
                operation = f"emit {transition.output!r}"
            else:
                operation = "emit nothing"

            if trace:
                trace_steps.append(
                    TraceStep(
                        step=steps,
                        state=state,
                        scanned=scanned,
                        positions=tuple(position + 1 for position in positions),
                        output_before=output_before,
                        output_after="".join(output),
                        operation=operation,
                    )
                )

            for head, move in enumerate(transition.moves):
                if move == CONSUME:
                    positions[head] += 1
            state = transition.next_state

        return TransducerRun(
            output=Sequence("".join(output)),
            steps=steps,
            total_steps=total_steps,
            trace=trace_steps,
        )

    def _match_wildcard(
        self, state: str, scanned: Tuple[str, ...]
    ) -> Optional[Transition]:
        """Find the first wildcard entry matching the scanned symbols.

        A wildcard entry is skipped when it would consume a head that is
        scanning the end marker, so restriction (ii) of Definition 7 is
        preserved even for compactly-specified machines.
        """
        for pattern, transition in self.wildcard_transitions.get(state, ()):
            matches = True
            for expected, actual, move in zip(pattern, scanned, transition.moves):
                if expected is not WILDCARD and expected != actual:
                    matches = False
                    break
                if actual == END_MARKER and move == CONSUME:
                    matches = False
                    break
            if matches:
                return transition
        return None

    # ------------------------------------------------------------------
    # Conversion helpers
    # ------------------------------------------------------------------
    def transition_items(self) -> List[Tuple[str, Tuple[str, ...], Transition]]:
        """The transition function as a sorted list (used by the Theorem 7
        translation to emit ``delta`` facts).

        Machines specified with wildcard entries cannot be exported this way;
        the Theorem 7 translation requires a fully explicit table.
        """
        if self.wildcard_transitions:
            raise TransducerDefinitionError(
                f"{self.name}: transition_items() requires an explicit "
                "transition table (this machine uses wildcard entries)"
            )
        items = [
            (state, scanned, transition)
            for (state, scanned), transition in self.transitions.items()
        ]
        return sorted(items, key=lambda item: (item[0], item[1]))
