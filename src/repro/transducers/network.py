"""Acyclic transducer networks (Section 6.2 of the paper).

A network connects transducers so that the output of one machine feeds
inputs of others.  Only acyclic networks are considered (the paper restricts
to them to keep computations finite).  Two parameters govern the complexity
of the function a network computes (Theorem 4):

* the **diameter**: the maximum length of a path through the network, and
* the **order**: the maximum order of any transducer in it.

Order-2 networks compute exactly the PTIME sequence functions (Theorem 5);
order-3 networks compute exactly the elementary sequence functions
(Theorem 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence as TypingSequence, Tuple, Union

import networkx as nx

from repro.errors import NetworkError
from repro.sequences import Sequence, as_sequence
from repro.transducers.machine import GeneralizedTransducer

#: A wire source: either a network input (by name) or a node's output.
WireSource = Union[str, "NetworkNode"]


@dataclass
class NetworkNode:
    """One transducer instance inside a network.

    ``inputs`` lists, for each input tape of the transducer, where its
    content comes from: the name of a network input or another node.
    """

    name: str
    transducer: GeneralizedTransducer
    inputs: List[WireSource]

    def __post_init__(self) -> None:
        if len(self.inputs) != self.transducer.num_inputs:
            raise NetworkError(
                f"node {self.name!r}: transducer {self.transducer.name!r} has "
                f"{self.transducer.num_inputs} inputs but {len(self.inputs)} wires were given"
            )


class TransducerNetwork:
    """An acyclic network of generalized transducers.

    Parameters
    ----------
    input_names:
        Names of the network inputs.
    output:
        The node whose output is the network output (single-output networks
        compute sequence functions, the case analysed by Theorems 5 and 6).
    nodes:
        All nodes of the network (the output node may be included or not).
    """

    def __init__(
        self,
        input_names: TypingSequence[str],
        nodes: Iterable[NetworkNode],
        output: NetworkNode,
    ):
        self.input_names = tuple(input_names)
        node_list = list(nodes)
        if output not in node_list:
            node_list.append(output)
        names = [node.name for node in node_list]
        if len(set(names)) != len(names):
            raise NetworkError("duplicate node names in network")
        self.nodes: Dict[str, NetworkNode] = {node.name: node for node in node_list}
        self.output_node = output
        self._graph = self._build_graph()
        if not nx.is_directed_acyclic_graph(self._graph):
            raise NetworkError("transducer networks must be acyclic")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for name in self.input_names:
            graph.add_node(("input", name))
        for node in self.nodes.values():
            graph.add_node(("node", node.name))
        for node in self.nodes.values():
            for source in node.inputs:
                if isinstance(source, str):
                    if source not in self.input_names:
                        raise NetworkError(
                            f"node {node.name!r} reads unknown network input {source!r}"
                        )
                    graph.add_edge(("input", source), ("node", node.name))
                elif isinstance(source, NetworkNode):
                    if source.name not in self.nodes:
                        raise NetworkError(
                            f"node {node.name!r} reads output of unknown node {source.name!r}"
                        )
                    graph.add_edge(("node", source.name), ("node", node.name))
                else:
                    raise NetworkError(f"invalid wire source {source!r}")
        return graph

    @property
    def order(self) -> int:
        """The maximum order of any transducer in the network."""
        return max(node.transducer.order for node in self.nodes.values())

    @property
    def diameter(self) -> int:
        """The maximum number of transducer nodes on any path."""
        # Longest path in a DAG, counted in transducer nodes.
        longest = 0
        lengths: Dict[Tuple[str, str], int] = {}
        for vertex in nx.topological_sort(self._graph):
            kind, _ = vertex
            base = 1 if kind == "node" else 0
            best_predecessor = 0
            for predecessor in self._graph.predecessors(vertex):
                best_predecessor = max(best_predecessor, lengths[predecessor])
            lengths[vertex] = base + best_predecessor
            longest = max(longest, lengths[vertex])
        return longest

    def __repr__(self) -> str:
        return (
            f"TransducerNetwork(inputs={list(self.input_names)}, "
            f"nodes={len(self.nodes)}, order={self.order}, diameter={self.diameter})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def compute(self, **inputs) -> Sequence:
        """Run the network on named inputs and return the output sequence."""
        missing = [name for name in self.input_names if name not in inputs]
        if missing:
            raise NetworkError(f"missing network inputs: {missing}")
        values: Dict[Tuple[str, str], Sequence] = {
            ("input", name): as_sequence(inputs[name]) for name in self.input_names
        }
        for vertex in nx.topological_sort(self._graph):
            kind, name = vertex
            if kind == "input":
                continue
            node = self.nodes[name]
            argument_values = []
            for source in node.inputs:
                if isinstance(source, str):
                    argument_values.append(values[("input", source)])
                else:
                    argument_values.append(values[("node", source.name)])
            values[vertex] = node.transducer(*argument_values)
        return values[("node", self.output_node.name)]

    def compute_function(self, value) -> Sequence:
        """Run a single-input network as a sequence function."""
        if len(self.input_names) != 1:
            raise NetworkError(
                "compute_function requires a network with exactly one input"
            )
        return self.compute(**{self.input_names[0]: value})


def chain(
    transducers: TypingSequence[GeneralizedTransducer],
    input_name: str = "x",
) -> TransducerNetwork:
    """Build a simple serial network: each machine feeds the next.

    Every machine in the chain must have exactly one input; the diameter of
    the resulting network equals the number of machines.
    """
    if not transducers:
        raise NetworkError("a chain needs at least one transducer")
    nodes: List[NetworkNode] = []
    previous: Optional[NetworkNode] = None
    for index, transducer in enumerate(transducers):
        if transducer.num_inputs != 1:
            raise NetworkError("chain() only supports one-input transducers")
        source: WireSource = input_name if previous is None else previous
        node = NetworkNode(
            name=f"stage_{index}", transducer=transducer, inputs=[source]
        )
        nodes.append(node)
        previous = node
    return TransducerNetwork([input_name], nodes, nodes[-1])
