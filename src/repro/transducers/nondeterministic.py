"""Nondeterministic generalized sequence transducers.

Definition 7 of the paper defines *deterministic* generalized transducers
and then remarks that the definition "can easily be generalized to allow
nondeterministic computations", which is how it subsumes earlier transducer
models such as the generic a-transducers of Ginsburg and Wang [16] and the
multi-tape automata of alignment logic [20].  This module implements that
generalization.

A nondeterministic generalized transducer differs from the deterministic
machine of :mod:`repro.transducers.machine` in one way only: the transition
function maps a ``(state, scanned symbols)`` pair to a *set* of transitions
instead of at most one.  Every individual transition still obeys the three
restrictions of Definition 7 (consume at least one symbol, never move past
an end marker, subtransducers take ``m + 1`` inputs), so every computation
branch terminates and the machine defines a *relation* between input tuples
and output sequences rather than a function.

The run semantics enumerates all computation branches (breadth-first over a
work list); :meth:`NondeterministicTransducer.outputs` returns the set of
output sequences, and :meth:`accepts` treats the machine as an acceptor
(some branch consumes all input).  Deterministic machines embed trivially
(:func:`from_deterministic`), and a nondeterministic machine whose
transition relation happens to be single-valued can be lowered back to a
deterministic one (:meth:`NondeterministicTransducer.determinize_trivially`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple, Union

from repro.errors import TransducerDefinitionError, TransducerRuntimeError
from repro.sequences import Sequence, as_sequence
from repro.transducers.machine import (
    CONSUME,
    END_MARKER,
    EPSILON_OUTPUT,
    GeneralizedTransducer,
    STAY,
    Transition,
)

#: Sub-machines callable from a nondeterministic transition: either another
#: nondeterministic machine or a deterministic one.
SubMachine = Union["NondeterministicTransducer", GeneralizedTransducer]


@dataclass(frozen=True)
class NTransition:
    """One nondeterministic transition choice.

    Identical in shape to :class:`repro.transducers.machine.Transition`; the
    output action may additionally be a nondeterministic subtransducer, in
    which case every output of the subtransducer spawns its own branch.
    """

    next_state: str
    moves: Tuple[str, ...]
    output: Union[str, SubMachine] = EPSILON_OUTPUT

    def calls_subtransducer(self) -> bool:
        return not isinstance(self.output, str)


@dataclass(frozen=True)
class _Configuration:
    """A machine configuration: state, head positions, current output."""

    state: str
    positions: Tuple[int, ...]
    output: str


class NondeterministicTransducer:
    """A nondeterministic generalized sequence transducer.

    Parameters
    ----------
    name:
        A human-readable machine name.
    num_inputs:
        Number of input tapes (``m`` in Definition 7).
    alphabet:
        The finite tape alphabet.
    initial_state:
        The machine's initial control state.
    transitions:
        A mapping from ``(state, scanned symbols)`` to an iterable of
        :class:`NTransition` choices.
    max_branches:
        A safety valve on the number of simultaneously live configurations;
        the machine model itself always terminates (every branch consumes
        one symbol per step) but the number of branches can be exponential.
    """

    def __init__(
        self,
        name: str,
        num_inputs: int,
        alphabet: Iterable[str],
        initial_state: str,
        transitions: Mapping[Tuple[str, Tuple[str, ...]], Iterable[NTransition]],
        max_branches: int = 100_000,
    ):
        if num_inputs < 1:
            raise TransducerDefinitionError("a transducer needs at least one input")
        self.name = name
        self.num_inputs = num_inputs
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self.initial_state = initial_state
        self.max_branches = max_branches
        self.transitions: Dict[Tuple[str, Tuple[str, ...]], Tuple[NTransition, ...]] = {
            key: tuple(choices) for key, choices in transitions.items()
        }
        self._validate()

    # ------------------------------------------------------------------
    # Validation and static properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for (state, scanned), choices in self.transitions.items():
            if len(scanned) != self.num_inputs:
                raise TransducerDefinitionError(
                    f"{self.name}: transition key {scanned!r} does not have "
                    f"{self.num_inputs} scanned symbols"
                )
            for choice in choices:
                if len(choice.moves) != self.num_inputs:
                    raise TransducerDefinitionError(
                        f"{self.name}: transition from {state!r} has "
                        f"{len(choice.moves)} head commands, expected {self.num_inputs}"
                    )
                if not any(move == CONSUME for move in choice.moves):
                    raise TransducerDefinitionError(
                        f"{self.name}: transition from {state!r} on {scanned!r} "
                        "consumes no input symbol (restriction (i))"
                    )
                for symbol, move in zip(scanned, choice.moves):
                    if symbol == END_MARKER and move == CONSUME:
                        raise TransducerDefinitionError(
                            f"{self.name}: transition from {state!r} moves a head "
                            "past the end-of-tape marker (restriction (ii))"
                        )
                output = choice.output
                if isinstance(output, (NondeterministicTransducer, GeneralizedTransducer)):
                    if output.num_inputs != self.num_inputs + 1:
                        raise TransducerDefinitionError(
                            f"{self.name}: subtransducer {output.name!r} has "
                            f"{output.num_inputs} inputs, expected {self.num_inputs + 1} "
                            "(restriction (iii))"
                        )
                elif not isinstance(output, str) or len(output) > 1:
                    raise TransducerDefinitionError(
                        f"{self.name}: output action must be a single symbol, the "
                        f"empty string or a subtransducer, got {output!r}"
                    )

    @property
    def order(self) -> int:
        """The order ``k``: 1 + the maximum order of any subtransducer used."""
        sub_orders = [
            choice.output.order
            for choices in self.transitions.values()
            for choice in choices
            if not isinstance(choice.output, str)
        ]
        return 1 + max(sub_orders, default=0)

    def is_deterministic(self) -> bool:
        """True when every transition key admits at most one choice."""
        return all(len(choices) <= 1 for choices in self.transitions.values())

    def __repr__(self) -> str:
        total_choices = sum(len(choices) for choices in self.transitions.values())
        return (
            f"NondeterministicTransducer({self.name!r}, inputs={self.num_inputs}, "
            f"order={self.order}, keys={len(self.transitions)}, choices={total_choices})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def outputs(self, *inputs) -> FrozenSet[Sequence]:
        """All output sequences over every accepting computation branch.

        A branch is accepting when it consumes all of its input (every head
        scans the end marker).  Branches that get stuck are dropped; if no
        branch accepts, the result is the empty set.
        """
        return frozenset(Sequence(text) for text in self._accepting_outputs(inputs))

    def accepts(self, *inputs) -> bool:
        """Treat the machine as an acceptor of input tuples.

        This is the usage of multi-tape automata in alignment logic [20]: a
        tuple of sequences is accepted when some computation branch consumes
        all of its input.
        """
        for _ in self._accepting_outputs(inputs):
            return True
        return False

    def __call__(self, *inputs) -> Sequence:
        """Run the machine as a function; requires exactly one output.

        Raises :class:`TransducerRuntimeError` when the machine is being
        used as a function but the input admits zero or several outputs.
        """
        results = sorted(self.outputs(*inputs))
        if len(results) != 1:
            raise TransducerRuntimeError(
                f"{self.name}: expected exactly one output, got {len(results)}"
            )
        return results[0]

    def _accepting_outputs(self, inputs: Tuple[object, ...]) -> Iterable[str]:
        if len(inputs) != self.num_inputs:
            raise TransducerRuntimeError(
                f"{self.name}: expected {self.num_inputs} inputs, got {len(inputs)}"
            )
        tapes = [as_sequence(value).text + END_MARKER for value in inputs]
        start = _Configuration(
            state=self.initial_state,
            positions=(0,) * self.num_inputs,
            output="",
        )
        frontier: List[_Configuration] = [start]
        seen: Set[_Configuration] = {start}
        emitted: Set[str] = set()

        while frontier:
            if len(frontier) > self.max_branches:
                raise TransducerRuntimeError(
                    f"{self.name}: more than {self.max_branches} live branches"
                )
            configuration = frontier.pop()
            scanned = tuple(
                tape[position]
                for tape, position in zip(tapes, configuration.positions)
            )
            if all(symbol == END_MARKER for symbol in scanned):
                if configuration.output not in emitted:
                    emitted.add(configuration.output)
                    yield configuration.output
                continue
            for choice in self.transitions.get((configuration.state, scanned), ()):
                for output in self._apply_output(choice, tapes, configuration.output):
                    positions = tuple(
                        position + (1 if move == CONSUME else 0)
                        for position, move in zip(configuration.positions, choice.moves)
                    )
                    successor = _Configuration(
                        state=choice.next_state, positions=positions, output=output
                    )
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)

    def _apply_output(
        self, choice: NTransition, tapes: List[str], output: str
    ) -> Iterable[str]:
        """The possible output tapes after applying one transition choice."""
        action = choice.output
        if isinstance(action, str):
            yield output + action
            return
        sub_inputs = [tape[:-1] for tape in tapes] + [output]
        if isinstance(action, GeneralizedTransducer):
            yield action.run(*sub_inputs).output.text
            return
        for result in action.outputs(*sub_inputs):
            yield as_sequence(result).text

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def determinize_trivially(self) -> GeneralizedTransducer:
        """Lower a single-valued machine back to a deterministic one.

        Only possible when every transition key has exactly one choice and
        every subtransducer is itself deterministic; otherwise a
        :class:`TransducerDefinitionError` is raised.  (General
        determinization of transducers is impossible: a nondeterministic
        transducer can define a relation that is not a function.)
        """
        lowered: Dict[Tuple[str, Tuple[str, ...]], Transition] = {}
        for key, choices in self.transitions.items():
            if len(choices) != 1:
                raise TransducerDefinitionError(
                    f"{self.name}: key {key!r} has {len(choices)} choices; "
                    "only single-valued machines can be lowered"
                )
            choice = choices[0]
            output = choice.output
            if isinstance(output, NondeterministicTransducer):
                output = output.determinize_trivially()
            lowered[key] = Transition(
                next_state=choice.next_state, moves=choice.moves, output=output
            )
        return GeneralizedTransducer(
            name=self.name,
            num_inputs=self.num_inputs,
            alphabet=self.alphabet,
            initial_state=self.initial_state,
            transitions=lowered,
        )


def from_deterministic(machine: GeneralizedTransducer) -> NondeterministicTransducer:
    """Embed a deterministic generalized transducer into the nondeterministic
    model (every transition becomes a singleton choice set).

    Machines that use wildcard entries are expanded to an explicit table
    first, so the embedding requires a finite alphabet (which Definition 7
    assumes anyway).
    """
    transitions: Dict[Tuple[str, Tuple[str, ...]], List[NTransition]] = {}
    for (state, scanned), transition in machine.transitions.items():
        transitions.setdefault((state, scanned), []).append(
            NTransition(
                next_state=transition.next_state,
                moves=transition.moves,
                output=transition.output,
            )
        )
    # Expand wildcard entries over the explicit symbol space.
    if machine.wildcard_transitions:
        from itertools import product

        symbol_space = tuple(machine.alphabet) + (END_MARKER,)
        for state, entries in machine.wildcard_transitions.items():
            for pattern, transition in entries:
                for scanned in product(symbol_space, repeat=machine.num_inputs):
                    if (state, scanned) in transitions:
                        continue
                    matches = True
                    for expected, actual, move in zip(pattern, scanned, transition.moves):
                        wildcard = type(expected).__name__ == "_Wildcard"
                        if not wildcard and expected != actual:
                            matches = False
                            break
                        if actual == END_MARKER and move == CONSUME:
                            matches = False
                            break
                    if matches:
                        transitions[(state, scanned)] = [
                            NTransition(
                                next_state=transition.next_state,
                                moves=transition.moves,
                                output=transition.output,
                            )
                        ]
    return NondeterministicTransducer(
        name=machine.name,
        num_inputs=machine.num_inputs,
        alphabet=machine.alphabet,
        initial_state=machine.initial_state,
        transitions=transitions,
    )


class NondeterministicBuilder:
    """Incrementally build a :class:`NondeterministicTransducer`.

    Unlike :class:`repro.transducers.builder.TransducerBuilder`, adding a
    second transition for the same ``(state, scanned)`` key is not an error:
    it simply adds another nondeterministic choice.
    """

    def __init__(self, name: str, num_inputs: int, alphabet: Iterable[str]):
        self.name = name
        self.num_inputs = num_inputs
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self._transitions: Dict[Tuple[str, Tuple[str, ...]], List[NTransition]] = {}

    def add(
        self,
        state: str,
        scanned: Iterable[str],
        next_state: str,
        moves: Iterable[str],
        output: Union[str, SubMachine] = EPSILON_OUTPUT,
    ) -> NondeterministicBuilder:
        """Add one transition choice for the given key."""
        key = (state, tuple(scanned))
        self._transitions.setdefault(key, []).append(
            NTransition(next_state=next_state, moves=tuple(moves), output=output)
        )
        return self

    def build(
        self, initial_state: str, max_branches: int = 100_000
    ) -> NondeterministicTransducer:
        return NondeterministicTransducer(
            name=self.name,
            num_inputs=self.num_inputs,
            alphabet=self.alphabet,
            initial_state=initial_state,
            transitions=self._transitions,
            max_branches=max_branches,
        )


# ----------------------------------------------------------------------
# Small library of nondeterministic machines
# ----------------------------------------------------------------------
def guess_subsequence_transducer(
    alphabet: Iterable[str], name: str = "guess_subsequence"
) -> NondeterministicTransducer:
    """Nondeterministically erase symbols: the outputs on input ``s`` are all
    (not necessarily contiguous) subsequences of ``s``.

    Every step either copies or drops the scanned symbol, so the machine has
    exactly ``2^n`` branches on an input of length ``n`` (with duplicate
    outputs merged).
    """
    symbols = tuple(dict.fromkeys(alphabet))
    builder = NondeterministicBuilder(name, num_inputs=1, alphabet=symbols)
    for symbol in symbols:
        builder.add("q0", (symbol,), "q0", (CONSUME,), symbol)
        builder.add("q0", (symbol,), "q0", (CONSUME,), EPSILON_OUTPUT)
    return builder.build(initial_state="q0")


def shuffle_transducer(
    alphabet: Iterable[str], name: str = "shuffle"
) -> NondeterministicTransducer:
    """Two inputs; the outputs are all interleavings (shuffles) of the inputs.

    At each step the machine nondeterministically consumes from tape 1 or
    tape 2 and copies the consumed symbol to the output.
    """
    symbols = tuple(dict.fromkeys(alphabet))
    builder = NondeterministicBuilder(name, num_inputs=2, alphabet=symbols)
    extended = symbols + (END_MARKER,)
    for a in extended:
        for b in extended:
            if a == END_MARKER and b == END_MARKER:
                continue
            if a != END_MARKER:
                builder.add("q0", (a, b), "q0", (CONSUME, STAY), a)
            if b != END_MARKER:
                builder.add("q0", (a, b), "q0", (STAY, CONSUME), b)
    return builder.build(initial_state="q0")


def equal_length_acceptor(
    alphabet: Iterable[str], name: str = "equal_length"
) -> NondeterministicTransducer:
    """A two-input acceptor for pairs of sequences of equal length.

    Used in tests as the simplest example of the acceptor view
    (:meth:`NondeterministicTransducer.accepts`): the machine consumes one
    symbol from each tape per step, so it can consume all its input exactly
    when the two sequences have the same length.
    """
    symbols = tuple(dict.fromkeys(alphabet))
    builder = NondeterministicBuilder(name, num_inputs=2, alphabet=symbols)
    for a in symbols:
        for b in symbols:
            builder.add("q0", (a, b), "q0", (CONSUME, CONSUME), EPSILON_OUTPUT)
    return builder.build(initial_state="q0")
