"""Generalized sequence transducers and transducer networks (Section 6).

* :mod:`~repro.transducers.machine` -- the order-``k`` machine model of
  Definition 7, with deterministic execution and full step accounting;
* :mod:`~repro.transducers.builder` -- a small DSL for defining machines;
* :mod:`~repro.transducers.library` -- the machines used throughout the paper
  (append, per-symbol maps such as DNA transcription, codon translation,
  the squaring transducer of Example 6.1, hyperexponential growth for
  Theorem 4, ...);
* :mod:`~repro.transducers.network` -- acyclic transducer networks with
  diameter and order accounting (Section 6.2);
* :mod:`~repro.transducers.nondeterministic` -- the nondeterministic
  generalization mentioned after Definition 7 (relations instead of
  functions, acceptor view);
* :mod:`~repro.transducers.registry` -- named collections of transducers
  shared by Transducer Datalog programs and the evaluation engine.
"""

from repro.transducers.machine import (
    CONSUME,
    END_MARKER,
    EPSILON_OUTPUT,
    GeneralizedTransducer,
    Transition,
    TransducerRun,
)
from repro.transducers.builder import TransducerBuilder
from repro.transducers.network import NetworkNode, TransducerNetwork
from repro.transducers.nondeterministic import (
    NondeterministicBuilder,
    NondeterministicTransducer,
    NTransition,
    from_deterministic,
)
from repro.transducers.registry import TransducerCatalog
from repro.transducers import library

__all__ = [
    "CONSUME",
    "END_MARKER",
    "EPSILON_OUTPUT",
    "GeneralizedTransducer",
    "NTransition",
    "NetworkNode",
    "NondeterministicBuilder",
    "NondeterministicTransducer",
    "TransducerBuilder",
    "TransducerCatalog",
    "TransducerNetwork",
    "TransducerRun",
    "Transition",
    "from_deterministic",
    "library",
]
