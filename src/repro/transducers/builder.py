"""A small construction DSL for generalized transducers.

Writing the transition function of Definition 7 by hand is verbose because
every (state, scanned-symbols) pair needs an entry.  The builder lets
machine definitions enumerate the relevant symbol combinations
programmatically while keeping the result an explicit, enumerable transition
table -- which the Theorem 7 translation to Sequence Datalog requires.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence as TypingSequence, Tuple, Union

from repro.errors import TransducerDefinitionError
from repro.transducers.machine import (
    CONSUME,
    END_MARKER,
    EPSILON_OUTPUT,
    GeneralizedTransducer,
    STAY,
    Transition,
)


class TransducerBuilder:
    """Incrementally build a :class:`GeneralizedTransducer`.

    Example
    -------
    Building the one-input identity (copy) machine over ``{a, b}``::

        builder = TransducerBuilder("copy", num_inputs=1, alphabet="ab")
        for symbol in "ab":
            builder.add(state="q0", scanned=(symbol,), next_state="q0",
                        moves=(CONSUME,), output=symbol)
        copy = builder.build(initial_state="q0")
    """

    def __init__(self, name: str, num_inputs: int, alphabet: Iterable[str]):
        self.name = name
        self.num_inputs = num_inputs
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self._transitions: Dict[Tuple[str, Tuple[str, ...]], Transition] = {}
        self._wildcards: List[Tuple[str, Tuple[object, ...], Transition]] = []

    # ------------------------------------------------------------------
    # Adding transitions
    # ------------------------------------------------------------------
    def add(
        self,
        state: str,
        scanned: TypingSequence[str],
        next_state: str,
        moves: TypingSequence[str],
        output: Union[str, GeneralizedTransducer] = EPSILON_OUTPUT,
    ) -> TransducerBuilder:
        """Add a single transition; duplicate keys are rejected."""
        key = (state, tuple(scanned))
        if key in self._transitions:
            raise TransducerDefinitionError(
                f"{self.name}: duplicate transition for {key!r}"
            )
        self._transitions[key] = Transition(
            next_state=next_state, moves=tuple(moves), output=output
        )
        return self

    def add_for_symbols(
        self,
        state: str,
        head: int,
        next_state: str,
        output_of,
        symbols: Optional[Iterable[str]] = None,
        other_heads: str = "any",
    ) -> TransducerBuilder:
        """Add transitions that consume one symbol on a designated head.

        For every symbol ``a`` of ``symbols`` (default: the alphabet) and
        every combination of symbols scanned by the other heads (including
        the end marker, unless ``other_heads='ignore'`` in which case only a
        single wildcard combination per other-symbol is generated -- not
        normally needed), a transition is added that consumes ``a`` on head
        ``head`` and leaves the other heads alone.  ``output_of`` is a
        callable mapping the consumed symbol to the output action.
        """
        symbols = tuple(symbols) if symbols is not None else self.alphabet
        other_symbol_space = self.alphabet + (END_MARKER,)
        other_positions = [i for i in range(self.num_inputs) if i != head]
        for symbol in symbols:
            for other_combo in product(other_symbol_space, repeat=len(other_positions)):
                scanned = [""] * self.num_inputs
                scanned[head] = symbol
                for position, other_symbol in zip(other_positions, other_combo):
                    scanned[position] = other_symbol
                moves = [STAY] * self.num_inputs
                moves[head] = CONSUME
                key = (state, tuple(scanned))
                if key in self._transitions:
                    continue
                self._transitions[key] = Transition(
                    next_state=next_state,
                    moves=tuple(moves),
                    output=output_of(symbol),
                )
        return self

    def add_wildcard(
        self,
        state: str,
        pattern: TypingSequence[object],
        next_state: str,
        moves: TypingSequence[str],
        output: Union[str, GeneralizedTransducer] = EPSILON_OUTPUT,
    ) -> TransducerBuilder:
        """Add a compact wildcard transition (see ``machine.WILDCARD``).

        Wildcard entries are tried after exact entries, in the order they
        were added; an entry that would consume a head scanning the end
        marker never applies.
        """
        self._wildcards.append(
            (
                state,
                tuple(pattern),
                Transition(next_state=next_state, moves=tuple(moves), output=output),
            )
        )
        return self

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build(self, initial_state: str) -> GeneralizedTransducer:
        return GeneralizedTransducer(
            name=self.name,
            num_inputs=self.num_inputs,
            alphabet=self.alphabet,
            initial_state=initial_state,
            transitions=self._transitions,
            wildcard_transitions=self._wildcards,
        )
