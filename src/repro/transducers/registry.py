"""Named collections of transducers.

Transducer Datalog programs refer to transducers by name (``@append(X, Y)``);
a :class:`TransducerCatalog` resolves those names to machines.  It also
produces the two derived views the rest of the library needs:

* ``callables()`` -- the ``{name: callable}`` registry consumed by the
  evaluation engine when it interprets transducer terms natively;
* ``orders()`` -- the ``{name: order}`` map consumed by the safety analysis
  (program order, Theorems 8/9 bounds).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Optional

from repro.errors import TransducerError
from repro.sequences import Sequence
from repro.transducers.machine import GeneralizedTransducer


class TransducerCatalog:
    """A mutable mapping from names to generalized transducers."""

    def __init__(self, transducers: Iterable[GeneralizedTransducer] = ()):
        self._machines: Dict[str, GeneralizedTransducer] = {}
        for machine in transducers:
            self.register(machine)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(
        self, machine: GeneralizedTransducer, name: Optional[str] = None
    ) -> TransducerCatalog:
        """Register a machine (optionally under an alias)."""
        key = name or machine.name
        existing = self._machines.get(key)
        if existing is not None and existing is not machine:
            raise TransducerError(f"a different transducer is already registered as {key!r}")
        self._machines[key] = machine
        return self

    def get(self, name: str) -> GeneralizedTransducer:
        try:
            return self._machines[name]
        except KeyError:
            raise TransducerError(f"no transducer registered under {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._machines

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._machines))

    def __len__(self) -> int:
        return len(self._machines)

    def names(self) -> Iterable[str]:
        return sorted(self._machines)

    def machines(self) -> Iterable[GeneralizedTransducer]:
        return [self._machines[name] for name in sorted(self._machines)]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def callables(self) -> Dict[str, Callable[..., Sequence]]:
        """The ``{name: callable}`` view used by the evaluation engine."""
        return {name: machine for name, machine in self._machines.items()}

    def orders(self) -> Dict[str, int]:
        """The ``{name: order}`` view used by the safety analysis."""
        return {name: machine.order for name, machine in self._machines.items()}

    def max_order(self) -> int:
        """The maximum order among the registered machines (0 when empty)."""
        return max((machine.order for machine in self._machines.values()), default=0)

    def copy(self) -> TransducerCatalog:
        clone = TransducerCatalog()
        clone._machines = dict(self._machines)
        return clone
