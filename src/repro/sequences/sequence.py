"""Immutable sequences of symbols with the paper's 1-based slicing semantics.

Section 2.1 of the paper defines sequences over an alphabet, their length,
their ``i``-th element (1-based), concatenation, and *contiguous
subsequences*.  Section 3.2 defines the interpretation of an indexed term
``s[n1 : n2]``:

* it is the contiguous subsequence of ``s`` from position ``n1`` to ``n2``
  when ``1 <= n1 <= n2 <= len(s)``;
* it is the empty sequence when ``n1 == n2 + 1`` (and the bounds are within
  range);
* it is *undefined* otherwise.

:meth:`Sequence.subsequence` implements exactly this partial function,
returning ``None`` for the undefined case so that the evaluation engine can
treat undefined substitutions as non-firing rules rather than errors.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import SequenceIndexError

SymbolLike = Union[str, "Sequence", Iterable[str]]


class Sequence:
    """An immutable, *interned* sequence of single-character symbols.

    A :class:`Sequence` wraps a Python string internally (each character is
    one symbol) which makes hashing, slicing and concatenation cheap.  All
    public position arguments are **1-based**, matching the paper.

    Sequences are interned in a process-wide table: constructing the same
    text twice yields the *same* object, so equality between two sequences
    is identity and each sequence carries a small integer :attr:`intern_id`
    that the fact store uses as a compact column value.  The table only ever
    grows (sequences are immutable and shared), which trades memory for the
    join-heavy access pattern of bottom-up evaluation.

    Examples
    --------
    >>> s = Sequence("uvwxy")
    >>> s.subsequence(3, 5)
    Sequence('wxy')
    >>> s.subsequence(3, 2)
    Sequence('')
    >>> s.subsequence(3, 6) is None
    True
    >>> Sequence("uvwxy") is s
    True
    """

    __slots__ = ("_data", "_id")

    _intern_table: Dict[str, "Sequence"] = {}
    _by_id: List["Sequence"] = []
    #: Guards the check-then-insert of the intern table.  A long-lived
    #: serving session may intern from several threads; without the lock two
    #: threads could both miss the table and materialise twin objects,
    #: breaking the identity-equality invariant the fact store relies on.
    _lock = threading.Lock()
    #: Total symbols held by the table (grows with every distinct sequence).
    _total_symbols: int = 0
    # Contention diagnostics for the hot interning path.  Guaranteed-hit
    # lookups in evaluation inner loops must never touch the lock; these
    # counters prove it (and surface real contention in serving sessions).
    # They are plain int attributes bumped without synchronisation: a lost
    # update under a race skews a diagnostic, never an invariant.
    _fast_hits: int = 0
    _lock_acquisitions: int = 0
    _contended_hits: int = 0
    _inserts: int = 0

    def __new__(cls, symbols: SymbolLike = ""):
        if isinstance(symbols, Sequence):
            return symbols
        if isinstance(symbols, str):
            data = symbols
        else:
            data = "".join(symbols)
        # Lock-free fast path: dict reads are atomic under the GIL, and an
        # entry, once published, is never replaced.
        self = cls._intern_table.get(data)
        if self is None:
            cls._lock_acquisitions += 1
            with cls._lock:
                self = cls._intern_table.get(data)
                if self is None:
                    self = super().__new__(cls)
                    self._data = data
                    self._id = len(cls._by_id)
                    cls._by_id.append(self)
                    cls._total_symbols += len(data)
                    cls._inserts += 1
                    # Publish last: a concurrent fast-path reader must never
                    # observe a half-initialised entry.
                    cls._intern_table[data] = self
                else:
                    # Another thread inserted between our miss and the lock:
                    # genuine contention on the same value.
                    cls._contended_hits += 1
        else:
            cls._fast_hits += 1
        return self

    def __init__(self, symbols: SymbolLike = ""):
        # All state is set in __new__; __init__ may run again when an
        # already-interned instance is returned and must not touch it.
        pass

    def __reduce__(self):
        # Re-intern on unpickle/deepcopy instead of materialising a twin
        # object that would break the identity-equality invariant.
        return (Sequence, (self._data,))

    @property
    def intern_id(self) -> int:
        """The process-wide intern table id of this sequence."""
        return self._id

    @classmethod
    def from_intern_id(cls, intern_id: int) -> Sequence:
        """The interned sequence with the given id."""
        return cls._by_id[intern_id]

    @classmethod
    def intern_table_size(cls) -> int:
        """Number of distinct sequences interned so far (diagnostics)."""
        return len(cls._by_id)

    @classmethod
    def intern_stats(cls) -> Dict[str, int]:
        """Growth and contention diagnostics of the process-wide intern table.

        The table only ever grows (sequences are immutable and shared), so a
        long-running serving session should watch these numbers: ``size`` is
        the number of distinct sequences and ``total_symbols`` the sum of
        their lengths — together a proxy for the table's memory footprint.

        The contention counters characterise the interning hot path:
        ``fast_hits`` are lock-free lookups of already-interned values (the
        guaranteed-hit case evaluation inner loops must stay on);
        ``lock_acquisitions`` counts slow-path entries, of which ``inserts``
        created a new sequence and ``contended_hits`` lost a race to another
        thread interning the same value (the only genuinely contended case).
        The counters themselves are updated without synchronisation, so
        under heavy threading they are near-exact, not exact.
        """
        return {
            "size": len(cls._by_id),
            "total_symbols": cls._total_symbols,
            "fast_hits": cls._fast_hits,
            "lock_acquisitions": cls._lock_acquisitions,
            "contended_hits": cls._contended_hits,
            "inserts": cls._inserts,
        }

    @classmethod
    def _reset_intern_table_for_tests(cls) -> int:
        """Test-only hook: drop every interned sequence except the empty one.

        Returns the previous table size.  This breaks the identity-equality
        invariant for ``Sequence`` objects created *before* the reset (their
        ``intern_id`` may collide with newly assigned ids), so it must only
        be called from tests that rebuild all of their state afterwards —
        typically through a fixture that snapshots and restores the table.
        """
        with cls._lock:
            previous = len(cls._by_id)
            cls._intern_table.clear()
            cls._by_id.clear()
            cls._total_symbols = 0
            cls._fast_hits = 0
            cls._lock_acquisitions = 0
            cls._contended_hits = 0
            cls._inserts = 0
            # Keep the module-level EMPTY singleton valid across the reset.
            EMPTY._id = 0
            cls._by_id.append(EMPTY)
            cls._intern_table[EMPTY._data] = EMPTY
        return previous

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, Sequence):
            return self._data == other._data
        if isinstance(other, str):
            return self._data == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return f"Sequence({self._data!r})"

    def __str__(self) -> str:
        return self._data

    def __lt__(self, other: Sequence) -> bool:
        return self._data < as_sequence(other)._data

    def __le__(self, other: Sequence) -> bool:
        return self._data <= as_sequence(other)._data

    def __add__(self, other: SymbolLike) -> Sequence:
        """Concatenation (the paper's ``s1 . s2`` constructive operation)."""
        return Sequence(self._data + as_sequence(other)._data)

    def __radd__(self, other: SymbolLike) -> Sequence:
        return Sequence(as_sequence(other)._data + self._data)

    def __mul__(self, count: int) -> Sequence:
        return Sequence(self._data * count)

    # ------------------------------------------------------------------
    # Paper-level operations
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """The sequence as a plain Python string."""
        return self._data

    @property
    def symbols(self) -> Tuple[str, ...]:
        """The sequence as a tuple of single-character symbols."""
        return tuple(self._data)

    def element(self, position: int) -> str:
        """Return the 1-based ``position``-th symbol of the sequence."""
        if position < 1 or position > len(self._data):
            raise SequenceIndexError(
                f"position {position} out of range for sequence of length {len(self._data)}"
            )
        return self._data[position - 1]

    def subsequence(self, start: int, stop: int) -> Optional["Sequence"]:
        """Interpret the indexed term ``self[start : stop]`` (Section 3.2).

        Returns the contiguous subsequence from position ``start`` to
        position ``stop`` (both 1-based, inclusive), the empty sequence when
        ``start == stop + 1`` and the bounds lie in range, and ``None`` when
        the term is undefined.
        """
        length = len(self._data)
        if not (1 <= start and start <= stop + 1 and stop + 1 <= length + 1):
            return None
        if start == stop + 1:
            return EMPTY
        return Sequence(self._data[start - 1:stop])

    def prefix(self, length: int) -> Optional["Sequence"]:
        """The prefix of the given ``length`` (``self[1 : length]``)."""
        return self.subsequence(1, length)

    def suffix(self, start: int) -> Optional["Sequence"]:
        """The suffix starting at ``start`` (``self[start : end]``)."""
        return self.subsequence(start, len(self._data))

    def reverse(self) -> Sequence:
        """The reversal of the sequence (Example 1.4)."""
        return Sequence(self._data[::-1])

    def is_subsequence_of(self, other: Sequence) -> bool:
        """True if ``self`` is a *contiguous* subsequence of ``other``."""
        return self._data in as_sequence(other)._data

    def count_occurrences(self, pattern: SymbolLike) -> int:
        """Number of (possibly overlapping) occurrences of ``pattern``."""
        pattern = as_sequence(pattern)._data
        if not pattern:
            return len(self._data) + 1
        count = 0
        start = 0
        while True:
            index = self._data.find(pattern, start)
            if index < 0:
                return count
            count += 1
            start = index + 1

    def occurrence_positions(self, pattern: SymbolLike) -> List[int]:
        """1-based start positions of every occurrence of ``pattern``."""
        pattern = as_sequence(pattern)._data
        positions = []
        if not pattern:
            return list(range(1, len(self._data) + 2))
        start = 0
        while True:
            index = self._data.find(pattern, start)
            if index < 0:
                return positions
            positions.append(index + 1)
            start = index + 1


#: The empty sequence, written ``=`` (epsilon) in the paper.
EMPTY = Sequence("")


def as_sequence(value: SymbolLike) -> Sequence:
    """Coerce a string, iterable of symbols, or Sequence into a Sequence."""
    if isinstance(value, Sequence):
        return value
    return Sequence(value)


def subsequences(value: SymbolLike) -> List[Sequence]:
    """All contiguous subsequences of ``value``, including the empty one.

    Section 2.1: a sequence of length ``k`` has at most ``k(k+1)/2 + 1``
    distinct contiguous subsequences.  The returned list contains each
    distinct subsequence exactly once, ordered by (length, text).

    >>> [str(s) for s in subsequences("abc")]
    ['', 'a', 'b', 'c', 'ab', 'bc', 'abc']
    """
    sequence = as_sequence(value)
    text = sequence.text
    found = {""}
    for start in range(len(text)):
        for stop in range(start + 1, len(text) + 1):
            found.add(text[start:stop])
    ordered = sorted(found, key=lambda item: (len(item), item))
    return [Sequence(item) for item in ordered]


def max_subsequence_count(length: int) -> int:
    """Upper bound ``k(k+1)/2 + 1`` on distinct contiguous subsequences."""
    return length * (length + 1) // 2 + 1
