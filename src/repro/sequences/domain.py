"""Extended active domains (Definitions 2 and 3, Lemma 1 of the paper).

The semantics of Sequence Datalog is *active-domain* based: substitutions do
not range over the infinite universe ``Sigma*`` but over the *extended active
domain* of the current interpretation, which contains

1. every sequence occurring in the interpretation,
2. every contiguous subsequence of those sequences, and
3. the integers ``0, 1, ..., lmax + 1`` where ``lmax`` is the maximum length
   of a sequence in the interpretation.

:class:`ExtendedDomain` maintains this set incrementally: adding a sequence
adds all of its subsequences and, if needed, enlarges the integer range.
This incremental behaviour is what makes the fixpoint computation practical:
each application of the ``T`` operator only has to extend the domain with
the sequences it created.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set

from repro.sequences.sequence import Sequence, as_sequence


class ExtendedDomain:
    """The extension ``dom_ext`` of a set of sequences.

    The domain is mutable (sequences can be added) but never shrinks, which
    mirrors Lemma 1 of the paper: if ``I1 ⊆ I2`` then
    ``Dext(I1) ⊆ Dext(I2)``.

    Examples
    --------
    >>> dom = ExtendedDomain(["abc"])
    >>> Sequence("bc") in dom
    True
    >>> dom.max_length
    3
    >>> sorted(dom.integers())[-1]
    4
    """

    __slots__ = ("_sequences", "_max_length")

    def __init__(self, sequences: Iterable = ()):  # type: ignore[assignment]
        self._sequences: Set[Sequence] = set()
        self._max_length = 0
        self.add_all(sequences)
        # The empty sequence is a subsequence of every sequence; for the
        # empty domain the integer range is {0, 1} and epsilon is present so
        # that rules such as ``p(=, =) <- true`` can fire on any database.
        self._sequences.add(Sequence(""))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, value) -> bool:
        """Add a sequence and all its contiguous subsequences.

        Returns ``True`` if the domain grew (the sequence was new).
        """
        sequence = as_sequence(value)
        if sequence in self._sequences:
            return False
        text = sequence.text
        self._sequences.add(sequence)
        if len(text) > self._max_length:
            self._max_length = len(text)
        # Add every distinct contiguous subsequence.  Using raw strings here
        # keeps the inner loop cheap; Sequence construction is deferred to
        # the final insert.
        for start in range(len(text)):
            for stop in range(start + 1, len(text) + 1):
                fragment = text[start:stop]
                candidate = Sequence(fragment)
                if candidate not in self._sequences:
                    self._sequences.add(candidate)
        self._sequences.add(Sequence(""))
        return True

    def add_all(self, values: Iterable) -> bool:
        """Add every sequence in ``values``; return True if any was new."""
        grew = False
        for value in values:
            if self.add(value):
                grew = True
        return grew

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def max_length(self) -> int:
        """Length ``lmax`` of the longest sequence in the domain."""
        return self._max_length

    def sequences(self) -> Set[Sequence]:
        """The set of sequences in the domain (a live copy is NOT returned)."""
        return self._sequences

    def integers(self) -> range:
        """The integer part of the extension: ``0 .. lmax + 1`` inclusive."""
        return range(0, self._max_length + 2)

    def __contains__(self, value) -> bool:
        if isinstance(value, int):
            return 0 <= value <= self._max_length + 1
        return as_sequence(value) in self._sequences

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedDomain):
            return NotImplemented
        return self._sequences == other._sequences

    def __repr__(self) -> str:
        return (
            f"ExtendedDomain({len(self._sequences)} sequences, "
            f"lmax={self._max_length})"
        )

    def copy(self) -> ExtendedDomain:
        """An independent copy of the domain."""
        clone = ExtendedDomain()
        clone._sequences = set(self._sequences)
        clone._max_length = self._max_length
        return clone

    def sorted_sequences(self) -> List[Sequence]:
        """The sequences ordered by (length, text) — useful for stable output."""
        return sorted(self._sequences, key=lambda s: (len(s), s.text))


def extension_of(sequences: Iterable) -> ExtendedDomain:
    """Build the extension ``dom_ext`` of an iterable of sequences."""
    return ExtendedDomain(sequences)
