"""Finite alphabets of symbols (Section 2.1 of the paper).

The paper works with sequences over a countable alphabet ``Sigma`` but all
expressibility results assume a *finite* alphabet.  An :class:`Alphabet` is a
finite, ordered collection of single-character symbols.  Symbols are plain
Python strings of length one; keeping them as characters makes conversion
between :class:`~repro.sequences.sequence.Sequence` objects and Python
strings trivial and cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.errors import AlphabetError


class Alphabet:
    """A finite set of single-character symbols with a stable order.

    Parameters
    ----------
    symbols:
        An iterable of single-character strings.  Duplicates are removed
        while preserving first-occurrence order.

    Examples
    --------
    >>> dna = Alphabet("acgt")
    >>> "a" in dna
    True
    >>> len(dna)
    4
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[str]):
        ordered = []
        seen = set()
        for symbol in symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise AlphabetError(
                    f"alphabet symbols must be single characters, got {symbol!r}"
                )
            if symbol not in seen:
                seen.add(symbol)
                ordered.append(symbol)
        if not ordered:
            raise AlphabetError("an alphabet must contain at least one symbol")
        self._symbols: Tuple[str, ...] = tuple(ordered)
        self._index = {symbol: i for i, symbol in enumerate(self._symbols)}

    @property
    def symbols(self) -> Tuple[str, ...]:
        """The symbols of the alphabet in declaration order."""
        return self._symbols

    def index(self, symbol: str) -> int:
        """Return the position of ``symbol`` in the alphabet order."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"symbol {symbol!r} is not in the alphabet") from None

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r})"

    def validate_word(self, word: Iterable[str]) -> None:
        """Raise :class:`AlphabetError` if any symbol of ``word`` is unknown."""
        for symbol in word:
            if symbol not in self._index:
                raise AlphabetError(
                    f"symbol {symbol!r} is not in the alphabet {self!r}"
                )

    def union(self, other: Alphabet) -> Alphabet:
        """Return the alphabet containing the symbols of both alphabets."""
        return Alphabet(tuple(self._symbols) + tuple(other._symbols))


#: The four-letter DNA alphabet used in Example 7.1 of the paper.
DNA_ALPHABET = Alphabet("acgt")

#: The four-letter RNA alphabet used in Example 7.1 of the paper.
RNA_ALPHABET = Alphabet("acgu")

#: The twenty-letter amino-acid alphabet used in Example 7.1 of the paper,
#: extended with ``*`` for stop codons so that translation is total.
PROTEIN_ALPHABET = Alphabet("ARNDCQEGHILKMFPSTWYV*")

#: Binary alphabet used by restructuring examples (Example 1.4).
BINARY_ALPHABET = Alphabet("01")
