"""Sequence substrate: alphabets, immutable sequences and extended domains.

This package implements Section 2.1 and Definitions 2-3 of the paper:

* :class:`~repro.sequences.alphabet.Alphabet` -- a finite set of symbols.
* :class:`~repro.sequences.sequence.Sequence` -- an immutable sequence of
  symbols with the paper's 1-based contiguous-subsequence operations.
* :func:`~repro.sequences.sequence.subsequences` -- all contiguous
  subsequences of a sequence.
* :class:`~repro.sequences.domain.ExtendedDomain` -- the *extension* of a set
  of sequences: the sequences themselves, all their contiguous subsequences,
  and the integers ``0 .. lmax + 1``.
"""

from repro.sequences.alphabet import Alphabet, DNA_ALPHABET, RNA_ALPHABET, PROTEIN_ALPHABET, BINARY_ALPHABET
from repro.sequences.sequence import EMPTY, Sequence, as_sequence, subsequences
from repro.sequences.domain import ExtendedDomain, extension_of

__all__ = [
    "Alphabet",
    "BINARY_ALPHABET",
    "DNA_ALPHABET",
    "EMPTY",
    "ExtendedDomain",
    "PROTEIN_ALPHABET",
    "RNA_ALPHABET",
    "Sequence",
    "as_sequence",
    "extension_of",
    "subsequences",
]
