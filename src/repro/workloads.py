"""Synthetic workload generators for examples, tests and benchmarks.

The paper has no distributed datasets; its motivating workloads are genome
databases (long DNA strings) and text databases.  The generators here
produce deterministic, seeded synthetic equivalents: random strings over an
alphabet, random DNA, instances of the ``a^n b^n c^n`` language with decoys,
repeated patterns, and parameter sweeps of databases of growing size, which
is what the benchmark harness feeds to the engine.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence as TypingSequence, Tuple

from repro.database.database import SequenceDatabase
from repro.sequences.alphabet import DNA_ALPHABET


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed if seed is not None else 0xC0FFEE)


def random_string(
    length: int, alphabet: TypingSequence[str] = "ab", seed: Optional[int] = None
) -> str:
    """A random string of the given length over the alphabet."""
    generator = _rng(seed)
    symbols = list(alphabet)
    return "".join(generator.choice(symbols) for _ in range(length))


def random_strings(
    count: int,
    length: int,
    alphabet: TypingSequence[str] = "ab",
    seed: Optional[int] = None,
) -> List[str]:
    """``count`` random strings of the given length."""
    generator = _rng(seed)
    symbols = list(alphabet)
    return [
        "".join(generator.choice(symbols) for _ in range(length)) for _ in range(count)
    ]


def random_dna(length: int, seed: Optional[int] = None) -> str:
    """A random DNA string (Example 7.1's workload, synthesised)."""
    return random_string(length, alphabet=DNA_ALPHABET.symbols, seed=seed)


def random_dna_strings(count: int, length: int, seed: Optional[int] = None) -> List[str]:
    """``count`` random DNA strings."""
    return random_strings(count, length, alphabet=DNA_ALPHABET.symbols, seed=seed)


def anbncn(n: int) -> str:
    """The sequence ``a^n b^n c^n`` (Example 1.3)."""
    return "a" * n + "b" * n + "c" * n


def anbncn_database(
    max_n: int, decoys: int = 5, seed: Optional[int] = None
) -> SequenceDatabase:
    """A database mixing genuine ``a^n b^n c^n`` strings with decoys.

    The decoys are random strings over ``{a, b, c}`` that are *not* of the
    target form, so pattern-matching programs have something to reject.
    """
    generator = _rng(seed)
    rows: List[str] = [anbncn(n) for n in range(0, max_n + 1)]
    while len(rows) < max_n + 1 + decoys:
        length = generator.randint(1, max(3, 3 * max_n))
        candidate = "".join(generator.choice("abc") for _ in range(length))
        if not _is_anbncn(candidate):
            rows.append(candidate)
    return SequenceDatabase.from_dict({"r": rows})


def _is_anbncn(word: str) -> bool:
    n, remainder = divmod(len(word), 3)
    if remainder:
        return False
    return word == "a" * n + "b" * n + "c" * n


def repeats_database(
    pattern_lengths: Iterable[int] = (1, 2, 3),
    copies: Iterable[int] = (1, 2, 3),
    alphabet: TypingSequence[str] = "ab",
    seed: Optional[int] = None,
) -> SequenceDatabase:
    """Sequences of the form ``Y^n`` (Example 1.5's workload)."""
    generator = _rng(seed)
    symbols = list(alphabet)
    rows = []
    for length in pattern_lengths:
        pattern = "".join(generator.choice(symbols) for _ in range(length))
        for count in copies:
            rows.append(pattern * count)
    return SequenceDatabase.from_dict({"r": rows})


def string_database(
    count: int,
    length: int,
    alphabet: TypingSequence[str] = "ab",
    relation: str = "r",
    seed: Optional[int] = None,
) -> SequenceDatabase:
    """A unary relation of ``count`` *distinct* random strings of the given length.

    Relations are sets, so duplicates would silently shrink the database and
    distort size sweeps; distinctness is enforced up to the number of strings
    the alphabet admits at that length.
    """
    generator = _rng(seed)
    symbols = list(alphabet)
    capacity = len(symbols) ** length
    rows: List[str] = []
    seen = set()
    while len(rows) < min(count, capacity):
        candidate = "".join(generator.choice(symbols) for _ in range(length))
        if candidate not in seen:
            seen.add(candidate)
            rows.append(candidate)
    return SequenceDatabase.from_dict({relation: rows})


def dna_database(count: int, length: int, seed: Optional[int] = None) -> SequenceDatabase:
    """A ``dnaseq`` relation of random DNA strings (Example 7.1)."""
    return SequenceDatabase.from_dict(
        {"dnaseq": random_dna_strings(count, length, seed)}
    )


def size_sweep(
    sizes: Iterable[int],
    length: int = 6,
    alphabet: TypingSequence[str] = "ab",
    relation: str = "r",
    seed: Optional[int] = None,
) -> List[Tuple[int, SequenceDatabase]]:
    """Databases of growing cardinality (used by the Theorem 3/8 benchmarks)."""
    return [
        (size, string_database(size, length, alphabet, relation, seed))
        for size in sizes
    ]


def length_sweep(
    lengths: Iterable[int],
    count: int = 4,
    alphabet: TypingSequence[str] = "ab",
    relation: str = "r",
    seed: Optional[int] = None,
) -> List[Tuple[int, SequenceDatabase]]:
    """Databases of growing string length (used by the growth benchmarks)."""
    return [
        (length, string_database(count, length, alphabet, relation, seed))
        for length in lengths
    ]
