"""Model-theoretic semantics (Appendix A of the paper).

Definition 12 restricts the classical notion of model to substitutions based
on the extended active domain of the interpretation; Definition 13 defines
entailment as truth in every model.  Lemma 4 shows that an interpretation is
a model of ``P ∪ db`` exactly when it is a pre-fixpoint of ``T_{P,db}``
(``T(I) ⊆ I``), and Corollaries 5-6 conclude that the minimal model exists,
is unique, and coincides with the least fixpoint.

The functions below implement these notions directly so the equivalence can
be tested rather than assumed.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.fixpoint import compute_least_fixpoint
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.toperator import TOperator
from repro.language.atoms import Atom
from repro.language.clauses import Program
from repro.language.parser import parse_atom


def is_model(
    program: Program,
    database: SequenceDatabase,
    interpretation: Interpretation,
    transducers: Optional[TransducerRegistry] = None,
) -> bool:
    """True iff the interpretation is a model of ``P ∪ db`` (Definition 12).

    By Lemma 4 this is equivalent to ``T_{P,db}(I) ⊆ I``, which is how the
    check is carried out.
    """
    operator = TOperator(program, database, transducers)
    return operator.is_fixpoint(interpretation)


def minimal_model(
    program: Program,
    database: SequenceDatabase,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
) -> Interpretation:
    """The unique minimal model of ``P ∪ db`` (Corollary 5).

    Computed as the least fixpoint ``T_{P,db} ↑ omega``; the test suite
    verifies minimality and model-hood independently via :func:`is_model`.
    """
    result = compute_least_fixpoint(
        program, database, limits=limits, transducers=transducers
    )
    return result.interpretation


def entails(
    program: Program,
    database: SequenceDatabase,
    atom: Union[str, Atom],
    limits: EvaluationLimits = DEFAULT_LIMITS,
    transducers: Optional[TransducerRegistry] = None,
) -> bool:
    """Entailment check ``P, db |= alpha`` (Definition 13, Corollary 6).

    The atom must be ground.  By Corollary 6 entailment holds exactly when
    the atom belongs to the least fixpoint.
    """
    ground = parse_atom(atom) if isinstance(atom, str) else atom
    model = minimal_model(program, database, limits=limits, transducers=transducers)
    return ground in model
