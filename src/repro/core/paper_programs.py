"""Every worked example of the paper as a ready-to-run program.

Each constant below is the program text of a numbered example; the helper
functions return parsed programs (and, for the Transducer Datalog examples,
the catalogs of machines they need).  Tests and benchmarks import from this
module so the correspondence between the paper and the code stays explicit
in one place.
"""

from __future__ import annotations

from typing import Tuple

from repro.language.clauses import Program
from repro.language.parser import parse_program
from repro.transducers.library import (
    square_transducer,
    transcribe_transducer,
    translate_transducer,
)
from repro.transducers.registry import TransducerCatalog

# ----------------------------------------------------------------------
# Section 1 examples
# ----------------------------------------------------------------------

#: Example 1.1 -- all suffixes of all sequences in relation ``r``.
EXAMPLE_1_1_SUFFIXES = """
suffix(X[N:end]) :- r(X).
"""

#: Example 1.2 -- all pairwise concatenations of sequences in ``r``.
EXAMPLE_1_2_CONCATENATIONS = """
answer(X ++ Y) :- r(X), r(Y).
"""

#: Example 1.3 -- retrieve the sequences of the form a^n b^n c^n in ``r``.
EXAMPLE_1_3_ANBNCN = """
answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
abcn("", "", "") :- true.
abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                 abcn(X[2:end], Y[2:end], Z[2:end]).
"""

#: Example 1.4 -- the reverse of every sequence in ``r``.
EXAMPLE_1_4_REVERSE = """
answer(Y) :- r(X), reverse(X, Y).
reverse("", "") :- true.
reverse(X[1:N+1], X[N+1] ++ Y) :- r(X), reverse(X[1:N], Y).
"""

#: Example 1.5 -- multiple repeats, structural-recursion version (finite).
EXAMPLE_1_5_REP1 = """
rep1(X, X) :- true.
rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
"""

#: Example 1.5 -- multiple repeats, constructive-recursion version (infinite).
EXAMPLE_1_5_REP2 = """
rep2(X, X) :- true.
rep2(X ++ Y, Y) :- rep2(X, Y).
"""

#: Example 1.6 -- echo sequences; the least fixpoint is infinite even though
#: the query answer is finite.  For every sequence X in the extended active
#: domain the rules generate its echo, and each new echo sequence enlarges
#: the domain, so the fixpoint never closes.
EXAMPLE_1_6_ECHO = """
answer(X, Y) :- r(X), echo(X, Y).
echo("", "") :- true.
echo(X, X[1] ++ X[1] ++ Z) :- echo(X[2:end], Z).
"""

# ----------------------------------------------------------------------
# Section 5 examples
# ----------------------------------------------------------------------

#: Example 5.1 -- stratified construction: doubling and quadrupling.
EXAMPLE_5_1_STRATIFIED = """
double(X ++ X) :- r(X).
quadruple(X ++ X) :- double(X).
"""

# ----------------------------------------------------------------------
# Section 7 examples
# ----------------------------------------------------------------------

#: Example 7.1 -- from DNA to RNA to protein (Transducer Datalog).
EXAMPLE_7_1_GENOME = """
rnaseq(D, @transcribe(D)) :- dnaseq(D).
proteinseq(D, @translate(R)) :- rnaseq(D, R).
"""

#: Example 7.2 -- the transcription transducer simulated in Sequence Datalog.
EXAMPLE_7_2_TRANSCRIBE_SIMULATION = """
rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
transcribe("", "") :- true.
transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R), trans(D[N+1], T).
trans("a", "u") :- true.
trans("t", "a") :- true.
trans("c", "g") :- true.
trans("g", "c") :- true.
"""

# ----------------------------------------------------------------------
# Section 8 examples (Figure 3)
# ----------------------------------------------------------------------

#: Example 8.1, program P1 -- recursive but strongly safe.
EXAMPLE_8_1_P1 = """
p(X) :- r(X, Y), q(Y).
q(X) :- r(X, Y), p(Y).
r(@t1(X), @t2(Y)) :- a(X, Y).
"""

#: Example 8.1, program P2 -- a constructive self-loop (not strongly safe).
EXAMPLE_8_1_P2 = """
p(@t(X)) :- p(X).
"""

#: Example 8.1, program P3 -- a constructive cycle through three predicates.
EXAMPLE_8_1_P3 = """
q(X) :- r(X).
r(@t(X)) :- p(X).
p(X) :- q(X).
"""


# ----------------------------------------------------------------------
# Parsed accessors
# ----------------------------------------------------------------------
def suffixes_program() -> Program:
    """Example 1.1."""
    return parse_program(EXAMPLE_1_1_SUFFIXES)


def concatenations_program() -> Program:
    """Example 1.2."""
    return parse_program(EXAMPLE_1_2_CONCATENATIONS)


def anbncn_program() -> Program:
    """Example 1.3."""
    return parse_program(EXAMPLE_1_3_ANBNCN)


def reverse_program() -> Program:
    """Example 1.4."""
    return parse_program(EXAMPLE_1_4_REVERSE)


def rep1_program() -> Program:
    """Example 1.5, structural recursion (finite semantics)."""
    return parse_program(EXAMPLE_1_5_REP1)


def rep2_program() -> Program:
    """Example 1.5, constructive recursion (infinite semantics)."""
    return parse_program(EXAMPLE_1_5_REP2)


def echo_program() -> Program:
    """Example 1.6 (infinite least fixpoint)."""
    return parse_program(EXAMPLE_1_6_ECHO)


def stratified_construction_program() -> Program:
    """Example 5.1."""
    return parse_program(EXAMPLE_5_1_STRATIFIED)


def genome_program() -> Tuple[Program, TransducerCatalog]:
    """Example 7.1: the program and the catalog with its two machines."""
    catalog = TransducerCatalog([transcribe_transducer(), translate_transducer()])
    return parse_program(EXAMPLE_7_1_GENOME), catalog


def transcribe_simulation_program() -> Program:
    """Example 7.2."""
    return parse_program(EXAMPLE_7_2_TRANSCRIBE_SIMULATION)


def figure_3_programs() -> Tuple[Program, Program, Program]:
    """The three programs of Example 8.1 / Figure 3 (P1, P2, P3)."""
    return (
        parse_program(EXAMPLE_8_1_P1),
        parse_program(EXAMPLE_8_1_P2),
        parse_program(EXAMPLE_8_1_P3),
    )


def figure_3_catalog() -> TransducerCatalog:
    """A catalog providing the generic machines ``t``, ``t1``, ``t2`` used by
    Figure 3 (their behaviour is irrelevant to the safety analysis; squaring
    machines are used so the programs are executable)."""
    return TransducerCatalog(
        [
            square_transducer("ab", name="t"),
            square_transducer("ab", name="t1"),
            square_transducer("ab", name="t2"),
        ]
    )
