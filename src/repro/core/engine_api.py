"""The main user-facing facade for Sequence Datalog.

:class:`SequenceDatalogEngine` bundles a program with the evaluation,
analysis and query machinery so typical usage is three lines::

    engine = SequenceDatalogEngine('suffix(X[N:end]) :- r(X).')
    result = engine.evaluate({"r": ["abc"]})
    print(engine.query(result, "suffix(X)").texts())
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from repro.analysis.diagnostics import (
    DiagnosticReport,
    explain_with_diagnostics,
    lint_program,
)
from repro.analysis.finiteness import FinitenessReport, classify_finiteness
from repro.analysis.safety import SafetyReport, analyze_safety
from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.demand import DemandQuery
from repro.engine.fixpoint import (
    DEFAULT_STRATEGY,
    FixpointResult,
    compute_least_fixpoint,
)
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.query import QueryResult, evaluate_query, known_predicates
from repro.engine.server import DatalogServer
from repro.engine.session import DatalogSession
from repro.errors import MultiValuedOutputError, ValidationError
from repro.language.clauses import Program
from repro.language.parser import parse_program

DatabaseLike = Union[SequenceDatabase, Mapping[str, Iterable]]


def _as_database(database: DatabaseLike) -> SequenceDatabase:
    if isinstance(database, SequenceDatabase):
        return database
    return SequenceDatabase.from_dict(dict(database))


class SequenceDatalogEngine:
    """Parse, analyse, evaluate and query a Sequence Datalog program."""

    def __init__(
        self,
        program: Union[str, Program],
        limits: EvaluationLimits = DEFAULT_LIMITS,
        transducers: Optional[TransducerRegistry] = None,
    ):
        self.program = parse_program(program) if isinstance(program, str) else program
        self.program.validate()
        self.limits = limits
        self.transducers = transducers
        self._program_predicates = frozenset(self.program.predicates())

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def safety(self) -> SafetyReport:
        """Strong-safety analysis of the program (Definition 10)."""
        return analyze_safety(self.program)

    def finiteness(self) -> FinitenessReport:
        """Static finiteness classification (Theorems 2, 3, 8, 9)."""
        return classify_finiteness(self.program)

    def explain(self) -> str:
        """The compiled evaluation plan plus a diagnostics section.

        Strata, join orders and index columns from
        :func:`~repro.engine.planner.compile_program`, followed by the
        findings of :meth:`lint` in compact form.
        """
        return explain_with_diagnostics(self.program)

    def lint(
        self,
        database: Optional[DatabaseLike] = None,
        patterns: Iterable[str] = (),
    ) -> DiagnosticReport:
        """Run the program diagnostics engine (:mod:`repro.analysis.rules`).

        Checks semantic errors (undefined predicates, arity conflicts,
        range restriction), the paper's static theory with source spans
        attached (finiteness, strong safety, stratification, guardedness),
        hygiene, and plan-level performance lints.  ``database`` and
        ``patterns`` (query atoms) sharpen the database-dependent rules.
        """
        return lint_program(
            self.program,
            database=None if database is None else _as_database(database),
            patterns=patterns,
        )

    # ------------------------------------------------------------------
    # Evaluation and queries
    # ------------------------------------------------------------------
    def evaluate(
        self,
        database: DatabaseLike,
        strategy: str = DEFAULT_STRATEGY,
        limits: Optional[EvaluationLimits] = None,
        workers: Optional[int] = None,
    ) -> FixpointResult:
        """Compute the least fixpoint of the program over a database.

        ``workers`` sizes the pool of the ``parallel`` strategy (see
        :mod:`repro.engine.parallel`); the other strategies ignore it.
        """
        return compute_least_fixpoint(
            self.program,
            _as_database(database),
            limits=limits or self.limits,
            strategy=strategy,
            transducers=self.transducers,
            workers=workers,
        )

    def query(
        self,
        result: Union[FixpointResult, Interpretation, DatabaseLike],
        pattern: str,
        strict: bool = False,
        demand: bool = False,
    ) -> QueryResult:
        """Match a pattern atom (e.g. ``"answer(X)"``) against a result.

        With ``strict=True``, a predicate that neither the program defines
        nor the result contains raises
        :class:`~repro.errors.UnknownPredicateError` (a likely typo), while
        a known predicate that legitimately derived nothing returns an
        empty result.

        With ``demand=True``, ``result`` is the *database* (not a computed
        fixpoint) and the pattern is answered demand-driven
        (:mod:`repro.engine.demand`): only the slice of the model the
        pattern transitively depends on is materialised, with the pattern's
        constants pushed into the defining clauses.  Answers are identical
        to evaluating fully and querying.
        """
        if demand:
            if isinstance(result, (FixpointResult, Interpretation)):
                raise ValidationError(
                    "query(demand=True) evaluates on demand and therefore "
                    "needs the database, not an already-computed fixpoint; "
                    "query the fixpoint directly instead"
                )
            # Strict mode defaults to the slice's own known-predicate
            # universe (program predicates + every database relation).
            return self.compile_demand(pattern).run(
                _as_database(result), self.limits, strict=strict
            )
        if not isinstance(result, (FixpointResult, Interpretation)):
            raise ValidationError(
                "query() without demand=True matches against a computed "
                "result; pass the FixpointResult/Interpretation, or set "
                "demand=True to evaluate from the database on demand"
            )
        interpretation = (
            result.interpretation if isinstance(result, FixpointResult) else result
        )
        known = None
        if strict:
            known = known_predicates(self._program_predicates, interpretation)
        return evaluate_query(
            interpretation, pattern, strict=strict, known_predicates=known
        )

    def compile_demand(self, pattern: str) -> DemandQuery:
        """Compile a pattern for demand-driven evaluation over this program.

        The returned :class:`~repro.engine.demand.DemandQuery` exposes the
        compilation profile (relevant predicates, adornment seeds, fallback
        reason) and can be materialised against many databases.
        """
        return DemandQuery(self.program, pattern, self.transducers)

    def run(
        self, database: DatabaseLike, pattern: str, demand: bool = False
    ) -> QueryResult:
        """Evaluate and query in one call (demand-driven when asked)."""
        if demand:
            return self.query(database, pattern, demand=True)
        return self.query(self.evaluate(database), pattern)

    def session(
        self,
        database: Optional[DatabaseLike] = None,
        limits: Optional[EvaluationLimits] = None,
        prepared_cache_size: int = 128,
        demand_cache_size: int = 32,
        lazy: bool = False,
        data_dir: Optional[str] = None,
    ) -> DatalogSession:
        """Open an incremental query-serving session over this program.

        The session keeps its fixpoint resident, maintains it incrementally
        under :meth:`DatalogSession.add_facts` and serves prepared,
        index-backed pattern queries (see :mod:`repro.engine.session`).
        With ``lazy=True`` the full fixpoint is only computed when a
        non-demand query needs it; ``query(..., demand=True)`` serves
        cached per-query slices either way.

        With ``data_dir``, the session is durable: prior state is
        recovered from the directory (snapshot plus WAL-tail replay) and
        every later batch runs the write-ahead commit protocol of
        :mod:`repro.storage`.  ``database`` is then ingested as an
        ordinary durable batch — already-present facts are absorbed.
        """
        if data_dir is not None:
            from repro.storage import open_session

            return open_session(
                self.program,
                data_dir,
                database=None if database is None else _as_database(database),
                limits=limits or self.limits,
                transducers=self.transducers,
                prepared_cache_size=prepared_cache_size,
                demand_cache_size=demand_cache_size,
                lazy=lazy,
            )
        return DatalogSession(
            self.program,
            database=None if database is None else _as_database(database),
            limits=limits or self.limits,
            transducers=self.transducers,
            prepared_cache_size=prepared_cache_size,
            demand_cache_size=demand_cache_size,
            lazy=lazy,
        )

    def serve(
        self,
        database: Optional[DatabaseLike] = None,
        limits: Optional[EvaluationLimits] = None,
        workers: Optional[int] = None,
        result_cache_size: int = 1024,
        data_dir: Optional[str] = None,
    ) -> DatalogServer:
        """Open a thread-safe, snapshot-isolated server over this program.

        The server wraps an incremental session: concurrent ``query`` calls
        pin immutable model snapshots (and are cached, coalesced and
        batchable), while ``add_facts`` maintenance runs serialized and only
        publishes fully-consistent snapshots.  ``workers`` additionally runs
        maintenance on a parallel fixpoint pool
        (:mod:`repro.engine.server` has the full contract).  With
        ``data_dir`` the backing session is durable (see :meth:`session`)
        and the server's generation counter survives restarts.
        """
        return DatalogServer(
            self.program,
            database=None if database is None else _as_database(database),
            limits=limits or self.limits,
            transducers=self.transducers,
            workers=workers,
            result_cache_size=result_cache_size,
            data_dir=data_dir,
        )

    def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        database: Optional[DatabaseLike] = None,
        limits: Optional[EvaluationLimits] = None,
        workers: Optional[int] = None,
        result_cache_size: int = 1024,
        start: bool = True,
        data_dir: Optional[str] = None,
    ):
        """Expose this program over the versioned TCP API (:mod:`repro.api`).

        Builds the thread-safe :class:`DatalogServer` backend and binds a
        :class:`~repro.api.transport.DatalogTCPServer` (port 0 picks a free
        port; read it back from ``.address``).  Remote
        :class:`~repro.api.client.DatalogClient` callers then get typed,
        schema-versioned requests/responses with cursor-paged streaming of
        large results — answers are fact-for-fact identical to
        :meth:`query` in-process.  With ``data_dir`` the backend is
        durable (see :meth:`serve`) and ``close()`` flushes the WAL and
        writes a final snapshot.
        """
        from repro.api.transport import serve_tcp

        return serve_tcp(
            self.program,
            database=None if database is None else _as_database(database),
            host=host,
            port=port,
            start=start,
            limits=limits if limits is not None else self.limits,
            transducers=self.transducers,
            workers=workers,
            result_cache_size=result_cache_size,
            data_dir=data_dir,
        )

    def compute_function(self, value, output_predicate: str = "output") -> Optional[str]:
        """Treat the program as a sequence function (Definition 5).

        Evaluates over the database ``{input(value)}`` and returns the single
        sequence in the ``output`` relation, or ``None`` if no output is
        derived within the evaluation limits.  Definition 5 defines the
        function only when the output relation is single-valued; if the
        program derives several distinct ``output`` facts the function is
        undefined at the input and
        :class:`~repro.errors.MultiValuedOutputError` is raised.
        """
        result = self.evaluate(SequenceDatabase.single_input(value))
        rows = sorted(result.interpretation.tuples(output_predicate))
        if not rows:
            return None
        if len(rows) > 1:
            preview = ", ".join(repr(row[0].text) for row in rows[:5])
            raise MultiValuedOutputError(
                f"program derived {len(rows)} distinct {output_predicate!r} "
                f"facts at input {str(value)!r} ({preview}{', ...' if len(rows) > 5 else ''}); "
                "a sequence function (Definition 5) must be single-valued"
            )
        return rows[0][0].text

    def __repr__(self) -> str:
        return f"SequenceDatalogEngine({len(self.program)} clauses)"
