"""The main user-facing facade for Sequence Datalog.

:class:`SequenceDatalogEngine` bundles a program with the evaluation,
analysis and query machinery so typical usage is three lines::

    engine = SequenceDatalogEngine('suffix(X[N:end]) :- r(X).')
    result = engine.evaluate({"r": ["abc"]})
    print(engine.query(result, "suffix(X)").texts())
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

from repro.analysis.finiteness import FinitenessReport, classify_finiteness
from repro.analysis.safety import SafetyReport, analyze_safety
from repro.database.database import SequenceDatabase
from repro.engine.bindings import TransducerRegistry
from repro.engine.fixpoint import (
    DEFAULT_STRATEGY,
    FixpointResult,
    compute_least_fixpoint,
)
from repro.engine.planner import compile_program
from repro.engine.interpretation import Interpretation
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.query import QueryResult, evaluate_query
from repro.language.clauses import Program
from repro.language.parser import parse_program

DatabaseLike = Union[SequenceDatabase, Mapping[str, Iterable]]


def _as_database(database: DatabaseLike) -> SequenceDatabase:
    if isinstance(database, SequenceDatabase):
        return database
    return SequenceDatabase.from_dict(dict(database))


class SequenceDatalogEngine:
    """Parse, analyse, evaluate and query a Sequence Datalog program."""

    def __init__(
        self,
        program: Union[str, Program],
        limits: EvaluationLimits = DEFAULT_LIMITS,
        transducers: Optional[TransducerRegistry] = None,
    ):
        self.program = parse_program(program) if isinstance(program, str) else program
        self.program.validate()
        self.limits = limits
        self.transducers = transducers

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def safety(self) -> SafetyReport:
        """Strong-safety analysis of the program (Definition 10)."""
        return analyze_safety(self.program)

    def finiteness(self) -> FinitenessReport:
        """Static finiteness classification (Theorems 2, 3, 8, 9)."""
        return classify_finiteness(self.program)

    def explain(self) -> str:
        """The compiled evaluation plan: strata, join orders, index columns."""
        return compile_program(self.program).explain()

    # ------------------------------------------------------------------
    # Evaluation and queries
    # ------------------------------------------------------------------
    def evaluate(
        self,
        database: DatabaseLike,
        strategy: str = DEFAULT_STRATEGY,
        limits: Optional[EvaluationLimits] = None,
    ) -> FixpointResult:
        """Compute the least fixpoint of the program over a database."""
        return compute_least_fixpoint(
            self.program,
            _as_database(database),
            limits=limits or self.limits,
            strategy=strategy,
            transducers=self.transducers,
        )

    def query(
        self,
        result: Union[FixpointResult, Interpretation],
        pattern: str,
    ) -> QueryResult:
        """Match a pattern atom (e.g. ``"answer(X)"``) against a result."""
        interpretation = (
            result.interpretation if isinstance(result, FixpointResult) else result
        )
        return evaluate_query(interpretation, pattern)

    def run(self, database: DatabaseLike, pattern: str) -> QueryResult:
        """Evaluate and query in one call."""
        return self.query(self.evaluate(database), pattern)

    def compute_function(self, value, output_predicate: str = "output") -> Optional[str]:
        """Treat the program as a sequence function (Definition 5).

        Evaluates over the database ``{input(value)}`` and returns the single
        sequence in the ``output`` relation (or ``None`` if the function is
        undefined at the input within the evaluation limits).
        """
        result = self.evaluate(SequenceDatabase.single_input(value))
        rows = sorted(result.interpretation.tuples(output_predicate))
        if not rows:
            return None
        return rows[0][0].text

    def __repr__(self) -> str:
        return f"SequenceDatalogEngine({len(self.program)} clauses)"
