"""High-level public API: engines, model theory, and the paper's programs.

* :class:`~repro.core.engine_api.SequenceDatalogEngine` -- parse, analyse,
  evaluate and query Sequence Datalog programs;
* :class:`~repro.transducer_datalog.program.TransducerDatalogProgram`
  (re-exported) -- the same for Transducer Datalog;
* :mod:`~repro.core.model_theory` -- the model-theoretic semantics of
  Appendix A and its equivalence with the fixpoint semantics;
* :mod:`~repro.core.paper_programs` -- every worked example of the paper as a
  ready-to-run program.
"""

from repro.core.engine_api import SequenceDatalogEngine
from repro.core import model_theory, paper_programs
from repro.transducer_datalog.program import TransducerDatalogProgram

__all__ = [
    "SequenceDatalogEngine",
    "TransducerDatalogProgram",
    "model_theory",
    "paper_programs",
]
