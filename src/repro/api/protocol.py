"""Length-prefixed newline-JSON framing for the versioned API.

One frame is::

    <decimal byte length of payload>\\n
    <payload: UTF-8 JSON object, no embedded newlines>\\n

The explicit length makes reads exact (no scanning for a terminator inside
the payload, no ambiguity about sequences containing ``\\n``), while the
trailing newline keeps the stream greppable and lets ``nc``/telnet users
eyeball it.  Frames are capped (:data:`MAX_FRAME_BYTES` by default) so a
misbehaving peer cannot force an unbounded allocation; the serving layer
stays under the cap by paginating large results instead of growing frames.

Anything that violates the framing raises
:class:`~repro.errors.ProtocolError`; the connection is unusable after that
(the stream position is unknown) and must be closed.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Dict, Optional

from repro.errors import ProtocolError

#: Upper bound on one frame's payload.  64 MiB is far above anything the
#: paginating server emits (a page of 10k rows of 1 KiB sequences is ~10
#: MiB) while still bounding a hostile peer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The length line is ASCII decimal digits; 20 digits already exceeds 2**63.
_MAX_LENGTH_DIGITS = 20


def write_frame(
    stream: BinaryIO, payload: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Write one frame and flush (one flush per frame = per-page backpressure).

    The cap is checked before anything is written, so a refused frame
    leaves the stream in sync — the caller can still send a (smaller)
    error frame on the same connection.
    """
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(cap {max_bytes}); paginate the result instead"
        )
    stream.write(b"%d\n" % len(payload))
    stream.write(payload)
    stream.write(b"\n")
    stream.flush()


def read_frame(
    stream: BinaryIO, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on a clean EOF between frames."""
    header = stream.readline(_MAX_LENGTH_DIGITS + 2)
    if not header:
        return None  # clean EOF: the peer closed between frames
    if not header.endswith(b"\n"):
        raise ProtocolError(
            f"frame length line too long or truncated: {header[:32]!r}"
        )
    line = header.strip()
    if not line.isdigit():
        raise ProtocolError(f"frame length must be decimal digits, got {line!r}")
    length = int(line)
    if length > max_bytes:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {max_bytes})"
        )
    payload = stream.read(length)
    if payload is None or len(payload) != length:
        raise ProtocolError(
            f"connection closed mid-frame ({0 if payload is None else len(payload)}"
            f" of {length} bytes)"
        )
    terminator = stream.read(1)
    if terminator != b"\n":
        raise ProtocolError(
            f"frame not newline-terminated (got {terminator!r} after payload)"
        )
    return payload


def send_json(
    stream: BinaryIO, message: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Encode a wire object and write it as one frame."""
    payload = json.dumps(message, separators=(",", ":"), sort_keys=True)
    write_frame(stream, payload.encode("utf-8"), max_bytes)


def recv_json(
    stream: BinaryIO, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame and decode it; ``None`` on clean EOF."""
    payload = read_frame(stream, max_bytes)
    if payload is None:
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message
