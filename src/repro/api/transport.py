"""TCP transport for the versioned API.

:class:`DatalogTCPServer` is a :class:`socketserver.ThreadingTCPServer`
that serves the length-prefixed newline-JSON protocol of
:mod:`repro.api.protocol` over a shared, thread-safe
:class:`~repro.engine.server.DatalogServer` backend.  Concurrency and
consistency come entirely from the backend (snapshot-isolated reads,
serialized generation-publishing writers, per-generation result caching and
request coalescing); the transport adds only

* one handler thread and one :class:`~repro.api.service.DatalogService`
  per connection — cursors are connection-scoped, so an abandoned
  connection reclaims its streams, and the request/response lockstep per
  connection is the backpressure: the server computes and buffers at most
  one page ahead of the slowest reader;
* framing hygiene — a peer that breaks the framing gets one best-effort
  ``protocol_error`` reply and the connection is closed (the stream
  position is unknowable after a bad frame).

``serve_tcp`` is the one-call entry point the CLI, tests and benchmarks
use::

    with serve_tcp(program, {"r": ["abc"]}, port=0) as server:
        client = DatalogClient(*server.address)
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.api.protocol import MAX_FRAME_BYTES, recv_json, send_json
from repro.api.service import DEFAULT_MAX_PAGE_ROWS, DatalogService
from repro.api.types import (
    ApiError,
    ErrorCode,
    HeartbeatFrame,
    WatchRequest,
    WatchingResponse,
    decode_request,
    encode_response,
)
from repro.engine.server import DatalogServer
from repro.errors import ProtocolError

# The hub module imports only types/engine/storage — no cycle back here.
# (The live-subscription manager is imported lazily in the constructor:
# its package pulls in the asyncio front-end, which imports this module's
# siblings.)
from repro.replication.hub import DEFAULT_HEARTBEAT_SECONDS, ReplicationHub


class _ApiConnectionHandler(socketserver.StreamRequestHandler):
    """One thread per connection: read a frame, dispatch, write a frame."""

    # Request/response frames are small and latency-bound; Nagle + delayed
    # ACK would add ~40ms to every round trip on loopback.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        server: DatalogTCPServer = self.server  # type: ignore[assignment]
        service = DatalogService(
            server.backend, max_page_rows=server.max_page_rows, hub=server.hub,
            live=server.live,
        )
        if server.live is not None:
            server.live.connection_opened()
        try:
            self._serve(server, service)
        finally:
            if server.live is not None:
                server.live.connection_closed()
            service.close()

    def _serve(self, server: DatalogTCPServer, service: DatalogService) -> None:
        while True:
            try:
                message = recv_json(self.rfile, server.max_frame_bytes)
            except ProtocolError as error:
                self._send_best_effort(
                    service, encode_response(ApiError.from_exception(error))
                )
                return  # the stream position is unknown: drop the connection
            except OSError:
                return
            if message is None:
                return  # clean EOF
            if isinstance(message, dict) and message.get("op") == "subscribe":
                # Subscriptions flip this connection to server-push for the
                # rest of its life: no further requests are read.
                self._serve_subscription(service, message)
                return
            if isinstance(message, dict) and message.get("op") == "watch":
                # Same story for live queries on this transport: the
                # connection becomes the subscription's push stream (the
                # asyncio front-end serves watches duplex instead).
                self._serve_watch(service, message)
                return
            reply = service.handle_raw(message)
            if not self._send_best_effort(service, reply):
                return

    def _serve_subscription(
        self, service: DatalogService, message: Dict[str, Any]
    ) -> None:
        """Drive one replication stream until either side drops it."""
        server: DatalogTCPServer = self.server  # type: ignore[assignment]
        try:
            request = decode_request(message)
        except Exception as error:
            self._send_best_effort(
                service, encode_response(ApiError.from_exception(error))
            )
            return
        stream = service.stream_subscription(request)  # type: ignore[arg-type]
        server.register_subscriber(self.connection)
        try:
            for response in stream:
                send_json(
                    self.wfile, encode_response(response), server.max_frame_bytes
                )
        except (OSError, ValueError, ProtocolError):
            return  # subscriber went away (or a frame broke); just drop it
        except Exception as error:
            # A pre-stream refusal (no hub, fingerprint mismatch) or a bug
            # mid-stream: ship the typed error so the follower can react.
            self._send_best_effort(
                service, encode_response(ApiError.from_exception(error))
            )
        finally:
            server.unregister_subscriber(self.connection)
            stream.close()

    def _serve_watch(
        self, service: DatalogService, message: Dict[str, Any]
    ) -> None:
        """Drive one live-query push stream until either side drops it."""
        server: DatalogTCPServer = self.server  # type: ignore[assignment]
        live = server.live
        try:
            request = decode_request(message)
        except Exception as error:
            self._send_best_effort(
                service, encode_response(ApiError.from_exception(error))
            )
            return
        if live is None or not isinstance(request, WatchRequest):
            self._send_best_effort(
                service,
                encode_response(
                    ApiError(
                        code=ErrorCode.BAD_REQUEST,
                        message="live queries are not enabled on this server",
                    )
                ),
            )
            return
        try:
            subscription = live.subscribe(
                request.pattern, strict=request.strict, initial=request.initial
            )
        except Exception as error:
            # Parse/validation/unknown-predicate refusals, typed.
            self._send_best_effort(
                service, encode_response(ApiError.from_exception(error))
            )
            return
        server.register_subscriber(self.connection)
        try:
            send_json(
                self.wfile,
                encode_response(
                    WatchingResponse(
                        subscription=subscription.id,
                        pattern=subscription.pattern,
                        generation=subscription.started_generation,
                        heartbeat_seconds=live.heartbeat_seconds,
                    )
                ),
                server.max_frame_bytes,
            )
            while True:
                frame = subscription.pop(live.heartbeat_seconds)
                if frame is None:
                    if subscription.closed:
                        return  # server shutting down / unsubscribed
                    send_json(
                        self.wfile,
                        encode_response(
                            HeartbeatFrame(
                                generation=server.backend.generation,
                                subscription=subscription.id,
                            )
                        ),
                        server.max_frame_bytes,
                    )
                    continue
                if isinstance(frame, ApiError):
                    # Terminal (slow consumer): ship the typed error, drop.
                    self._send_best_effort(service, encode_response(frame))
                    return
                send_json(
                    self.wfile, encode_response(frame), server.max_frame_bytes
                )
        except (OSError, ValueError, ProtocolError):
            return  # watcher went away (or a frame broke); just drop it
        finally:
            live.unsubscribe(subscription.id)
            server.unregister_subscriber(self.connection)

    @staticmethod
    def _drop_reply_cursors(service: DatalogService, message: Dict[str, Any]) -> None:
        """Release cursors a reply registered but the client will never see.

        A reply that could not be shipped orphans its pagination state:
        the client cannot fetch or close a cursor id it never received,
        and 64 leaked cursors would permanently reject paged queries on
        this connection (each pinning a fully-evaluated result).
        """
        cursors = [message.get("cursor")]
        cursors.extend(
            entry.get("cursor")
            for entry in message.get("results", ())
            if isinstance(entry, dict)
        )
        for cursor in cursors:
            if isinstance(cursor, str):
                service.release_cursor(cursor)

    def _send_best_effort(
        self, service: DatalogService, message: Dict[str, Any]
    ) -> bool:
        try:
            send_json(self.wfile, message, self.server.max_frame_bytes)
            return True
        except ProtocolError as error:
            # The reply itself blew the frame cap (a page of huge
            # sequences: the row clamp bounds rows, not bytes).  Nothing
            # was written yet — the stream is still in sync — so drop the
            # undeliverable reply's cursors, send a small typed error
            # instead, and keep the connection serving.
            self._drop_reply_cursors(service, message)
            try:
                send_json(
                    self.wfile, encode_response(ApiError.from_exception(error))
                )
                return True
            except (OSError, ValueError):
                return False
        except (OSError, ValueError):
            self._drop_reply_cursors(service, message)
            return False  # peer went away mid-write


class DatalogTCPServer(socketserver.ThreadingTCPServer):
    """Serve one :class:`DatalogServer` backend to remote TCP clients.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port 0 picks a free port (read it back
        from :attr:`address`).
    backend:
        The thread-safe :class:`DatalogServer` every connection shares.
    max_page_rows, max_frame_bytes:
        Forwarded to each connection's service / frame reader.
    owns_backend:
        When True (the :func:`serve_tcp` path), :meth:`close` also closes
        the backend.
    heartbeat_seconds:
        Cadence of keep-alive frames on idle replication streams.

    Every TCP-served backend is automatically a replication leader: a
    :class:`~repro.replication.hub.ReplicationHub` is attached at
    construction, so followers can subscribe on the same port queries
    use (recording a publish is a few machine words, costing the write
    path nothing measurable when nobody subscribes).  A
    :class:`~repro.live.subscriptions.SubscriptionManager` is attached
    the same way, so clients can ``watch`` continuous queries — on a
    follower too (fan-out of fan-out).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        backend: DatalogServer,
        max_page_rows: int = DEFAULT_MAX_PAGE_ROWS,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        owns_backend: bool = False,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    ) -> None:
        # Runtime import: the live package pulls in the asyncio front-end,
        # which imports this module's siblings at module scope.
        from repro.live.subscriptions import SubscriptionManager

        self.backend = backend
        self.max_page_rows = max_page_rows
        self.max_frame_bytes = max_frame_bytes
        self._owns_backend = owns_backend
        self._serve_thread: Optional[threading.Thread] = None
        self._subscriber_sockets: set = set()
        self._subscriber_lock = threading.Lock()
        self.hub = (
            ReplicationHub(backend, heartbeat_seconds=heartbeat_seconds)
            if isinstance(backend, DatalogServer)
            else None
        )
        self.live = (
            SubscriptionManager(backend, heartbeat_seconds=heartbeat_seconds)
            if isinstance(backend, DatalogServer)
            else None
        )
        super().__init__(address, _ApiConnectionHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port 0)."""
        host, port = self.server_address[:2]
        return host, port

    def start(self) -> DatalogTCPServer:
        """Serve in a daemon thread (tests, benchmarks, embedded serving)."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-api-tcp", daemon=True
            )
            self._serve_thread.start()
        return self

    def register_subscriber(self, connection) -> None:
        with self._subscriber_lock:
            self._subscriber_sockets.add(connection)

    def unregister_subscriber(self, connection) -> None:
        with self._subscriber_lock:
            self._subscriber_sockets.discard(connection)

    def _drop_subscribers(self) -> None:
        """Sever live replication streams so followers notice the restart.

        Handler threads are daemons parked in heartbeat waits; without the
        shutdown they would keep streaming to followers long after the
        listener is gone, and a restarted leader's followers would never
        reconnect to it.
        """
        with self._subscriber_lock:
            sockets = list(self._subscriber_sockets)
            self._subscriber_sockets.clear()
        for connection in sockets:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def close(self) -> None:
        """Stop serving, release the socket, and close an owned backend."""
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=5)
            self._serve_thread = None
        if self.live is not None:
            self.live.close()  # wakes handler threads parked in pop()
        self._drop_subscribers()
        self.server_close()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> DatalogTCPServer:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return f"DatalogTCPServer({host}:{port}, backend={self.backend!r})"


def parse_address(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT``, ``:PORT`` or ``PORT`` into an address tuple."""
    host, _, port_text = text.rpartition(":")
    if not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(
            f"invalid TCP address {text!r} (expected HOST:PORT, :PORT or PORT)"
        ) from None
    if not 0 <= port <= 65535:
        raise ProtocolError(f"TCP port {port} out of range 0-65535")
    return host, port


def serve_tcp(
    program: Union[str, DatalogServer, object],
    database: Optional[Union[Mapping[str, Iterable], object]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    start: bool = True,
    max_page_rows: int = DEFAULT_MAX_PAGE_ROWS,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    **server_options: Any,
) -> DatalogTCPServer:
    """Expose a program (or an existing :class:`DatalogServer`) over TCP.

    Builds the thread-safe backend when given program text / a parsed
    program (``database`` and ``server_options`` — ``limits``,
    ``transducers``, ``workers``, ``result_cache_size`` — are forwarded),
    binds ``host:port`` (port 0 = pick a free one) and, with ``start=True``,
    serves in a daemon thread.  Closing the returned transport closes a
    backend it built, never one it was handed.
    """
    if isinstance(program, DatalogServer):
        if database is not None or server_options:
            raise ProtocolError(
                "serve_tcp(server) uses the server as configured; pass "
                "database/server options only with a program"
            )
        backend, owns = program, False
    else:
        backend, owns = DatalogServer(program, database, **server_options), True
    try:
        transport = DatalogTCPServer(
            (host, port), backend, max_page_rows=max_page_rows,
            max_frame_bytes=max_frame_bytes, owns_backend=owns,
        )
    except BaseException:
        if owns:
            backend.close()
        raise
    if start:
        transport.start()
    return transport
